//! Model-check suite for the checker itself: exploration really covers
//! multiple schedules, real races and deadlocks are caught with a
//! printed schedule trace, and failing schedules replay exactly.

use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::Mutex;
use interleave::{check, check_result, replay, thread};

/// Two threads each incrementing via a mutex: correct under every
/// schedule, and the exploration must visit more than one schedule —
/// the acceptance bar for the checker doing real work.
#[test]
fn mutex_counter_explores_multiple_schedules() {
    let report = check(2, || {
        let counter = Mutex::new(0usize);
        thread::scope(|s| {
            let h = s.spawn(|| {
                *counter.lock().expect("unpoisoned") += 1;
            });
            *counter.lock().expect("unpoisoned") += 1;
            h.join().expect("no panic");
        });
        assert_eq!(counter.into_inner().expect("unpoisoned"), 2);
    });
    assert!(
        report.schedules > 1,
        "a two-thread mutex protocol must have more than one interleaving, got {report:?}"
    );
}

/// The classic lost update: load-then-store instead of `fetch_add`.
/// Some schedule interleaves the two read-modify-write windows and the
/// final count is 1, not 2 — the checker must find it and hand back a
/// non-empty step trace naming the racing operations.
#[test]
fn lost_update_race_is_caught_with_a_trace() {
    let failure = check_result(2, || {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            let h = s.spawn(|| {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            });
            let seen = counter.load(Ordering::SeqCst);
            counter.store(seen + 1, Ordering::SeqCst);
            h.join().expect("no panic");
        });
        assert_eq!(counter.into_inner(), 2, "lost update");
    })
    .expect_err("the unsynchronized increment must lose an update under some schedule");

    assert!(failure.message.contains("lost update"), "{failure}");
    assert!(!failure.trace.is_empty(), "failure must carry a step trace");
    let rendered = failure.to_string();
    assert!(rendered.contains("AtomicUsize::load"), "{rendered}");
    assert!(rendered.contains("AtomicUsize::store"), "{rendered}");
    assert!(rendered.contains("t1"), "{rendered}");
}

/// A failing schedule is a reproducer: replaying `failure.schedule`
/// hits the same failure, and the checker flags a divergent replay.
#[test]
fn failing_schedules_replay_deterministically() {
    let body = || {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            let h = s.spawn(|| {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            });
            let seen = counter.load(Ordering::SeqCst);
            counter.store(seen + 1, Ordering::SeqCst);
            h.join().expect("no panic");
        });
        assert_eq!(counter.into_inner(), 2, "lost update");
    };
    let failure = check_result(2, body).expect_err("racy");
    let replayed = replay(2, &failure.schedule, body).expect_err("same schedule, same failure");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(replayed.trace, failure.trace);
}

/// ABBA lock ordering: t0 takes `a` then `b`, t1 takes `b` then `a`.
/// Under some schedule both hold their first lock and the execution
/// deadlocks; the checker must report it rather than hang.
#[test]
fn abba_deadlock_is_detected() {
    let failure = check_result(2, || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        thread::scope(|s| {
            let h = s.spawn(|| {
                let _b = b.lock().expect("unpoisoned");
                let _a = a.lock().expect("unpoisoned");
            });
            {
                let _a = a.lock().expect("unpoisoned");
                let _b = b.lock().expect("unpoisoned");
            }
            h.join().expect("no panic");
        });
    })
    .expect_err("ABBA ordering must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
    assert!(!failure.trace.is_empty(), "deadlock report carries a trace");
}

/// The mutex actually excludes: with proper locking the same
/// read-modify-write protocol that loses updates raw is correct under
/// every explored schedule.
#[test]
fn mutex_prevents_the_lost_update() {
    check(2, || {
        let counter = Mutex::new(0usize);
        thread::scope(|s| {
            let h = s.spawn(|| {
                let mut guard = counter.lock().expect("unpoisoned");
                let seen = *guard;
                *guard = seen + 1;
            });
            {
                let mut guard = counter.lock().expect("unpoisoned");
                let seen = *guard;
                *guard = seen + 1;
            }
            h.join().expect("no panic");
        });
        assert_eq!(counter.into_inner().expect("unpoisoned"), 2);
    });
}

/// Panics inside spawned model threads surface through `join` exactly
/// as with `std`, and an unjoined panic fails the check with a trace.
#[test]
fn child_panics_surface_through_join() {
    check(1, || {
        let outcome = thread::scope(|s| s.spawn(|| panic!("child boom")).join());
        assert!(outcome.is_err(), "join must surface the child's panic");
    });
}

/// Raising the preemption bound strictly widens the explored set on a
/// protocol with enough scheduling points to show the difference.
#[test]
fn higher_bounds_explore_more_schedules() {
    let body = || {
        let x = AtomicUsize::new(0);
        thread::scope(|s| {
            let h = s.spawn(|| {
                x.fetch_add(1, Ordering::SeqCst);
                x.fetch_add(1, Ordering::SeqCst);
            });
            x.fetch_add(1, Ordering::SeqCst);
            x.fetch_add(1, Ordering::SeqCst);
            h.join().expect("no panic");
        });
        assert_eq!(x.into_inner(), 4);
    };
    let tight = check(1, body);
    let loose = check(3, body);
    assert!(
        loose.schedules > tight.schedules,
        "bound 3 must explore more than bound 1: {loose:?} vs {tight:?}"
    );
}
