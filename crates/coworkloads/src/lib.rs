//! # dora-coworkloads
//!
//! The interference generators of the DORA reproduction.
//!
//! The paper co-schedules the browser with kernels from the Rodinia suite
//! — "the basic building blocks of current and future smartphone
//! workloads" (Section IV-B) — classified by their solo shared-L2 MPKI
//! (Table III):
//!
//! | Intensity | L2 MPKI | Kernels |
//! |---|---|---|
//! | Low | < 1 | srad, heartwall, kmeans, hotspot |
//! | Medium | 1–7 | srad2, bfs, b+tree |
//! | High | > 7 | backprop, needleman-wunsch |
//!
//! Each kernel here is a synthetic phase cycle whose cache/memory profile
//! is calibrated so its *measured in-simulator* solo MPKI lands in the
//! paper's class (verified by the `mpki_classes` integration test — the
//! classification is an emergent measurement, not a label).
//!
//! # Example
//!
//! ```
//! use dora_coworkloads::{Intensity, Kernel};
//!
//! let kernels = Kernel::all();
//! assert_eq!(kernels.len(), 9);
//! let backprop = Kernel::by_name("backprop").expect("in suite");
//! assert_eq!(backprop.intensity(), Intensity::High);
//! let _task = backprop.spawn(7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use dora_sim_core::Rng;
use dora_soc::task::{CyclicTask, PhaseProfile};
use std::fmt;

/// Table III memory-intensity class of a co-run application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Intensity {
    /// Solo L2 MPKI below 1.
    Low,
    /// Solo L2 MPKI between 1 and 7.
    Medium,
    /// Solo L2 MPKI above 7.
    High,
}

impl Intensity {
    /// All classes, low to high.
    pub const ALL: [Intensity; 3] = [Intensity::Low, Intensity::Medium, Intensity::High];

    /// The MPKI interval `(lo, hi)` defining this class in Table III.
    pub fn mpki_bounds(self) -> (f64, f64) {
        match self {
            Intensity::Low => (0.0, 1.0),
            Intensity::Medium => (1.0, 7.0),
            Intensity::High => (7.0, f64::INFINITY),
        }
    }

    /// Classifies a measured solo MPKI.
    pub fn classify(mpki: f64) -> Intensity {
        if mpki < 1.0 {
            Intensity::Low
        } else if mpki <= 7.0 {
            Intensity::Medium
        } else {
            Intensity::High
        }
    }

    /// The canonical lowercase label (`"low"`, `"medium"`, `"high"`) used
    /// in result rows and CSV exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Intensity::Low => "low",
            Intensity::Medium => "medium",
            Intensity::High => "high",
        }
    }
}

impl fmt::Display for Intensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The error returned when parsing an unknown intensity label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntensityError(String);

impl fmt::Display for ParseIntensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown intensity class `{}` (expected low/medium/high)",
            self.0
        )
    }
}

impl std::error::Error for ParseIntensityError {}

impl std::str::FromStr for Intensity {
    type Err = ParseIntensityError;

    /// Parses the canonical labels, case-insensitively (so exported CSV
    /// rows round-trip).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Intensity::ALL
            .into_iter()
            .find(|i| s.eq_ignore_ascii_case(i.as_str()))
            .ok_or_else(|| ParseIntensityError(s.to_string()))
    }
}

/// The algorithmic domain a kernel represents (the paper's Table III
/// descriptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Image processing (srad, srad2, heartwall).
    ImageProcessing,
    /// Clustering analysis (kmeans).
    Clustering,
    /// Temperature management (hotspot).
    ThermalManagement,
    /// Tree and graph traversal (bfs, b+tree).
    GraphTraversal,
    /// Sensor data analysis (backprop).
    SensorAnalysis,
    /// Bioinformatics (needleman-wunsch).
    Bioinformatics,
}

/// A Rodinia-like interference kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: &'static str,
    domain: Domain,
    intensity: Intensity,
    /// `(instruction budget, profile)` phases cycled endlessly.
    phases: Vec<(f64, PhaseProfile)>,
}

const KIB: f64 = 1024.0;
const MIB: f64 = 1024.0 * 1024.0;

fn profile(cpi: f64, apki: f64, ws: f64, reuse: f64, duty: f64) -> PhaseProfile {
    PhaseProfile {
        base_cpi: cpi,
        l2_apki: apki,
        working_set_bytes: ws,
        reuse_fraction: reuse,
        duty_cycle: duty,
    }
}

impl Kernel {
    /// The full nine-kernel suite of Table III.
    pub fn all() -> Vec<Kernel> {
        use Domain::*;
        use Intensity::*;
        vec![
            // ---- Low intensity: small working sets that fit in L2. ----
            Kernel {
                name: "srad",
                domain: ImageProcessing,
                intensity: Low,
                phases: vec![
                    // Stencil update over a tile that fits in cache.
                    (4.0e8, profile(1.1, 5.0, 400.0 * KIB, 0.88, 0.95)),
                    // Reduction pass: compute bound.
                    (1.5e8, profile(1.0, 1.5, 128.0 * KIB, 0.92, 0.95)),
                ],
            },
            Kernel {
                name: "heartwall",
                domain: ImageProcessing,
                intensity: Low,
                phases: vec![(5.0e8, profile(1.2, 2.5, 250.0 * KIB, 0.85, 0.90))],
            },
            Kernel {
                name: "kmeans",
                domain: Clustering,
                intensity: Low,
                phases: vec![
                    // Assignment: scan points, centroids stay hot.
                    (3.0e8, profile(1.1, 3.0, 300.0 * KIB, 0.90, 0.85)),
                    // Centroid update: compute bound.
                    (1.0e8, profile(1.0, 1.0, 64.0 * KIB, 0.95, 0.85)),
                ],
            },
            Kernel {
                name: "hotspot",
                domain: ThermalManagement,
                intensity: Low,
                phases: vec![(4.5e8, profile(1.15, 4.0, 500.0 * KIB, 0.85, 0.70))],
            },
            // ---- Medium intensity: working sets around/above L2. ----
            Kernel {
                name: "srad2",
                domain: ImageProcessing,
                intensity: Medium,
                phases: vec![(6.0e8, profile(1.2, 12.0, 3.0 * MIB, 0.70, 0.95))],
            },
            Kernel {
                name: "bfs",
                domain: GraphTraversal,
                intensity: Medium,
                phases: vec![
                    // Frontier expansion: irregular access over the graph.
                    (3.0e8, profile(1.5, 10.0, 4.0 * MIB, 0.60, 0.80)),
                    // Frontier bookkeeping: lighter.
                    (1.0e8, profile(1.2, 4.0, 512.0 * KIB, 0.85, 0.80)),
                ],
            },
            Kernel {
                name: "b+tree",
                domain: GraphTraversal,
                intensity: Medium,
                phases: vec![(5.0e8, profile(1.4, 8.0, 2.5 * MIB, 0.75, 0.75))],
            },
            // ---- High intensity: streaming far beyond the L2. ----
            Kernel {
                name: "backprop",
                domain: SensorAnalysis,
                intensity: High,
                phases: vec![
                    // Forward pass: stream the weight matrices.
                    (3.0e8, profile(1.3, 25.0, 8.0 * MIB, 0.30, 1.00)),
                    // Backward pass: stream them again, heavier writes.
                    (3.5e8, profile(1.4, 28.0, 8.0 * MIB, 0.25, 1.00)),
                ],
            },
            Kernel {
                name: "needleman-wunsch",
                domain: Bioinformatics,
                intensity: High,
                phases: vec![(6.0e8, profile(1.3, 18.0, 6.0 * MIB, 0.25, 0.95))],
            },
        ]
    }

    /// Looks a kernel up by name (case-insensitive; `nw` is accepted as an
    /// alias for `needleman-wunsch`).
    pub fn by_name(name: &str) -> Option<Kernel> {
        let target = if name.eq_ignore_ascii_case("nw") {
            "needleman-wunsch"
        } else {
            name
        };
        Kernel::all()
            .into_iter()
            .find(|k| k.name.eq_ignore_ascii_case(target))
    }

    /// Kernels of a given intensity class.
    pub fn in_class(intensity: Intensity) -> Vec<Kernel> {
        Kernel::all()
            .into_iter()
            .filter(|k| k.intensity == intensity)
            .collect()
    }

    /// A representative kernel per class — the trio used when the paper
    /// sweeps "an application from each memory intensity category":
    /// kmeans (low), bfs (medium), backprop (high).
    #[allow(clippy::expect_used)] // the three names are members of the static suite
    pub fn representatives() -> [Kernel; 3] {
        [
            Kernel::by_name("kmeans").expect("in suite"),
            Kernel::by_name("bfs").expect("in suite"),
            Kernel::by_name("backprop").expect("in suite"),
        ]
    }

    /// The kernel's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The algorithmic domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The expected Table III intensity class.
    pub fn intensity(&self) -> Intensity {
        self.intensity
    }

    /// Mean duty cycle across phases — the paper's X9 (core utilization of
    /// the co-scheduled task) predictor for this kernel.
    pub fn mean_duty_cycle(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|(b, _)| b).sum();
        self.phases
            .iter()
            .map(|(b, p)| b / total * p.duty_cycle)
            .sum()
    }

    /// Budget-weighted mean L2 accesses per kilo-instruction.
    pub fn mean_apki(&self) -> f64 {
        let total: f64 = self.phases.iter().map(|(b, _)| b).sum();
        self.phases.iter().map(|(b, p)| b / total * p.l2_apki).sum()
    }

    /// Spawns an endless task instance. `seed` applies a small (±3 %)
    /// lognormal jitter to phase budgets, modelling input-dependent work,
    /// while leaving the cache profile (and hence the class) untouched.
    pub fn spawn(&self, seed: u64) -> CyclicTask {
        let mut rng = Rng::seed_from_u64(seed ^ fxhash(self.name));
        let phases: Vec<(f64, PhaseProfile)> = self
            .phases
            .iter()
            .map(|(budget, profile)| (budget * rng.jitter(0.03), *profile))
            .collect();
        CyclicTask::new(self.name, phases)
    }
}

/// A tiny FNV-style string hash so each kernel gets an independent jitter
/// stream from the same campaign seed.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_soc::task::Task;

    #[test]
    fn suite_has_nine_kernels_in_paper_classes() {
        let all = Kernel::all();
        assert_eq!(all.len(), 9);
        assert_eq!(Kernel::in_class(Intensity::Low).len(), 4);
        assert_eq!(Kernel::in_class(Intensity::Medium).len(), 3);
        assert_eq!(Kernel::in_class(Intensity::High).len(), 2);
    }

    #[test]
    fn lookup_and_alias() {
        assert!(Kernel::by_name("BFS").is_some());
        assert_eq!(
            Kernel::by_name("nw").expect("alias works").name(),
            "needleman-wunsch"
        );
        assert!(Kernel::by_name("linpack").is_none());
    }

    #[test]
    fn representatives_cover_all_classes() {
        let [low, medium, high] = Kernel::representatives();
        assert_eq!(low.intensity(), Intensity::Low);
        assert_eq!(medium.intensity(), Intensity::Medium);
        assert_eq!(high.intensity(), Intensity::High);
    }

    #[test]
    fn classify_matches_bounds() {
        assert_eq!(Intensity::classify(0.2), Intensity::Low);
        assert_eq!(Intensity::classify(1.0), Intensity::Medium);
        assert_eq!(Intensity::classify(6.9), Intensity::Medium);
        assert_eq!(Intensity::classify(7.1), Intensity::High);
    }

    #[test]
    fn duty_cycles_vary_across_kernels() {
        let duties: Vec<f64> = Kernel::all().iter().map(|k| k.mean_duty_cycle()).collect();
        let min = duties.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = duties.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "X9 needs spread: {duties:?}");
        for d in duties {
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn spawn_is_deterministic_per_seed() {
        let k = Kernel::by_name("backprop").expect("in suite");
        let mut a = k.spawn(1);
        let mut b = k.spawn(1);
        a.retire(1e6);
        b.retire(1e6);
        assert_eq!(a.current_phase(), b.current_phase());
        assert_eq!(a.retired(), b.retired());
    }

    #[test]
    fn higher_class_means_more_apki() {
        // Mean APKI should rise across the classes — the mechanism behind
        // the MPKI classification.
        let mean_apki = |class: Intensity| -> f64 {
            let kernels = Kernel::in_class(class);
            kernels.iter().map(Kernel::mean_apki).sum::<f64>() / kernels.len() as f64
        };
        let low = mean_apki(Intensity::Low);
        let medium = mean_apki(Intensity::Medium);
        let high = mean_apki(Intensity::High);
        assert!(low < medium && medium < high, "{low} {medium} {high}");
    }
}
