//! Emergent-classification check: each kernel's *measured* solo MPKI on
//! the Nexus 5 board model must land in its Table III class.
//!
//! The paper classifies co-run applications by the L2 MPKI they exhibit;
//! this test runs every kernel alone for one simulated second at the top
//! frequency and asserts the measurement, so the suite's labels can never
//! drift from its behaviour.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_coworkloads::{Intensity, Kernel};
use dora_sim_core::SimDuration;
use dora_soc::board::Board;

/// Measured solo MPKI of a kernel after one second at `mhz`.
fn solo_mpki(kernel: &Kernel, mhz: f64) -> f64 {
    let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), 13);
    board
        .set_frequency(dora_soc::Frequency::from_mhz(mhz))
        .expect("table frequency");
    board
        .assign(2, Box::new(kernel.spawn(13)))
        .expect("core 2 free");
    board.step(SimDuration::from_secs(1));
    board.counters(2).mpki().value()
}

#[test]
fn every_kernel_measures_into_its_class() {
    let mut report = String::new();
    let mut violations = Vec::new();
    for kernel in Kernel::all() {
        let mpki = solo_mpki(&kernel, 2265.6);
        let (lo, hi) = kernel.intensity().mpki_bounds();
        report.push_str(&format!(
            "{:<18} {:<7} mpki={:>6.2}\n",
            kernel.name(),
            kernel.intensity().to_string(),
            mpki
        ));
        if mpki < lo || mpki >= hi {
            violations.push(format!(
                "{} measured {mpki:.2} MPKI, outside [{lo}, {hi})",
                kernel.name()
            ));
        }
        assert_eq!(Intensity::classify(mpki), kernel.intensity(), "{report}");
    }
    assert!(violations.is_empty(), "{violations:?}\n{report}");
}

#[test]
fn classification_is_stable_across_frequency() {
    // MPKI is a per-instruction metric; it should not change class when
    // the clock moves (the paper classifies once, then sweeps frequency).
    for kernel in Kernel::all() {
        let hi = solo_mpki(&kernel, 2265.6);
        let lo = solo_mpki(&kernel, 729.6);
        assert_eq!(
            Intensity::classify(hi),
            Intensity::classify(lo),
            "{} flips class between frequencies ({hi:.2} vs {lo:.2})",
            kernel.name()
        );
    }
}

#[test]
fn kernel_utilization_matches_duty_cycle() {
    for kernel in Kernel::all() {
        let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), 29);
        board
            .set_frequency(dora_soc::Frequency::from_mhz(1497.6))
            .expect("table frequency");
        board
            .assign(2, Box::new(kernel.spawn(29)))
            .expect("core 2 free");
        board.step(SimDuration::from_secs(2));
        let util = board.counters(2).utilization();
        let expected = kernel.mean_duty_cycle();
        assert!(
            (util.value() - expected).abs() < 0.08,
            "{}: utilization {util:.2} vs duty {expected:.2}",
            kernel.name()
        );
    }
}
