//! Nonlinear fitting of the Eq. 5 leakage model.
//!
//! The paper adopts the empirical temperature/voltage leakage model of
//! Liao, He & Lepak:
//!
//! ```text
//! P_lkg(v, T) = k1·v·T²·e^((α·v + β)/T) + k2·e^(γ·v + δ)      (Eq. 5)
//! ```
//!
//! with `T` in kelvin, and notes its parameters "are determined using
//! non-linear numerical solutions and mean square error minimization".
//! This module implements that determination: Levenberg–Marquardt with a
//! numerical Jacobian, positivity enforced by optimizing `ln k1` / `ln k2`,
//! and randomized multi-start to escape poor basins.

use crate::linalg::{lu_solve, Matrix};
use crate::ModelError;
use dora_sim_core::units::{Celsius, Watts};
use dora_sim_core::Rng;

/// The six Eq. 5 parameters.
///
/// This mirrors the SoC power model's parameter set, but lives here so the
/// fitting machinery has no dependency on the simulator: it fits any
/// `(voltage, temperature, power)` observations from any source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq5Params {
    /// Scale of the temperature-dependent subthreshold term.
    pub k1: f64,
    /// Voltage slope inside the exponential (kelvin per volt).
    pub alpha: f64,
    /// Offset inside the exponential (kelvin).
    pub beta: f64,
    /// Scale of the gate-leakage term.
    pub k2: f64,
    /// Voltage slope of the gate term.
    pub gamma: f64,
    /// Offset of the gate term.
    pub delta: f64,
}

impl Eq5Params {
    /// Evaluates Eq. 5 at supply `voltage` (volts) and temperature `temp`.
    pub fn eval(&self, voltage: f64, temp: Celsius) -> Watts {
        let t = temp.to_kelvin();
        if t <= 0.0 || voltage <= 0.0 {
            return Watts::ZERO;
        }
        let sub = self.k1 * voltage * t * t * ((self.alpha * voltage + self.beta) / t).exp();
        let gate = self.k2 * (self.gamma * voltage + self.delta).exp();
        Watts::new(sub + gate)
    }

    fn to_theta(self) -> [f64; 6] {
        [
            self.k1.max(1e-12).ln(),
            self.alpha,
            self.beta,
            self.k2.max(1e-12).ln(),
            self.gamma,
            self.delta,
        ]
    }

    fn from_theta(theta: &[f64; 6]) -> Eq5Params {
        Eq5Params {
            k1: theta[0].exp(),
            alpha: theta[1],
            beta: theta[2],
            k2: theta[3].exp(),
            gamma: theta[4],
            delta: theta[5],
        }
    }
}

/// One calibration measurement: leakage power at a voltage/temperature
/// operating condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageObservation {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Die temperature.
    pub temp: Celsius,
    /// Measured leakage power.
    pub power: Watts,
}

/// The result of a leakage fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageFit {
    /// The fitted parameters.
    pub params: Eq5Params,
    /// Final sum of squared residuals.
    pub sse: f64,
    /// Levenberg–Marquardt iterations spent by the winning start.
    pub iterations: usize,
}

impl LeakageFit {
    /// Root-mean-square residual in watts.
    pub fn rmse(&self, n_observations: usize) -> f64 {
        if n_observations == 0 {
            0.0
        } else {
            (self.sse / n_observations as f64).sqrt()
        }
    }
}

fn sse(params: &Eq5Params, obs: &[LeakageObservation]) -> f64 {
    obs.iter()
        .map(|o| {
            let r = params.eval(o.voltage, o.temp).value() - o.power.value();
            r * r
        })
        .sum()
}

/// One Levenberg–Marquardt descent from `start`; returns the refined
/// parameters, their SSE, and iterations used.
fn lm_descend(
    start: Eq5Params,
    obs: &[LeakageObservation],
    max_iters: usize,
) -> (Eq5Params, f64, usize) {
    let n = obs.len();
    let mut theta = start.to_theta();
    let mut current = sse(&Eq5Params::from_theta(&theta), obs);
    let mut lambda = 1e-3;
    let mut iterations = 0;

    for iter in 0..max_iters {
        iterations = iter + 1;
        let params = Eq5Params::from_theta(&theta);
        // Residuals and numerical Jacobian.
        let residuals: Vec<f64> = obs
            .iter()
            .map(|o| params.eval(o.voltage, o.temp).value() - o.power.value())
            .collect();
        let mut jac = Matrix::zeros(n, 6);
        for j in 0..6 {
            let h = (theta[j].abs() * 1e-6).max(1e-7);
            let mut bumped = theta;
            bumped[j] += h;
            let p_bumped = Eq5Params::from_theta(&bumped);
            for (i, o) in obs.iter().enumerate() {
                let d =
                    (p_bumped.eval(o.voltage, o.temp) - params.eval(o.voltage, o.temp)).value() / h;
                jac.set(i, j, if d.is_finite() { d } else { 0.0 });
            }
        }
        // Normal equations with LM damping.
        let jt = jac.transpose();
        let jtj = jt.matmul(&jac);
        let jtr = jt.matvec(&residuals);
        let mut improved = false;
        for _ in 0..8 {
            let mut damped = jtj.clone();
            for d in 0..6 {
                let v = damped.get(d, d);
                damped.set(d, d, v + lambda * v.max(1e-12));
            }
            let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Ok(step) = lu_solve(&damped, &rhs) else {
                lambda *= 10.0;
                continue;
            };
            let mut candidate = theta;
            for (t, s) in candidate.iter_mut().zip(&step) {
                *t += s;
            }
            let cand_sse = sse(&Eq5Params::from_theta(&candidate), obs);
            if cand_sse.is_finite() && cand_sse < current {
                let rel = (current - cand_sse) / current.max(1e-30);
                theta = candidate;
                current = cand_sse;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if rel < 1e-12 {
                    return (Eq5Params::from_theta(&theta), current, iterations);
                }
                break;
            }
            lambda *= 10.0;
        }
        if !improved {
            break;
        }
    }
    (Eq5Params::from_theta(&theta), current, iterations)
}

/// Fits Eq. 5 to observations by multi-start Levenberg–Marquardt.
///
/// `seed` pins the randomized restarts; the fit is fully deterministic.
///
/// # Errors
///
/// [`ModelError::TooFewObservations`] with fewer than 6 observations (the
/// parameter count), or [`ModelError::NoConvergence`] if every start
/// diverges.
///
/// # Example
///
/// ```
/// use dora_modeling::leakage::{fit_leakage, Eq5Params, LeakageObservation};
/// use dora_sim_core::units::Celsius;
///
/// let truth = Eq5Params {
///     k1: 0.22, alpha: 800.0, beta: -4300.0,
///     k2: 0.05, gamma: 2.0, delta: -2.0,
/// };
/// let obs: Vec<LeakageObservation> = (0..40)
///     .map(|i| {
///         let v = 0.8 + 0.3 * (i % 8) as f64 / 7.0;
///         let t = Celsius::new(25.0 + 50.0 * (i / 8) as f64 / 4.0);
///         LeakageObservation { voltage: v, temp: t, power: truth.eval(v, t) }
///     })
///     .collect();
/// let fit = fit_leakage(&obs, 42)?;
/// // Noiseless synthetic data: the fit reproduces the curve closely.
/// let mid = Celsius::new(50.0);
/// assert!((fit.params.eval(1.0, mid) - truth.eval(1.0, mid)).value().abs() < 0.01);
/// # Ok::<(), dora_modeling::ModelError>(())
/// ```
pub fn fit_leakage(obs: &[LeakageObservation], seed: u64) -> Result<LeakageFit, ModelError> {
    if obs.len() < 6 {
        return Err(ModelError::TooFewObservations {
            got: obs.len(),
            need: 6,
        });
    }
    for o in obs {
        if o.voltage <= 0.0
            || !o.voltage.is_finite()
            || !o.temp.is_finite()
            || o.power.value() < 0.0
            || !o.power.is_finite()
        {
            return Err(ModelError::ShapeMismatch(format!(
                "implausible observation {o:?}"
            )));
        }
    }
    let mut rng = Rng::seed_from_u64(seed);
    // A physically-motivated center plus randomized perturbations.
    let center = Eq5Params {
        k1: 0.1,
        alpha: 1000.0,
        beta: -4000.0,
        k2: 0.05,
        gamma: 2.0,
        delta: -2.0,
    };
    let mut best: Option<(Eq5Params, f64, usize)> = None;
    for attempt in 0..10 {
        let start = if attempt == 0 {
            center
        } else {
            Eq5Params {
                k1: center.k1 * rng.jitter(1.0),
                alpha: rng.range_f64(200.0, 2000.0),
                beta: rng.range_f64(-6500.0, -2500.0),
                k2: center.k2 * rng.jitter(1.0),
                gamma: rng.range_f64(0.5, 4.0),
                delta: rng.range_f64(-5.0, 1.0),
            }
        };
        let (params, sse, iters) = lm_descend(start, obs, 300);
        if !sse.is_finite() {
            continue;
        }
        if best.as_ref().is_none_or(|(_, b, _)| sse < *b) {
            best = Some((params, sse, iters));
        }
        // Early out on an essentially perfect fit.
        if sse < 1e-12 {
            break;
        }
    }
    let (params, sse, iterations) =
        best.ok_or_else(|| ModelError::NoConvergence("all starts diverged".into()))?;
    Ok(LeakageFit {
        params,
        sse,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Eq5Params {
        Eq5Params {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        }
    }

    fn grid_observations(noise_sigma: f64, seed: u64) -> Vec<LeakageObservation> {
        let t = truth();
        let mut rng = Rng::seed_from_u64(seed);
        let mut obs = Vec::new();
        for vi in 0..8 {
            for ti in 0..6 {
                let v = 0.78 + 0.34 * vi as f64 / 7.0;
                let c = Celsius::new(20.0 + 55.0 * ti as f64 / 5.0);
                let p = t.eval(v, c) * rng.jitter(noise_sigma);
                obs.push(LeakageObservation {
                    voltage: v,
                    temp: c,
                    power: p,
                });
            }
        }
        obs
    }

    #[test]
    fn fits_noiseless_data_essentially_exactly() {
        let obs = grid_observations(0.0, 1);
        let fit = fit_leakage(&obs, 7).expect("fits");
        assert!(fit.rmse(obs.len()) < 1e-3, "rmse {}", fit.rmse(obs.len()));
        // Predictions match across the operating envelope, including
        // extrapolation to a hotter corner.
        let t = truth();
        for (v, c) in [(0.8, 30.0), (1.0, 55.0), (1.1, 80.0)] {
            let c = Celsius::new(c);
            let rel = (fit.params.eval(v, c) - t.eval(v, c)).value().abs() / t.eval(v, c).value();
            assert!(rel < 0.02, "rel error {rel} at ({v}, {c})");
        }
    }

    #[test]
    fn fits_noisy_data_within_tolerance() {
        let obs = grid_observations(0.03, 2);
        let fit = fit_leakage(&obs, 9).expect("fits");
        let t = truth();
        for (v, c) in [(0.85, 40.0), (1.05, 60.0)] {
            let c = Celsius::new(c);
            let rel = (fit.params.eval(v, c) - t.eval(v, c)).value().abs() / t.eval(v, c).value();
            assert!(rel < 0.08, "rel error {rel} at ({v}, {c})");
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let obs = grid_observations(0.02, 3);
        let a = fit_leakage(&obs, 11).expect("fits");
        let b = fit_leakage(&obs, 11).expect("fits");
        assert_eq!(a.params, b.params);
        assert_eq!(a.sse, b.sse);
    }

    #[test]
    fn too_few_observations_rejected() {
        let obs = grid_observations(0.0, 1);
        assert!(matches!(
            fit_leakage(&obs[..5], 1).unwrap_err(),
            ModelError::TooFewObservations { got: 5, need: 6 }
        ));
    }

    #[test]
    fn implausible_observations_rejected() {
        let mut obs = grid_observations(0.0, 1);
        obs[0].power = Watts::new(f64::NAN);
        assert!(matches!(
            fit_leakage(&obs, 1).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        let mut obs2 = grid_observations(0.0, 1);
        obs2[0].voltage = -1.0;
        assert!(fit_leakage(&obs2, 1).is_err());
    }

    #[test]
    fn eval_degenerate_inputs() {
        let t = truth();
        assert_eq!(t.eval(0.0, Celsius::new(50.0)), Watts::ZERO);
        assert_eq!(t.eval(1.0, Celsius::new(-300.0)), Watts::ZERO);
    }

    #[test]
    fn fitted_model_is_monotone_like_truth() {
        let obs = grid_observations(0.01, 5);
        let fit = fit_leakage(&obs, 13).expect("fits");
        let mut last = Watts::ZERO;
        for c in [25.0, 40.0, 55.0, 70.0] {
            let p = fit.params.eval(1.0, Celsius::new(c));
            assert!(p > last, "fitted leakage must rise with temperature");
            last = p;
        }
    }
}
