//! Small dense linear algebra.
//!
//! The regression problems in this workspace are tiny (tens of terms,
//! hundreds of observations), so a straightforward row-major matrix with
//! partial-pivot LU and normal-equation least squares — ridge-stabilized
//! when near-singular — is entirely sufficient and keeps the workspace
//! free of numerics dependencies.

use crate::ModelError;

/// A row-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// use dora_modeling::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = a.matvec(&[1.0, 1.0]);
/// assert_eq!(b, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions disagree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + a * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length disagrees");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * x[j]).sum::<f64>())
            .collect()
    }

    /// Adds `lambda` to every diagonal element (ridge shift), in place.
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let v = self.get(i, i) + lambda;
            self.set(i, i, v);
        }
    }
}

/// Solves the square system `A·x = b` by LU decomposition with partial
/// pivoting.
///
/// # Errors
///
/// [`ModelError::Singular`] if a pivot underflows, or
/// [`ModelError::ShapeMismatch`] for non-square or mismatched inputs.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, ModelError> {
    if a.rows() != a.cols() {
        return Err(ModelError::ShapeMismatch(format!(
            "{}x{} matrix is not square",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != a.rows() {
        return Err(ModelError::ShapeMismatch(format!(
            "rhs length {} vs {} rows",
            b.len(),
            a.rows()
        )));
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in col + 1..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(ModelError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = lu.get(col, c);
                lu.set(col, c, lu.get(pivot_row, c));
                lu.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = lu.get(r, c) - factor * lu.get(col, c);
                lu.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
            acc -= lu.get(i, j) * xj;
        }
        x[i] = acc / lu.get(i, i);
    }
    Ok(x)
}

/// Ordinary least squares `argmin_w ‖X·w − y‖²` via the normal equations,
/// retrying with increasing ridge regularization when `XᵀX` is singular.
///
/// # Errors
///
/// [`ModelError::ShapeMismatch`] for inconsistent inputs,
/// [`ModelError::TooFewObservations`] when rows < columns, and
/// [`ModelError::Singular`] if even heavy regularization fails.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, ModelError> {
    least_squares_ridge(x, y, 0.0)
}

/// Ridge-regularized least squares: `argmin_w ‖X·w − y‖² + λ·tr/n·‖w‖²`
/// with `λ = base_lambda`, escalating further if the system is still
/// numerically singular.
///
/// Polynomial response surfaces over a handful of distinct design points
/// (here: 14 training pages) are rank-deficient in the feature-product
/// directions; a small always-on ridge keeps the coefficients sane so the
/// model extrapolates gracefully to pages off the training manifold.
///
/// # Errors
///
/// As [`least_squares`].
pub fn least_squares_ridge(
    x: &Matrix,
    y: &[f64],
    base_lambda: f64,
) -> Result<Vec<f64>, ModelError> {
    if y.len() != x.rows() {
        return Err(ModelError::ShapeMismatch(format!(
            "{} targets vs {} rows",
            y.len(),
            x.rows()
        )));
    }
    if x.rows() < x.cols() {
        return Err(ModelError::TooFewObservations {
            got: x.rows(),
            need: x.cols(),
        });
    }
    let xt = x.transpose();
    let xtx = xt.matmul(x);
    let xty = xt.matvec(y);
    // Solve at the requested ridge; escalate if ill-conditioned.
    for lambda in [base_lambda, 1e-10, 1e-8, 1e-6, 1e-4] {
        if lambda < base_lambda {
            continue;
        }
        let mut a = xtx.clone();
        if lambda > 0.0 {
            a.add_diagonal(lambda * trace_mean(&xtx));
        }
        if let Ok(w) = lu_solve(&a, &xty) {
            if w.iter().all(|v| v.is_finite()) {
                return Ok(w);
            }
        }
    }
    Err(ModelError::Singular)
}

/// Mean of the diagonal, used to scale ridge shifts to the problem.
fn trace_mean(m: &Matrix) -> f64 {
    let n = m.rows().min(m.cols());
    if n == 0 {
        return 1.0;
    }
    let t: f64 = (0..n).map(|i| m.get(i, i)).sum();
    (t / n as f64).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(3);
        let x = lu_solve(&a, &[1.0, 2.0, 3.0]).expect("identity is regular");
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_system_solves() {
        // 2x + y = 5; x + 3y = 10  => x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).expect("regular");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).expect("needs pivot");
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]).unwrap_err(), ModelError::Singular);
    }

    #[test]
    fn shape_mismatches_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(matches!(
            lu_solve(&a, &[1.0]).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            lu_solve(&sq, &[1.0]).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
    }

    #[test]
    fn least_squares_recovers_exact_linear_model() {
        // y = 4 + 2a - 3b over a grid; design has an intercept column.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..6 {
            for b in 0..6 {
                rows.push(vec![1.0, a as f64, b as f64]);
                y.push(4.0 + 2.0 * a as f64 - 3.0 * b as f64);
            }
        }
        let x = Matrix::from_rows(&rows);
        let w = least_squares(&x, &y).expect("well posed");
        assert!((w[0] - 4.0).abs() < 1e-9);
        assert!((w[1] - 2.0).abs() < 1e-9);
        assert!((w[2] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_with_noise() {
        // Noisy observations still produce coefficients near the truth.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 12345u64;
        let mut noise = move || {
            // Tiny deterministic LCG noise in [-0.05, 0.05].
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.1
        };
        for i in 0..200 {
            let a = (i % 14) as f64;
            let b = (i % 9) as f64;
            rows.push(vec![1.0, a, b]);
            y.push(1.5 + 0.7 * a - 0.2 * b + noise());
        }
        let x = Matrix::from_rows(&rows);
        let w = least_squares(&x, &y).expect("well posed");
        assert!((w[0] - 1.5).abs() < 0.05, "{w:?}");
        assert!((w[1] - 0.7).abs() < 0.01, "{w:?}");
        assert!((w[2] + 0.2).abs() < 0.01, "{w:?}");
    }

    #[test]
    fn least_squares_collinear_columns_fall_back_to_ridge() {
        // Second and third columns identical: XtX singular; ridge returns
        // a finite solution that still fits the data.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let a = i as f64;
            rows.push(vec![1.0, a, a]);
            y.push(2.0 + 3.0 * a);
        }
        let x = Matrix::from_rows(&rows);
        let w = least_squares(&x, &y).expect("ridge rescues");
        // Prediction quality is what matters; coefficients split the 3.0.
        let pred = w[0] + w[1] * 5.0 + w[2] * 5.0;
        assert!((pred - 17.0).abs() < 0.05, "pred {pred} with {w:?}");
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert!(matches!(
            least_squares(&x, &[1.0]).unwrap_err(),
            ModelError::TooFewObservations { got: 1, need: 3 }
        ));
    }

    #[test]
    fn transpose_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let ata = at.matmul(&a);
        assert_eq!(ata.rows(), 3);
        assert_eq!(ata.get(0, 0), 17.0);
        assert_eq!(ata.get(2, 2), 45.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
