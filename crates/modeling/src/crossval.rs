//! K-fold cross-validation for response surfaces.
//!
//! The paper validates its models on held-out pages; during development
//! one also wants an estimate of generalization error *within* the
//! training campaign. This module shuffles the observations into `k`
//! folds, fits the surface on `k−1` of them, scores the held-out fold,
//! and aggregates — the standard protocol, deterministic under a seed.

use crate::metrics::mape;
use crate::surface::{ResponseSurface, SurfaceKind};
use crate::ModelError;
use dora_sim_core::Rng;

/// The outcome of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Held-out MAPE per fold, in fold order.
    pub fold_mapes: Vec<f64>,
}

impl CvReport {
    /// Mean held-out MAPE across folds.
    pub fn mean_mape(&self) -> f64 {
        self.fold_mapes.iter().sum::<f64>() / self.fold_mapes.len() as f64
    }

    /// Standard deviation of the per-fold MAPEs (a stability signal).
    pub fn std_mape(&self) -> f64 {
        let mean = self.mean_mape();
        let var = self
            .fold_mapes
            .iter()
            .map(|m| (m - mean).powi(2))
            .sum::<f64>()
            / self.fold_mapes.len() as f64;
        var.sqrt()
    }
}

/// Runs `k`-fold cross-validation of a surface kind over observations.
///
/// # Errors
///
/// [`ModelError::ShapeMismatch`] for inconsistent inputs or `k < 2`;
/// [`ModelError::TooFewObservations`] when a training split cannot
/// identify the surface; fit errors propagate.
///
/// # Example
///
/// ```
/// use dora_modeling::crossval::cross_validate;
/// use dora_modeling::surface::SurfaceKind;
///
/// // y = 1 + 2a - b over a grid: linear CV error is ~zero.
/// let xs: Vec<Vec<f64>> = (0..60)
///     .map(|i| vec![(i % 8) as f64, (i % 5) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x[0] - x[1]).collect();
/// let report = cross_validate(SurfaceKind::Linear, &xs, &ys, 5, 7)?;
/// assert!(report.mean_mape() < 1e-6);
/// # Ok::<(), dora_modeling::ModelError>(())
/// ```
pub fn cross_validate(
    kind: SurfaceKind,
    xs: &[Vec<f64>],
    ys: &[f64],
    k: usize,
    seed: u64,
) -> Result<CvReport, ModelError> {
    if xs.len() != ys.len() {
        return Err(ModelError::ShapeMismatch(format!(
            "{} inputs vs {} targets",
            xs.len(),
            ys.len()
        )));
    }
    if k < 2 {
        return Err(ModelError::ShapeMismatch(format!(
            "cross-validation needs k >= 2, got {k}"
        )));
    }
    if xs.len() < k {
        return Err(ModelError::TooFewObservations {
            got: xs.len(),
            need: k,
        });
    }
    let n_inputs = xs[0].len();
    let surface = ResponseSurface::new(kind, n_inputs);

    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(&mut order);

    let mut fold_mapes = Vec::with_capacity(k);
    for fold in 0..k {
        let is_held = |pos: usize| pos % k == fold;
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut held_x = Vec::new();
        let mut held_y = Vec::new();
        for (pos, &idx) in order.iter().enumerate() {
            if is_held(pos) {
                held_x.push(xs[idx].clone());
                held_y.push(ys[idx]);
            } else {
                train_x.push(xs[idx].clone());
                train_y.push(ys[idx]);
            }
        }
        let fit = surface.fit(&train_x, &train_y)?;
        let predicted: Vec<f64> = held_x.iter().map(|x| fit.predict(x)).collect();
        fold_mapes.push(mape(&predicted, &held_y));
    }
    Ok(CvReport { fold_mapes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 9) as f64 + 1.0, ((i * 3) % 7) as f64 + 1.0])
            .collect();
        let ys = xs.iter().map(|x| 2.0 + 0.5 * x[0] + 1.5 * x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn linear_truth_scores_near_zero() {
        let (xs, ys) = grid(80);
        let r = cross_validate(SurfaceKind::Linear, &xs, &ys, 5, 1).expect("valid");
        assert_eq!(r.fold_mapes.len(), 5);
        assert!(r.mean_mape() < 1e-9, "mean {:.2e}", r.mean_mape());
        assert!(r.std_mape() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = grid(60);
        let a = cross_validate(SurfaceKind::Interaction, &xs, &ys, 4, 9).expect("valid");
        let b = cross_validate(SurfaceKind::Interaction, &xs, &ys, 4, 9).expect("valid");
        assert_eq!(a, b);
        let c = cross_validate(SurfaceKind::Interaction, &xs, &ys, 4, 10).expect("valid");
        // A different seed shuffles folds differently (values may differ).
        let _ = c;
    }

    #[test]
    fn overfit_kind_shows_higher_cv_error_on_noise() {
        // A noisy constant: more terms -> more variance -> worse CV.
        let mut rng = Rng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.range_f64(0.5, 5.0), rng.range_f64(0.5, 5.0)])
            .collect();
        let ys: Vec<f64> = (0..60).map(|_| 10.0 * rng.jitter(0.05)).collect();
        let lin = cross_validate(SurfaceKind::Linear, &xs, &ys, 5, 4).expect("valid");
        let quad = cross_validate(SurfaceKind::Quadratic, &xs, &ys, 5, 4).expect("valid");
        assert!(
            quad.mean_mape() >= lin.mean_mape() * 0.9,
            "quadratic should not generalize better on pure noise: {:.4} vs {:.4}",
            quad.mean_mape(),
            lin.mean_mape()
        );
    }

    #[test]
    fn input_validation() {
        let (xs, ys) = grid(20);
        assert!(matches!(
            cross_validate(SurfaceKind::Linear, &xs, &ys[..10], 4, 1).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        assert!(matches!(
            cross_validate(SurfaceKind::Linear, &xs, &ys, 1, 1).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        let (xs2, ys2) = grid(3);
        assert!(matches!(
            cross_validate(SurfaceKind::Linear, &xs2, &ys2, 5, 1).unwrap_err(),
            ModelError::TooFewObservations { .. }
        ));
    }
}
