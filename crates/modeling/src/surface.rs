//! Response-surface regression (Eqs. 2–4).
//!
//! The paper hypothesizes three parametric relationships between a
//! response `y` (load time or power) and independent variables
//! `X1..XN`:
//!
//! * **Eq. 2 — linear**: `y = c0 + Σ ci·Xi`
//! * **Eq. 3 — quadratic**: linear plus all products `Xi·Xj` including
//!   squares (`i = j` allowed);
//! * **Eq. 4 — interaction**: linear plus cross products only (`i ≠ j`).
//!
//! Coefficients are "estimated by minimizing the mean-square error between
//! a set of observed values and model predicted values" (Section III-A) —
//! ordinary least squares here. Inputs are z-score standardized before
//! expansion so the Table I features, which span five orders of magnitude
//! (thousands of DOM nodes vs. single-digit GHz), don't wreck the
//! conditioning of the normal equations.

use crate::linalg::{least_squares_ridge, Matrix};
use crate::ModelError;

/// The paper's nine independent variables (Table I), in order X1–X9.
///
/// Campaign code uses this enum to build observation vectors in a fixed,
/// documented order instead of passing anonymous arrays around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// X1 — number of DOM tree nodes.
    DomNodes,
    /// X2 — number of `class` attributes.
    ClassAttrs,
    /// X3 — number of `href` attributes.
    HrefAttrs,
    /// X4 — number of `<a>` tags.
    ATags,
    /// X5 — number of `<div>` tags.
    DivTags,
    /// X6 — shared L2 cache MPKI.
    L2Mpki,
    /// X7 — core frequency (GHz).
    CoreFrequency,
    /// X8 — memory bus frequency (MHz).
    BusFrequency,
    /// X9 — core utilization of the co-scheduled task.
    CoRunUtilization,
}

impl Feature {
    /// All nine features in Table I order.
    pub const ALL: [Feature; 9] = [
        Feature::DomNodes,
        Feature::ClassAttrs,
        Feature::HrefAttrs,
        Feature::ATags,
        Feature::DivTags,
        Feature::L2Mpki,
        Feature::CoreFrequency,
        Feature::BusFrequency,
        Feature::CoRunUtilization,
    ];

    /// The Table I label (X1..X9).
    pub fn label(self) -> &'static str {
        match self {
            Feature::DomNodes => "X1",
            Feature::ClassAttrs => "X2",
            Feature::HrefAttrs => "X3",
            Feature::ATags => "X4",
            Feature::DivTags => "X5",
            Feature::L2Mpki => "X6",
            Feature::CoreFrequency => "X7",
            Feature::BusFrequency => "X8",
            Feature::CoRunUtilization => "X9",
        }
    }

    /// A human-readable description matching Table I.
    pub fn description(self) -> &'static str {
        match self {
            Feature::DomNodes => "Number of DOM tree nodes",
            Feature::ClassAttrs => "Number of class attributes",
            Feature::HrefAttrs => "Number of href attributes",
            Feature::ATags => "Number of \"a\" tags",
            Feature::DivTags => "Number of \"div\" tags",
            Feature::L2Mpki => "Shared L2 cache MPKI",
            Feature::CoreFrequency => "Core frequency",
            Feature::BusFrequency => "Memory bus frequency",
            Feature::CoRunUtilization => "Core utilization of co-scheduled task",
        }
    }
}

/// Which of the paper's three response surfaces to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurfaceKind {
    /// Eq. 2 — simple linear regression.
    Linear,
    /// Eq. 3 — linear plus all pairwise products including squares.
    Quadratic,
    /// Eq. 4 — linear plus cross products only ("linear regression with
    /// cross product terms", the paper's pick for load time).
    Interaction,
}

impl SurfaceKind {
    /// All three candidate surfaces.
    pub const ALL: [SurfaceKind; 3] = [
        SurfaceKind::Linear,
        SurfaceKind::Quadratic,
        SurfaceKind::Interaction,
    ];
}

impl std::fmt::Display for SurfaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SurfaceKind::Linear => "linear",
            SurfaceKind::Quadratic => "quadratic",
            SurfaceKind::Interaction => "interaction",
        })
    }
}

/// An (unfitted) response surface over `n` input variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseSurface {
    kind: SurfaceKind,
    n: usize,
}

impl ResponseSurface {
    /// A surface of the given kind over `n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(kind: SurfaceKind, n: usize) -> Self {
        assert!(n > 0, "a surface needs at least one input");
        ResponseSurface { kind, n }
    }

    /// The surface kind.
    pub fn kind(&self) -> SurfaceKind {
        self.kind
    }

    /// Number of raw input variables.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Number of model terms including the intercept.
    pub fn term_count(&self) -> usize {
        let n = self.n;
        match self.kind {
            SurfaceKind::Linear => 1 + n,
            SurfaceKind::Quadratic => 1 + n + n * (n + 1) / 2,
            SurfaceKind::Interaction => 1 + n + n * (n - 1) / 2,
        }
    }

    /// Expands a (standardized) input vector into the model's term vector,
    /// intercept first.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != inputs()`.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "input length disagrees with surface");
        let mut terms = Vec::with_capacity(self.term_count());
        terms.push(1.0);
        terms.extend_from_slice(x);
        match self.kind {
            SurfaceKind::Linear => {}
            SurfaceKind::Quadratic => {
                for i in 0..self.n {
                    for j in i..self.n {
                        terms.push(x[i] * x[j]);
                    }
                }
            }
            SurfaceKind::Interaction => {
                for i in 0..self.n {
                    for j in i + 1..self.n {
                        terms.push(x[i] * x[j]);
                    }
                }
            }
        }
        terms
    }

    /// Fits the surface to observations by least squares, standardizing
    /// inputs first.
    ///
    /// # Errors
    ///
    /// [`ModelError::ShapeMismatch`] for inconsistent inputs,
    /// [`ModelError::TooFewObservations`] when there are fewer rows than
    /// model terms, and [`ModelError::Singular`] for a degenerate design.
    pub fn fit(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<FittedSurface, ModelError> {
        if xs.len() != ys.len() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} inputs vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        if xs.len() < self.term_count() {
            return Err(ModelError::TooFewObservations {
                got: xs.len(),
                need: self.term_count(),
            });
        }
        for row in xs {
            if row.len() != self.n {
                return Err(ModelError::ShapeMismatch(format!(
                    "row of length {} for surface over {} inputs",
                    row.len(),
                    self.n
                )));
            }
        }
        // Standardize each input column.
        let m = xs.len() as f64;
        let mut means = vec![0.0; self.n];
        let mut stds = vec![0.0; self.n];
        for j in 0..self.n {
            let mean = xs.iter().map(|r| r[j]).sum::<f64>() / m;
            let var = xs.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / m;
            means[j] = mean;
            stds[j] = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        }
        let design_rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                let z: Vec<f64> = r
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v - means[j]) / stds[j])
                    .collect();
                self.expand(&z)
            })
            .collect();
        let design = Matrix::from_rows(&design_rows);
        let coefficients = least_squares_ridge(&design, ys, 0.0)?;
        Ok(FittedSurface {
            surface: *self,
            means,
            stds,
            coefficients,
        })
    }
}

/// A fitted response surface: standardization constants plus coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedSurface {
    surface: ResponseSurface,
    means: Vec<f64>,
    stds: Vec<f64>,
    coefficients: Vec<f64>,
}

impl FittedSurface {
    /// Predicts the response for a raw (unstandardized) input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` disagrees with the surface's input count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.surface.n,
            "input length disagrees with surface"
        );
        let z: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(j, &v)| (v - self.means[j]) / self.stds[j])
            .collect();
        self.surface
            .expand(&z)
            .iter()
            .zip(&self.coefficients)
            .map(|(t, c)| t * c)
            .sum()
    }

    /// The underlying surface definition.
    pub fn surface(&self) -> ResponseSurface {
        self.surface
    }

    /// The fitted coefficients (intercept first), in standardized space.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The per-input standardization means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The per-input standardization standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Reassembles a fitted surface from its stored parts (the inverse of
    /// the accessors; used by model persistence).
    ///
    /// # Errors
    ///
    /// [`ModelError::ShapeMismatch`] when the part lengths disagree with
    /// the surface definition or a standard deviation is non-positive.
    pub fn from_parts(
        surface: ResponseSurface,
        means: Vec<f64>,
        stds: Vec<f64>,
        coefficients: Vec<f64>,
    ) -> Result<FittedSurface, ModelError> {
        if means.len() != surface.inputs() || stds.len() != surface.inputs() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} means / {} stds for a surface over {} inputs",
                means.len(),
                stds.len(),
                surface.inputs()
            )));
        }
        if coefficients.len() != surface.term_count() {
            return Err(ModelError::ShapeMismatch(format!(
                "{} coefficients for a surface with {} terms",
                coefficients.len(),
                surface.term_count()
            )));
        }
        if stds.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
            return Err(ModelError::ShapeMismatch(
                "standard deviations must be positive".into(),
            ));
        }
        if means.iter().chain(&coefficients).any(|v| !v.is_finite()) {
            return Err(ModelError::ShapeMismatch(
                "means and coefficients must be finite".into(),
            ));
        }
        Ok(FittedSurface {
            surface,
            means,
            stds,
            coefficients,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n_points: usize) -> Vec<Vec<f64>> {
        // A deterministic, well-spread 3-input grid.
        (0..n_points)
            .map(|i| {
                vec![
                    (i % 7) as f64,
                    ((i * 3) % 11) as f64 * 0.5,
                    ((i * 5) % 13) as f64 * 2.0,
                ]
            })
            .collect()
    }

    #[test]
    fn term_counts() {
        assert_eq!(
            ResponseSurface::new(SurfaceKind::Linear, 9).term_count(),
            10
        );
        assert_eq!(
            ResponseSurface::new(SurfaceKind::Interaction, 9).term_count(),
            1 + 9 + 36
        );
        assert_eq!(
            ResponseSurface::new(SurfaceKind::Quadratic, 9).term_count(),
            1 + 9 + 45
        );
        assert_eq!(
            ResponseSurface::new(SurfaceKind::Interaction, 1).term_count(),
            2
        );
    }

    #[test]
    fn expand_orders_terms_intercept_first() {
        let s = ResponseSurface::new(SurfaceKind::Interaction, 2);
        assert_eq!(s.expand(&[2.0, 3.0]), vec![1.0, 2.0, 3.0, 6.0]);
        let q = ResponseSurface::new(SurfaceKind::Quadratic, 2);
        assert_eq!(q.expand(&[2.0, 3.0]), vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn linear_surface_recovers_linear_truth() {
        let xs = grid(60);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 5.0 + 2.0 * x[0] - x[1] + 0.5 * x[2])
            .collect();
        let fit = ResponseSurface::new(SurfaceKind::Linear, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        for x in &xs {
            let truth = 5.0 + 2.0 * x[0] - x[1] + 0.5 * x[2];
            assert!((fit.predict(x) - truth).abs() < 1e-6);
        }
        // And generalizes off-grid.
        assert!((fit.predict(&[1.5, 2.5, 3.5]) - (5.0 + 3.0 - 2.5 + 1.75)).abs() < 1e-6);
    }

    #[test]
    fn interaction_surface_captures_cross_terms() {
        let xs = grid(80);
        let truth = |x: &[f64]| 1.0 + x[0] + 0.3 * x[1] * x[2] - 0.2 * x[0] * x[1];
        let ys: Vec<f64> = xs.iter().map(|x| truth(x)).collect();
        // Linear fit cannot represent the cross terms...
        let lin = ResponseSurface::new(SurfaceKind::Linear, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        let lin_err: f64 = xs
            .iter()
            .map(|x| (lin.predict(x) - truth(x)).abs())
            .fold(0.0, f64::max);
        // ...but the interaction fit nails them.
        let inter = ResponseSurface::new(SurfaceKind::Interaction, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        let inter_err: f64 = xs
            .iter()
            .map(|x| (inter.predict(x) - truth(x)).abs())
            .fold(0.0, f64::max);
        assert!(inter_err < 1e-6, "interaction residual {inter_err}");
        assert!(lin_err > 0.1, "linear should visibly miss: {lin_err}");
    }

    #[test]
    fn quadratic_surface_captures_squares() {
        let xs = grid(80);
        let truth = |x: &[f64]| 2.0 + x[0] * x[0] - 0.5 * x[2] * x[2];
        let ys: Vec<f64> = xs.iter().map(|x| truth(x)).collect();
        let quad = ResponseSurface::new(SurfaceKind::Quadratic, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        let err: f64 = xs
            .iter()
            .map(|x| (quad.predict(x) - truth(x)).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "quadratic residual {err}");
        // Interaction (no squares) cannot represent this.
        let inter = ResponseSurface::new(SurfaceKind::Interaction, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        let inter_err: f64 = xs
            .iter()
            .map(|x| (inter.predict(x) - truth(x)).abs())
            .fold(0.0, f64::max);
        assert!(inter_err > 0.1);
    }

    #[test]
    fn standardization_survives_wildly_scaled_features() {
        // DOM nodes in thousands next to GHz in single digits.
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![1000.0 + 100.0 * (i % 10) as f64, 0.3 + 0.2 * (i % 8) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.001 * x[0] + 2.0 / x[1]).collect();
        let fit = ResponseSurface::new(SurfaceKind::Quadratic, 2)
            .fit(&xs, &ys)
            .expect("conditioned by standardization");
        let worst: f64 = xs
            .iter()
            .map(|x| (fit.predict(x) - (0.001 * x[0] + 2.0 / x[1])).abs())
            .fold(0.0, f64::max);
        // 1/x isn't exactly representable, but the fit must be sane.
        assert!(worst < 0.6, "worst residual {worst}");
    }

    #[test]
    fn too_few_observations_rejected() {
        let s = ResponseSurface::new(SurfaceKind::Quadratic, 3);
        let xs = grid(5);
        let ys = vec![0.0; 5];
        assert!(matches!(
            s.fit(&xs, &ys).unwrap_err(),
            ModelError::TooFewObservations { .. }
        ));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let s = ResponseSurface::new(SurfaceKind::Linear, 3);
        let xs = grid(10);
        assert!(matches!(
            s.fit(&xs, &[0.0; 9]).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
        let bad_row = vec![vec![1.0, 2.0]; 10];
        assert!(matches!(
            s.fit(&bad_row, &[0.0; 10]).unwrap_err(),
            ModelError::ShapeMismatch(_)
        ));
    }

    #[test]
    fn feature_labels_match_table1() {
        assert_eq!(Feature::ALL.len(), 9);
        assert_eq!(Feature::DomNodes.label(), "X1");
        assert_eq!(Feature::CoRunUtilization.label(), "X9");
        assert_eq!(Feature::L2Mpki.description(), "Shared L2 cache MPKI");
    }
}
