//! # dora-modeling
//!
//! The statistical substrate of the DORA reproduction: everything needed
//! to train the paper's load-time, power and leakage models from scratch,
//! with no external numerics dependency.
//!
//! * [`linalg`] — small dense matrices, LU solve with partial pivoting,
//!   and ridge-stabilized least squares.
//! * [`surface`] — the paper's three response surfaces (Eq. 2 linear,
//!   Eq. 3 quadratic, Eq. 4 interaction) over the Table I feature vector,
//!   with z-score standardization for conditioning.
//! * [`leakage`] — Levenberg–Marquardt fitting of the Eq. 5 leakage model
//!   `P = k1·v·T²·e^((αv+β)/T) + k2·e^(γv+δ)` ("determined using
//!   non-linear numerical solutions and mean square error minimization",
//!   Section III-B).
//! * [`metrics`] — MAPE, R², and empirical error CDFs (the paper reports
//!   2.5 % / 4 % average error and plots the CDFs in Fig. 5).
//! * [`crossval`] — deterministic k-fold cross-validation of surface
//!   kinds, for generalization estimates within a campaign.
//!
//! # Example
//!
//! ```
//! use dora_modeling::surface::{ResponseSurface, SurfaceKind};
//!
//! // y = 3 + 2·x0 − x1, recovered exactly by a linear surface.
//! let xs: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![i as f64, (i * i % 7) as f64])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
//! let fit = ResponseSurface::new(SurfaceKind::Linear, 2).fit(&xs, &ys)?;
//! let pred = fit.predict(&[4.0, 2.0]);
//! assert!((pred - 9.0).abs() < 1e-6);
//! # Ok::<(), dora_modeling::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crossval;
pub mod leakage;
pub mod linalg;
pub mod metrics;
pub mod surface;

/// Errors produced by model fitting and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The design matrix is singular (or numerically so) even after
    /// ridge stabilization.
    Singular,
    /// Input shapes disagree (e.g. `X` rows vs `y` length).
    ShapeMismatch(String),
    /// Not enough observations to identify the requested model.
    TooFewObservations {
        /// Observations provided.
        got: usize,
        /// Observations required (number of model terms).
        need: usize,
    },
    /// The optimizer failed to converge to a usable fit.
    NoConvergence(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Singular => f.write_str("design matrix is singular"),
            ModelError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            ModelError::TooFewObservations { got, need } => {
                write!(f, "{got} observations cannot identify {need} terms")
            }
            ModelError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}
