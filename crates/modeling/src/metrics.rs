//! Model-quality metrics.
//!
//! The paper reports model quality as average percentage error (2.5 % for
//! load time, 4 % for power — i.e. "97.5 % / 96 % accuracy") and as
//! cumulative error distributions (Fig. 5: "about 87.5 % of the web pages
//! have less than 5 % error with a maximum error of 10 %").

use dora_sim_core::stats::Samples;

/// Mean absolute percentage error of predictions against truth, in
/// fraction form (0.025 = 2.5 %). Pairs whose truth is zero are skipped.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use dora_modeling::metrics::mape;
///
/// let m = mape(&[102.0, 98.0], &[100.0, 100.0]);
/// assert!((m - 0.02).abs() < 1e-12);
/// ```
pub fn mape(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        if t != 0.0 && p.is_finite() && t.is_finite() {
            sum += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Model "accuracy" as the paper quotes it: `100·(1 − MAPE)` percent.
pub fn accuracy_percent(predicted: &[f64], truth: &[f64]) -> f64 {
    100.0 * (1.0 - mape(predicted, truth))
}

/// Coefficient of determination `R²`.
///
/// Returns 1.0 for a perfect fit, and can be negative for fits worse than
/// the mean. Returns 0.0 when the truth has no variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r_squared(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "need at least one observation");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).powi(2))
        .sum();
    if ss_tot == 0.0 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// The per-observation relative errors `|p − t| / t` as a [`Samples`] set,
/// ready for quantiles and the Fig. 5-style CDF.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn error_distribution(predicted: &[f64], truth: &[f64]) -> Samples {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    predicted
        .iter()
        .zip(truth)
        .filter(|(_, &t)| t != 0.0)
        .map(|(&p, &t)| ((p - t) / t).abs())
        .collect()
}

/// Convenience summary of a model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Mean absolute percentage error (fraction).
    pub mape: f64,
    /// `R²` of predictions vs truth.
    pub r_squared: f64,
    /// Fraction of observations with relative error below 5 %.
    pub frac_within_5pct: f64,
    /// Fraction of observations with relative error below 10 %.
    pub frac_within_10pct: f64,
    /// The worst relative error.
    pub max_error: f64,
}

/// Evaluates predictions against ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn evaluate(predicted: &[f64], truth: &[f64]) -> EvalSummary {
    let errors = error_distribution(predicted, truth);
    EvalSummary {
        mape: mape(predicted, truth),
        r_squared: r_squared(predicted, truth),
        frac_within_5pct: errors.cdf_at(0.05),
        frac_within_10pct: errors.cdf_at(0.10),
        max_error: errors.quantile(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(accuracy_percent(&t, &t), 100.0);
        assert_eq!(r_squared(&t, &t), 1.0);
        let s = evaluate(&t, &t);
        assert_eq!(s.frac_within_5pct, 1.0);
        assert_eq!(s.max_error, 0.0);
    }

    #[test]
    fn known_mape() {
        let p = [110.0, 95.0, 100.0];
        let t = [100.0, 100.0, 100.0];
        assert!((mape(&p, &t) - 0.05).abs() < 1e-12);
        assert!((accuracy_percent(&p, &t) - 95.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_skipped() {
        let p = [1.0, 50.0];
        let t = [0.0, 100.0];
        assert!((mape(&p, &t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5; 4];
        assert!(r_squared(&mean, &t).abs() < 1e-12);
        // Worse than the mean goes negative.
        let bad = [4.0, 3.0, 2.0, 1.0];
        assert!(r_squared(&bad, &t) < 0.0);
    }

    #[test]
    fn r_squared_constant_truth_is_zero() {
        assert_eq!(r_squared(&[5.0, 5.1], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn evaluate_summary_fields() {
        // Errors: 2%, 4%, 8%, 20%.
        let t = [100.0; 4];
        let p = [102.0, 96.0, 108.0, 120.0];
        let s = evaluate(&p, &t);
        assert!((s.mape - 0.085).abs() < 1e-12);
        assert_eq!(s.frac_within_5pct, 0.5);
        assert_eq!(s.frac_within_10pct, 0.75);
        assert!((s.max_error - 0.20).abs() < 1e-12);
    }

    #[test]
    fn error_distribution_is_sorted_cdf_input() {
        let t = [10.0, 10.0];
        let p = [11.0, 9.5];
        let mut d = error_distribution(&p, &t);
        assert_eq!(d.sorted(), &[0.05, 0.1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
