//! Battery-life view: a multi-page browsing session (load, read, repeat)
//! with a background co-runner, compared across governors — including a
//! freshly trained DORA, which retargets its page model at every
//! navigation.
//!
//! ```text
//! cargo run --release --example browsing_session
//! ```

// Example code: failing fast on setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::browser::Catalog;
use dora_repro::campaign::session::{run_session, SessionConfig};
use dora_repro::coworkloads::Kernel;
use dora_repro::dora::{DoraConfig, DoraGovernor};
use dora_repro::experiments::pipeline::{Pipeline, Scale};
use dora_repro::governors::{Governor, InteractiveGovernor, OndemandGovernor, PerformanceGovernor};
use dora_repro::soc::DvfsTable;
use dora_repro::units::WattHours;

/// Nexus 5 battery capacity (2300 mAh at 3.8 V).
const BATTERY: WattHours = WattHours::new(8.74);

fn main() {
    let catalog = Catalog::alexa18();
    let itinerary = [
        "Reddit", "CNN", "Amazon", "Youtube", "MSN", "ESPN", "BBC", "Twitter",
    ];
    let pages: Vec<_> = itinerary
        .iter()
        .map(|n| catalog.page(n).expect("page in catalog"))
        .collect();
    let kernel = Kernel::by_name("bfs").expect("in suite");
    let config = SessionConfig::default();
    let table = DvfsTable::default();

    println!("training DORA (quick grid)...");
    let pipeline = Pipeline::build(Scale::Quick, 42);

    println!(
        "\n{}-page session with medium-intensity co-runner (bfs), 8s think time:\n",
        pages.len()
    );
    println!(
        "{:<13} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "governor", "energy(J)", "mean(W)", "met 3s", "peak die(C)", "battery(h)"
    );
    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new(InteractiveGovernor::new(table.clone())),
        Box::new(OndemandGovernor::new(table.clone())),
        Box::new(PerformanceGovernor::new(table.clone())),
        Box::new(DoraGovernor::new(
            pipeline.models.clone(),
            pages[0].features,
            DoraConfig::default(),
        )),
    ];
    for governor in &mut governors {
        let r = run_session(&pages, Some(&kernel), governor.as_mut(), &config);
        println!(
            "{:<13} {:>10.1} {:>10.2} {:>9.0}% {:>11.1} {:>12.1}",
            r.governor,
            r.energy.value(),
            r.mean_power().value(),
            r.met_fraction() * 100.0,
            r.peak_temp.value(),
            r.battery_hours(BATTERY),
        );
    }
    println!(
        "\nDORA races each load to its deadline-safe optimum, then the idle \
         think time costs the same for everyone — so its per-load PPW edge \
         compounds into session battery life."
    );
}
