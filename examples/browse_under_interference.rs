//! The paper's motivating experiment as a playground: pick a page, pick a
//! co-runner, pick a governor, watch what happens.
//!
//! ```text
//! cargo run --release --example browse_under_interference -- Reddit backprop
//! ```
//!
//! Arguments default to `Reddit backprop`. Any catalog page
//! (`cargo run --example browse_under_interference -- list` prints them)
//! and any Table III kernel name (or `alone`) work.

use dora_repro::browser::catalog::Catalog;
use dora_repro::campaign::runner::{run_page, ScenarioConfig};
use dora_repro::coworkloads::Kernel;
use dora_repro::governors::{
    ConservativeGovernor, Governor, InteractiveGovernor, PerformanceGovernor, PowersaveGovernor,
};
use dora_repro::soc::DvfsTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let catalog = Catalog::alexa18();
    if args.first().map(String::as_str) == Some("list") {
        println!("pages:");
        for p in catalog.pages() {
            println!(
                "  {:<12} ({:?}, {} DOM nodes)",
                p.name,
                p.class,
                p.features.dom_nodes()
            );
        }
        println!("kernels:");
        for k in Kernel::all() {
            println!("  {:<18} ({})", k.name(), k.intensity());
        }
        return;
    }

    let page_name = args.first().map(String::as_str).unwrap_or("Reddit");
    let kernel_name = args.get(1).map(String::as_str).unwrap_or("backprop");
    let Some(page) = catalog.page(page_name) else {
        eprintln!("unknown page {page_name:?}; try `-- list`");
        std::process::exit(1);
    };
    let kernel = if kernel_name.eq_ignore_ascii_case("alone") {
        None
    } else {
        match Kernel::by_name(kernel_name) {
            Some(k) => Some(k),
            None => {
                eprintln!("unknown kernel {kernel_name:?}; try `-- list`");
                std::process::exit(1);
            }
        }
    };

    let config = ScenarioConfig::default();
    let table = DvfsTable::default();
    println!(
        "loading {} with co-runner {} under each stock governor:\n",
        page.name,
        kernel.as_ref().map_or("none", |k| k.name())
    );
    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>10} {:>9}",
        "governor", "load(s)", "power(W)", "PPW", "deadline", "f(GHz)"
    );
    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new(PowersaveGovernor::new(table.clone())),
        Box::new(ConservativeGovernor::new(table.clone())),
        Box::new(InteractiveGovernor::new(table.clone())),
        Box::new(PerformanceGovernor::new(table.clone())),
    ];
    for governor in &mut governors {
        let r = run_page(page, kernel.as_ref(), governor.as_mut(), &config);
        println!(
            "{:<14} {:>8.2} {:>9.2} {:>8.4} {:>10} {:>9.2}",
            r.governor,
            r.load_time.value(),
            r.mean_power.value(),
            r.ppw.value(),
            if r.met_deadline { "met" } else { "missed" },
            r.mean_frequency.as_ghz(),
        );
    }
    println!("\n(train DORA with the quickstart example to add it to this table)");
}
