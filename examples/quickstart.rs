//! Quickstart: train DORA's models in the simulator, then let the
//! governor drive a page load under memory interference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Example code: failing fast on setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::campaign::driver::CampaignDriver;
use dora_repro::campaign::evaluate::{Policy, Subset};
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::experiments::pipeline::{Pipeline, Scale};

fn main() {
    // 1. Train: run the offline measurement campaign (Section IV-C) and
    //    fit the load-time, power and leakage models. `Scale::Quick`
    //    sweeps a reduced grid; use `Scale::Full` for the paper's 588
    //    observations.
    println!("training DORA's models (quick grid)...");
    let pipeline = Pipeline::build(Scale::Quick, 42);
    println!(
        "  {} observations, {} leakage calibration points",
        pipeline.observations.len(),
        pipeline.leakage_observations.len()
    );

    // 2. Check the models the way the paper does (Section V-A).
    let eval = dora_repro::dora::trainer::evaluate_models(&pipeline.models, &pipeline.observations);
    println!(
        "  load-time model accuracy: {:.1}%   power model accuracy: {:.1}%",
        100.0 * (1.0 - eval.load_time.mape),
        100.0 * (1.0 - eval.power.mape)
    );

    // 3. Evaluate DORA against the Android baseline on one hard and one
    //    easy workload.
    let all = WorkloadSet::paper54();
    let subset = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| w.page.name == "Amazon" || w.page.name == "IMDB")
            .cloned()
            .collect(),
    );
    let result = CampaignDriver::new()
        .evaluate(
            &subset,
            &[Policy::Interactive, Policy::Dora],
            Some(&pipeline.models),
            &pipeline.scenario,
        )
        .expect("models were supplied");

    println!("\nworkload results under DORA:");
    for r in result.results_for("DORA") {
        println!(
            "  {:<24} load {:.2}s  power {:.2}W  deadline {}  mean clock {:.2} GHz",
            r.workload_id,
            r.load_time.value(),
            r.mean_power.value(),
            if r.met_deadline { "met" } else { "missed" },
            r.mean_frequency.as_ghz(),
        );
    }
    let gain = result.mean_normalized_ppw("DORA", "interactive", Subset::All);
    println!(
        "\nDORA energy efficiency vs interactive: {:+.1}%",
        (gain - 1.0) * 100.0
    );
}
