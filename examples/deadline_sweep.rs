//! Fig. 11 as an interactive experiment: how DORA's frequency choice
//! moves as the user-satisfaction deadline is relaxed — with *no model
//! retraining* between deadlines.
//!
//! ```text
//! cargo run --release --example deadline_sweep -- MSN high
//! ```

use dora_repro::campaign::runner::run_scenario;
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::coworkloads::Intensity;
use dora_repro::dora::{DoraConfig, DoraGovernor};
use dora_repro::experiments::pipeline::{Pipeline, Scale};

fn parse_intensity(s: &str) -> Option<Intensity> {
    match s.to_ascii_lowercase().as_str() {
        "low" => Some(Intensity::Low),
        "medium" | "med" => Some(Intensity::Medium),
        "high" => Some(Intensity::High),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let page = args.first().map(String::as_str).unwrap_or("MSN");
    let intensity = args
        .get(1)
        .and_then(|s| parse_intensity(s))
        .unwrap_or(Intensity::High);

    let set = WorkloadSet::paper54();
    let Some(workload) = set.find_by_class(page, intensity) else {
        eprintln!("unknown page {page:?}");
        std::process::exit(1);
    };

    println!("training (quick grid)...");
    let pipeline = Pipeline::build(Scale::Quick, 42);

    println!(
        "\nDORA on {} across deadlines (the fmax -> fD -> fE staircase):\n",
        workload.id()
    );
    println!(
        "{:>12} {:>11} {:>9} {:>9}",
        "deadline(s)", "fopt(GHz)", "load(s)", "met"
    );
    for deadline in 1..=10u32 {
        let deadline_s = dora_repro::units::Seconds::new(f64::from(deadline));
        let mut governor = DoraGovernor::new(
            pipeline.models.clone(),
            workload.page.features,
            DoraConfig {
                qos_target: deadline_s,
                ..DoraConfig::default()
            },
        );
        let config = pipeline.scenario.to_builder().deadline(deadline_s).build();
        let r = run_scenario(workload, &mut governor, &config);
        println!(
            "{:>12} {:>11.2} {:>9.2} {:>9}",
            deadline,
            r.mean_frequency.as_ghz(),
            r.load_time.value(),
            if r.met_deadline { "yes" } else { "no" }
        );
    }
}
