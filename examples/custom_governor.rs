//! Extending the framework: write your own governor and race it against
//! the stock policies on the paper's workloads.
//!
//! The example implements a naive "race-to-idle" policy (pin `fmax` while
//! any core is busy, drop to `fmin` otherwise) — a strategy that folklore
//! sometimes recommends and that this platform's whole-device power model
//! shows to be mediocre for sustained rendering.
//!
//! ```text
//! cargo run --release --example custom_governor
//! ```

use dora_repro::campaign::runner::{run_scenario, ScenarioConfig};
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::governors::{Governor, GovernorObservation, InteractiveGovernor};
use dora_repro::sim::SimDuration;
use dora_repro::soc::{DvfsTable, Frequency};

/// Pin the top frequency whenever anything is running; idle at the
/// bottom. Implementing [`Governor`] is all it takes to enter the
/// evaluation harness.
#[derive(Debug)]
struct RaceToIdle {
    table: DvfsTable,
}

impl Governor for RaceToIdle {
    fn name(&self) -> &str {
        "race-to-idle"
    }

    fn decision_interval(&self) -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        if observation.max_utilization().value() > 0.05 {
            self.table.max_frequency()
        } else {
            self.table.min_frequency()
        }
    }
}

fn main() {
    let table = DvfsTable::msm8974();
    let config = ScenarioConfig::default();
    let set = WorkloadSet::paper54();

    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "workload", "race-to-idle", "interactive", "PPW ratio"
    );
    let mut ratios = Vec::new();
    for w in set.workloads().iter().take(12) {
        let mut custom = RaceToIdle {
            table: table.clone(),
        };
        let mine = run_scenario(w, &mut custom, &config);
        let mut baseline = InteractiveGovernor::new(table.clone());
        let theirs = run_scenario(w, &mut baseline, &config);
        let ratio = mine.ppw.value() / theirs.ppw.value();
        ratios.push(ratio);
        println!(
            "{:<26} {:>9.2}s {:>3} {:>9.2}s {:>3} {:>11.3}",
            w.id(),
            mine.load_time.value(),
            if mine.met_deadline { "ok" } else { "X" },
            theirs.load_time.value(),
            if theirs.met_deadline { "ok" } else { "X" },
            ratio,
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean PPW vs interactive: {:+.1}%", (mean - 1.0) * 100.0);
    println!(
        "During a sustained page load the cores never go idle, so \
race-to-idle degenerates into the performance governor - all the V2f \
premium, none of the idling. A deadline-aware model-based policy (DORA) \
is what actually converts slack into energy; see the quickstart example."
    );
}
