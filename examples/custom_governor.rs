//! Extending the framework: write your own governor and race it against
//! the stock policies on the paper's workloads.
//!
//! The example implements a naive "race-to-idle" policy (pin `fmax` while
//! any core is busy, drop to `fmin` otherwise) — a strategy that folklore
//! sometimes recommends and that this platform's whole-device power model
//! shows to be mediocre for sustained rendering.
//!
//! ```text
//! cargo run --release --example custom_governor
//! ```

use dora_repro::campaign::runner::{run_scenario, run_scenario_observed, ScenarioConfig};
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::governors::{Governor, GovernorObservation, InteractiveGovernor};
use dora_repro::sim::probe::{Probe, ProbeEvent};
use dora_repro::sim::{SimDuration, SimTime};
use dora_repro::soc::{DvfsTable, Frequency};
use std::cell::RefCell;
use std::rc::Rc;

/// Pin the top frequency whenever anything is running; idle at the
/// bottom. Implementing [`Governor`] is all it takes to enter the
/// evaluation harness.
#[derive(Debug)]
struct RaceToIdle {
    table: DvfsTable,
}

/// Watches the measured window through the typed probe bus: every
/// [`ProbeEvent::GovernorDecision`] and [`ProbeEvent::DvfsSwitch`] the
/// custom governor produces, cross-checked against the summary result.
#[derive(Debug, Default)]
struct DecisionTally {
    decisions: u64,
    switches: u64,
}

impl Probe for DecisionTally {
    fn on_event(&mut self, _at: SimTime, event: &ProbeEvent) {
        match event {
            ProbeEvent::GovernorDecision { .. } => self.decisions += 1,
            ProbeEvent::DvfsSwitch { .. } => self.switches += 1,
            _ => {}
        }
    }
}

impl Governor for RaceToIdle {
    fn name(&self) -> &str {
        "race-to-idle"
    }

    fn decision_interval(&self) -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        if observation.max_utilization().value() > 0.05 {
            self.table.max_frequency()
        } else {
            self.table.min_frequency()
        }
    }
}

fn main() {
    let table = DvfsTable::default();
    let config = ScenarioConfig::default();
    let set = WorkloadSet::paper54();

    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "workload", "race-to-idle", "interactive", "PPW ratio"
    );
    let mut ratios = Vec::new();
    for w in set.workloads().iter().take(12) {
        let mut custom = RaceToIdle {
            table: table.clone(),
        };
        let tally = Rc::new(RefCell::new(DecisionTally::default()));
        let mine = run_scenario_observed(w, &mut custom, &config, tally.clone());
        // The probe and the summary saw the same measured window.
        assert_eq!(tally.borrow().switches, mine.switches);
        assert!(tally.borrow().decisions > 0, "governor was consulted");
        let mut baseline = InteractiveGovernor::new(table.clone());
        let theirs = run_scenario(w, &mut baseline, &config);
        let ratio = mine.ppw.value() / theirs.ppw.value();
        ratios.push(ratio);
        println!(
            "{:<26} {:>9.2}s {:>3} {:>9.2}s {:>3} {:>11.3}",
            w.id(),
            mine.load_time.value(),
            if mine.met_deadline { "ok" } else { "X" },
            theirs.load_time.value(),
            if theirs.met_deadline { "ok" } else { "X" },
            ratio,
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean PPW vs interactive: {:+.1}%", (mean - 1.0) * 100.0);
    println!(
        "During a sustained page load the cores never go idle, so \
race-to-idle degenerates into the performance governor - all the V2f \
premium, none of the idling. A deadline-aware model-based policy (DORA) \
is what actually converts slack into energy; see the quickstart example."
    );
}
