//! The leakage feedback loop made visible: browse hard at a fixed clock,
//! watch the die heat up and the power bill follow (Fig. 10's physics).
//!
//! ```text
//! cargo run --release --example thermal_story
//! ```

// Example code: failing fast on setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::browser::catalog::Catalog;
use dora_repro::browser::engine::RenderEngine;
use dora_repro::sim::SimDuration;
use dora_repro::soc::board::{Board, BoardConfig};
use dora_repro::soc::Frequency;

fn main() {
    let catalog = Catalog::alexa18();
    let page = catalog.page("IMDB").expect("IMDB in catalog");
    let engine = RenderEngine::default();

    for (label, config) in [
        ("room ambient (25C)", BoardConfig::nexus5()),
        ("cold ambient (5C)", BoardConfig::nexus5_cold()),
    ] {
        println!("== {label} ==");
        let mut board = Board::new(config, 7);
        board
            .set_frequency(Frequency::from_mhz(1958.4))
            .expect("table frequency");
        println!(
            "{:>6} {:>9} {:>10} {:>11} {:>10}",
            "t(s)", "die(C)", "mean(W)", "leakage(W)", "loads done"
        );
        let mut loads = 0u32;
        let mut window_energy = board.energy();
        for second in 1..=40u32 {
            // Keep the browser permanently busy: as soon as a page load
            // finishes, start the next one.
            if board.task_finished(0) || board.task(0).is_none() {
                if board.task(0).is_some() {
                    board.clear_core(0).expect("core exists");
                    board.clear_core(1).expect("core exists");
                    loads += 1;
                }
                let job = engine.spawn(page, u64::from(second));
                board.assign(0, Box::new(job.main)).expect("core 0 free");
                board.assign(1, Box::new(job.aux)).expect("core 1 free");
            }
            board.step(SimDuration::from_secs(1));
            if second % 4 == 0 {
                let mean_w = (board.energy() - window_energy).value() / 4.0;
                window_energy = board.energy();
                println!(
                    "{:>6} {:>9.1} {:>10.2} {:>11.2} {:>10}",
                    second,
                    board.temperature().value(),
                    mean_w,
                    board.last_power().leakage.value(),
                    loads
                );
            }
        }
        let e = board.energy_breakdown();
        println!(
            "peak die temperature: {:.1}C; energy: {:.0}J \
             (platform {:.0}J, cores {:.0}J, leakage {:.0}J, dram {:.0}J)\n",
            board.peak_temperature().value(),
            board.energy().value(),
            e.platform.value(),
            (e.core_dynamic + e.uncore).value(),
            e.leakage.value(),
            e.dram.value(),
        );
    }
    println!(
        "same clock, same work — the warm device pays a growing leakage tax.\n\
         This is why DORA feeds die temperature into its power model (Eq. 5)."
    );
}
