//! The leakage feedback loop made visible: browse hard at a fixed clock,
//! watch the die heat up and the power bill follow (Fig. 10's physics).
//!
//! The story is narrated by a typed [`Probe`]: instead of polling board
//! accessors, a `StoryProbe` rides the observation bus and keeps the
//! latest thermal/power samples plus a count of finished page loads.
//!
//! ```text
//! cargo run --release --example thermal_story
//! ```

// Example code: failing fast on setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::browser::catalog::Catalog;
use dora_repro::browser::engine::RenderEngine;
use dora_repro::sim::probe::{Probe, ProbeEvent};
use dora_repro::sim::{SimDuration, SimTime};
use dora_repro::soc::board::{Board, BoardConfig};
use dora_repro::soc::Frequency;
use std::cell::RefCell;
use std::rc::Rc;

/// Collects the story's running numbers from the probe bus: the die
/// temperature and leakage tracked per quantum, plus every finish of the
/// browser's main task on core 0.
#[derive(Debug, Default)]
struct StoryProbe {
    loads_finished: u32,
    die_c: f64,
    peak_die_c: f64,
    leakage_w: f64,
}

impl Probe for StoryProbe {
    fn on_event(&mut self, _at: SimTime, event: &ProbeEvent) {
        match event {
            ProbeEvent::TaskFinished { core: 0, .. } => self.loads_finished += 1,
            ProbeEvent::ThermalSample { temperature } => {
                self.die_c = temperature.value();
                self.peak_die_c = self.peak_die_c.max(self.die_c);
            }
            ProbeEvent::PowerSample { leakage, .. } => self.leakage_w = leakage.value(),
            _ => {}
        }
    }
}

fn main() {
    let catalog = Catalog::alexa18();
    let page = catalog.page("IMDB").expect("IMDB in catalog");
    let engine = RenderEngine::default();

    for (label, config) in [
        (
            "room ambient (25C)",
            dora_soc::SocProfile::msm8974().board_config(),
        ),
        (
            "cold ambient (5C)",
            BoardConfig {
                thermal: dora_soc::thermal::ThermalParams::nexus5_cold(),
                ..dora_soc::SocProfile::msm8974().board_config()
            },
        ),
    ] {
        println!("== {label} ==");
        let mut board = Board::new(config, 7);
        let story = Rc::new(RefCell::new(StoryProbe::default()));
        board.attach_probe(story.clone());
        board
            .set_frequency(Frequency::from_mhz(1958.4))
            .expect("table frequency");
        println!(
            "{:>6} {:>9} {:>10} {:>11} {:>10}",
            "t(s)", "die(C)", "mean(W)", "leakage(W)", "loads done"
        );
        let mut loads = 0u32;
        let mut window_energy = board.energy();
        for second in 1..=40u32 {
            // Keep the browser permanently busy: as soon as the probe has
            // seen the main task finish, start the next load.
            let finished = story.borrow().loads_finished;
            if finished > loads || board.task(0).is_none() {
                if board.task(0).is_some() {
                    board.clear_core(0).expect("core exists");
                    board.clear_core(1).expect("core exists");
                    loads = finished;
                }
                let job = engine.spawn(page, u64::from(second));
                board.assign(0, Box::new(job.main)).expect("core 0 free");
                board.assign(1, Box::new(job.aux)).expect("core 1 free");
            }
            board.step(SimDuration::from_secs(1));
            if second % 4 == 0 {
                let mean_w = (board.energy() - window_energy).value() / 4.0;
                window_energy = board.energy();
                let s = story.borrow();
                println!(
                    "{:>6} {:>9.1} {:>10.2} {:>11.2} {:>10}",
                    second, s.die_c, mean_w, s.leakage_w, loads
                );
            }
        }
        let e = board.energy_breakdown();
        println!(
            "peak die temperature: {:.1}C; energy: {:.0}J \
             (platform {:.0}J, cores {:.0}J, leakage {:.0}J, dram {:.0}J)\n",
            story.borrow().peak_die_c,
            board.energy().value(),
            e.platform.value(),
            (e.core_dynamic + e.uncore).value(),
            e.leakage.value(),
            e.dram.value(),
        );
    }
    println!(
        "same clock, same work — the warm device pays a growing leakage tax.\n\
         This is why DORA feeds die temperature into its power model (Eq. 5)."
    );
}
