//! # dora-repro
//!
//! Umbrella crate for the DORA (ISPASS 2018) reproduction. It re-exports
//! every layer of the workspace under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic simulation kernel (time, PRNG, statistics).
//! * [`soc`] — the smartphone SoC substrate: cores, shared L2, DRAM,
//!   DVFS, thermal RC model and whole-device power.
//! * [`browser`] — web-page complexity model and rendering-engine workload.
//! * [`coworkloads`] — Rodinia-like interference kernels.
//! * [`modeling`] — regression substrate (response surfaces, leakage fit).
//! * [`governors`] — governor framework and baselines.
//! * [`dora`] — the paper's contribution: trained models + Algorithm 1.
//! * [`campaign`] — workload construction and evaluation campaigns.
//! * [`experiments`] — regenerators for every table and figure.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end train-then-evaluate run.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use dora;
pub use dora_browser as browser;
pub use dora_campaign as campaign;
pub use dora_coworkloads as coworkloads;
pub use dora_experiments as experiments;
pub use dora_governors as governors;
pub use dora_modeling as modeling;
pub use dora_sim_core as sim;
pub use dora_sim_core::units;
pub use dora_soc as soc;
