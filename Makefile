# Developer entry points. `make verify` is the full pre-merge gate:
# formatting, lints as errors, the repository's own static-analysis
# gate (xtask), then the tier-1 build + test pass
# (ROADMAP.md: `cargo build --release && cargo test -q`).

.PHONY: verify fmt lint xtask-lint sarif bless-api lint-fix build test bench

verify: fmt lint xtask-lint build test

fmt:
	cargo fmt --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# The nine-pass diagnostics framework (DESIGN.md §8), configured by
# xtask/xtask.toml: panic ratchet, unit-suffix and partial_cmp bans,
# lint headers, DVFS guard, crate layering, export determinism,
# paper-constant provenance, API-surface snapshots.
xtask-lint:
	cargo run -q -p xtask -- lint

# Machine-readable reports (also uploaded as a CI artifact).
sarif:
	cargo run -q -p xtask -- lint --format sarif > xtask-lint.sarif

# Regenerate xtask/api/<crate>.txt after an intentional API change.
bless-api:
	cargo run -q -p xtask -- bless-api

lint-fix:
	cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged
	cargo fmt

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p dora-bench --bench parallel
