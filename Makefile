# Developer entry points. `make verify` is the full pre-merge gate:
# formatting, lints as errors, then the tier-1 build + test pass
# (ROADMAP.md: `cargo build --release && cargo test -q`).

.PHONY: verify fmt lint build test bench

verify: fmt lint build test

fmt:
	cargo fmt --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p dora-bench --bench parallel
