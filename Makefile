# Developer entry points. `make verify` is the full pre-merge gate:
# formatting, lints as errors, the repository's own static-analysis
# gate (xtask), then the tier-1 build + test pass
# (ROADMAP.md: `cargo build --release && cargo test -q`).

.PHONY: verify fmt lint xtask-lint lint-fix build test bench

verify: fmt lint xtask-lint build test

fmt:
	cargo fmt --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# Panic-site ratchet, unit-suffix field ban, lint headers, DVFS guard.
xtask-lint:
	cargo run -q -p xtask -- lint

lint-fix:
	cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged
	cargo fmt

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p dora-bench --bench parallel
