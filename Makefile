# Developer entry points. `make verify` is the full pre-merge gate:
# formatting, lints as errors, the repository's own static-analysis
# gate (xtask), then the tier-1 build + test pass
# (ROADMAP.md: `cargo build --release && cargo test -q`).

.PHONY: verify fmt lint xtask-lint lint-changed lint-cache-clear sarif \
        bless-api lint-fix build test bench check-interleave miri

verify: fmt lint xtask-lint build test

fmt:
	cargo fmt --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

# The nineteen-pass diagnostics framework (DESIGN.md §8, §12–§14),
# configured by xtask/xtask.toml: panic reachability, unit-suffix /
# units-escape and partial_cmp bans, dimensional flow, lint headers,
# DVFS guard, crate layering, export determinism (per-file and
# call-graph taint), state coverage, merge associativity, snapshot
# pairing, probe balance, stale-config validation, sync hygiene, probe
# purity, paper-constant provenance, API-surface snapshots.
# `cargo run -p xtask -- lint --explain <lint-id>` prints any pass's
# long-form rationale. `--timing --budget-ms` is the runtime-regression
# gate CI applies to the suite itself (total wall-clock AND a per-pass
# share ceiling).
xtask-lint:
	cargo run -q -p xtask -- lint --timing --budget-ms 10000

# Fast inner loop: re-lint only files whose cache entry is stale
# (tree-scoped passes are skipped and reported on stderr).
lint-changed:
	cargo run -q -p xtask -- lint --changed

# Drop the incremental lint cache; the next run is fully cold.
lint-cache-clear:
	rm -rf target/xtask-cache

# Machine-readable reports (also uploaded as a CI artifact).
sarif:
	cargo run -q -p xtask -- lint --format sarif > xtask-lint.sarif

# Regenerate xtask/api/<crate>.txt after an intentional API change.
bless-api:
	cargo run -q -p xtask -- bless-api

lint-fix:
	cargo clippy --workspace --all-targets --fix --allow-dirty --allow-staged
	cargo fmt

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p dora-bench --bench parallel
	cargo bench -p dora-bench --bench forksweep

# Model-check the campaign executor under every bounded interleaving
# (DESIGN.md §9): the interleave crate's own suite, then the executor
# suite with the sync facade swapped to the model primitives.
check-interleave:
	cargo test -p interleave
	RUSTFLAGS="--cfg interleave" cargo test -p dora-campaign

# Undefined-behavior sweep of the concurrency layer (nightly-only).
miri:
	cargo +nightly miri test -p interleave --lib
	cargo +nightly miri test -p dora-campaign --lib executor
