//! The fleet layer's determinism guarantee, end to end: a 1000-session
//! fleet must produce a byte-identical report — histogram bins, float
//! energy/battery sums, digest — at `--jobs 1`, `--jobs 4` and auto
//! width, and the digest is pinned against a golden constant so any
//! behavioural drift in the simulator, sampler or merge order fails
//! loudly rather than silently reshaping published numbers.
//!
//! `.github/workflows/ci.yml` pins the same machinery from the outside:
//! it runs `dora fleet --sessions 1000 --quick` (which adds the
//! powersave column, so the value differs from [`GOLDEN_DIGEST`]) and
//! compares against `tests/golden/fleet_digest.txt`. An intentional
//! simulator, sampler or merge-order change must re-pin both values in
//! the same commit, with the reason in the commit message.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::campaign::driver::CampaignDriver;
use dora_repro::campaign::executor::{Executor, Parallelism};
use dora_repro::campaign::fleet::{FleetConfig, FleetReport};
use dora_repro::campaign::policy::Policy;
use dora_repro::sim::SimDuration;

/// The reference fleet: 1000 sessions over the default five-archetype
/// population, interactive vs performance, short warm-up. Matches
/// `dora fleet --sessions 1000 --quick` minus the powersave column.
fn reference_config() -> FleetConfig {
    FleetConfig {
        sessions: 1000,
        policies: vec![Policy::Interactive, Policy::Performance],
        warmup: SimDuration::from_secs(2),
        ..FleetConfig::default()
    }
}

fn run_at(parallelism: Parallelism) -> FleetReport {
    CampaignDriver::new()
        .executor(Executor::new(parallelism))
        .fleet(&reference_config(), None)
        .expect("baseline policies need no models")
}

#[test]
fn thousand_session_fleet_is_byte_identical_across_widths() {
    let sequential = run_at(Parallelism::Fixed(1));
    let fixed4 = run_at(Parallelism::Fixed(4));
    let auto = run_at(Parallelism::Auto);

    // Full structural equality: every bin count, every counter, every
    // float partial sum. Digest equality alone could mask a hash
    // collision; this cannot.
    assert_eq!(sequential, fixed4);
    assert_eq!(sequential, auto);

    assert_eq!(sequential.sessions, 1000);
    assert_eq!(sequential.shards, 4, "ceil(1000 / 256) shards");

    // The pinned golden digest. If this fails after an intentional
    // simulator or sampler change, re-pin it together with
    // tests/golden/fleet_digest.txt.
    let digest = format!("{:016x}", sequential.digest());
    assert_eq!(digest, GOLDEN_DIGEST, "fleet digest drifted");
}

/// See module docs: pinned output of the reference fleet.
const GOLDEN_DIGEST: &str = "3ca261ad16f1a327";
