//! Cross-crate integration tests: the full train-then-govern pipeline and
//! the paper's end-to-end behavioural guarantees, at a size that stays
//! tolerable in debug builds. The full-scale equivalents live as
//! `#[ignore]`d tests in `dora-experiments` and run in release.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::campaign::driver::CampaignDriver;
use dora_repro::campaign::evaluate::{Policy, Subset};
use dora_repro::campaign::runner::ScenarioConfig;
use dora_repro::campaign::training::TrainingCampaignConfig;
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::dora::trainer::{evaluate_models, train, TrainerConfig};
use dora_repro::sim::SimDuration;
use dora_repro::soc::Frequency;

/// A small but representative pipeline: 4 pages (spanning both Table III
/// classes and both train/held-out splits) × 3 classes × 5 frequencies.
fn small_pipeline() -> (dora_repro::dora::DoraModels, WorkloadSet, ScenarioConfig) {
    let scenario = ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(5))
        .build();
    let all = WorkloadSet::paper54();
    let train_pages = ["Amazon", "Reddit", "MSN", "ESPN", "IMDB", "CNN"];
    let train_set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| train_pages.contains(&w.page.name))
            .cloned()
            .collect(),
    );
    let frequencies: Vec<Frequency> = scenario.board.dvfs.frequencies().step_by(2).collect();
    let driver = CampaignDriver::new();
    let observations = driver.training_campaign(
        &train_set,
        &TrainingCampaignConfig {
            scenario: scenario.clone(),
            frequencies: Some(frequencies),
        },
    );
    let leakage = driver.leakage_calibration(
        &scenario.board,
        &[15.0, 35.0].map(dora_repro::units::Celsius::new),
    );
    let models = train(
        &observations,
        &leakage,
        &scenario.board.dvfs,
        TrainerConfig::default(),
    )
    .expect("grid is identifiable");
    // Sanity: the models explain their own training data tightly.
    let eval = evaluate_models(&models, &observations);
    assert!(
        eval.load_time.mape < 0.08,
        "train-set time MAPE {:.3}",
        eval.load_time.mape
    );
    assert!(
        eval.power.mape < 0.08,
        "train-set power MAPE {:.3}",
        eval.power.mape
    );
    (models, all, scenario)
}

#[test]
fn dora_beats_interactive_without_sacrificing_deadlines() {
    let (models, all, scenario) = small_pipeline();
    // Evaluate on pages the models never saw (Alibaba is a held-out page)
    // plus one training page.
    let eval_set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| ["Amazon", "Alibaba", "MSN"].contains(&w.page.name))
            .cloned()
            .collect(),
    );
    let result = CampaignDriver::new()
        .evaluate(
            &eval_set,
            &[Policy::Interactive, Policy::Performance, Policy::Dora],
            Some(&models),
            &scenario,
        )
        .expect("models supplied");

    // Energy efficiency: DORA ahead of the baseline on average.
    let gain = result.mean_normalized_ppw("DORA", "interactive", Subset::All);
    assert!(gain > 1.05, "DORA gain {gain:.3}");

    // QoS: DORA meets the deadline whenever the performance governor
    // does (the paper's 82%-feasibility argument).
    let perf_met: Vec<&str> = result
        .results_for("performance")
        .iter()
        .filter(|r| r.met_deadline)
        .map(|r| r.workload_id.as_str())
        .collect();
    for r in result.results_for("DORA") {
        if perf_met.contains(&r.workload_id.as_str()) {
            assert!(
                r.met_deadline,
                "{} feasible under performance but DORA missed ({:.2}s)",
                r.workload_id,
                r.load_time.value()
            );
        }
    }
}

#[test]
fn dora_tracks_oracle_fopt_for_an_easy_page() {
    let (models, all, scenario) = small_pipeline();
    let w = all
        .find_by_class("Amazon", dora_repro::coworkloads::Intensity::Low)
        .expect("exists");
    let result = CampaignDriver::new()
        .evaluate(
            &WorkloadSet::from_workloads(vec![w.clone()]),
            &[Policy::Interactive, Policy::OfflineOpt, Policy::Dora],
            Some(&models),
            &scenario,
        )
        .expect("models supplied");
    let dora = result.results_for("DORA")[0];
    let offline = result.results_for("offline_opt")[0];
    // DORA lands within 12% of the exhaustively enumerated optimum.
    assert!(
        dora.ppw.value() > offline.ppw.value() * 0.88,
        "DORA {:.4} vs offline {:.4}",
        dora.ppw,
        offline.ppw
    );
}

#[test]
fn deadline_governor_is_energy_suboptimal_and_ee_violates() {
    // The Section V-C contrast that motivates DORA: DL wastes energy,
    // EE wastes deadlines.
    let (models, all, scenario) = small_pipeline();
    let eval_set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| ["Amazon", "MSN", "IMDB"].contains(&w.page.name))
            .cloned()
            .collect(),
    );
    let result = CampaignDriver::new()
        .evaluate(
            &eval_set,
            &[
                Policy::Interactive,
                Policy::Dora,
                Policy::DeadlineOnly,
                Policy::EnergyOnly,
            ],
            Some(&models),
            &scenario,
        )
        .expect("models supplied");
    let dora = result.mean_normalized_ppw("DORA", "interactive", Subset::All);
    let dl = result.mean_normalized_ppw("DL", "interactive", Subset::All);
    let ee = result.mean_normalized_ppw("EE", "interactive", Subset::All);
    assert!(dora >= dl - 0.02, "DORA {dora:.3} vs DL {dl:.3}");
    assert!(ee >= dora - 0.02, "EE {ee:.3} vs DORA {dora:.3}");
    assert!(
        result.deadline_met_fraction("EE") <= result.deadline_met_fraction("DORA"),
        "EE should not meet more deadlines than DORA"
    );
}

#[test]
fn models_transfer_across_deadlines_without_retraining() {
    // Section V-G: the same trained models serve any QoS target.
    let (models, all, scenario) = small_pipeline();
    let w = all
        .find_by_class("MSN", dora_repro::coworkloads::Intensity::High)
        .expect("exists");
    let mut chosen = Vec::new();
    for deadline_s in [1.0, 3.0, 8.0] {
        let deadline = dora_repro::units::Seconds::new(deadline_s);
        let mut governor = dora_repro::dora::DoraGovernor::new(
            models.clone(),
            w.page.features,
            dora_repro::dora::DoraConfig {
                qos_target: deadline,
                ..dora_repro::dora::DoraConfig::default()
            },
        );
        let config = scenario.to_builder().deadline(deadline).build();
        let r = dora_repro::campaign::runner::run_scenario(w, &mut governor, &config);
        chosen.push(r.mean_frequency.as_ghz());
    }
    assert!(
        chosen[0] > chosen[2],
        "tight deadlines must clock higher: {chosen:?}"
    );
}
