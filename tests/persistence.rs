//! Deployment-path integration test: train offline, serialize the model
//! bundle, "ship" it across a process boundary (a file), load it back,
//! and govern with the loaded copy — verifying the governor's behaviour
//! is identical.

use dora_repro::campaign::driver::CampaignDriver;
use dora_repro::campaign::runner::{run_scenario, ScenarioConfig};
use dora_repro::campaign::training::TrainingCampaignConfig;
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::dora::trainer::{train, TrainerConfig};
use dora_repro::dora::{from_text, to_text, DoraConfig, DoraGovernor};
use dora_repro::sim::SimDuration;
use dora_repro::soc::Frequency;

#[test]
fn shipped_models_govern_identically() {
    // A compact training pass.
    let scenario = ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(4))
        .build();
    let all = WorkloadSet::paper54();
    let train_set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| ["Amazon", "MSN", "CNN", "ESPN"].contains(&w.page.name))
            .cloned()
            .collect(),
    );
    let frequencies: Vec<Frequency> = scenario.board.dvfs.frequencies().step_by(3).collect();
    let driver = CampaignDriver::new();
    let observations = driver.training_campaign(
        &train_set,
        &TrainingCampaignConfig {
            scenario: scenario.clone(),
            frequencies: Some(frequencies),
        },
    );
    let leakage = driver.leakage_calibration(
        &scenario.board,
        &[15.0, 40.0].map(dora_repro::units::Celsius::new),
    );
    let models = train(
        &observations,
        &leakage,
        &scenario.board.dvfs,
        TrainerConfig::default(),
    )
    .expect("grid is identifiable");

    // Ship through a real file.
    let path = std::env::temp_dir().join("dora_models_integration_test.txt");
    std::fs::write(&path, to_text(&models)).expect("writable temp dir");
    let shipped =
        from_text(&std::fs::read_to_string(&path).expect("readable")).expect("round trip parses");
    std::fs::remove_file(&path).ok();
    assert_eq!(models, shipped);

    // Both bundles drive the exact same run.
    let workload = all
        .find_by_class("MSN", dora_repro::coworkloads::Intensity::Medium)
        .expect("exists");
    let run = |models: dora_repro::dora::DoraModels| {
        let mut governor = DoraGovernor::new(models, workload.page.features, DoraConfig::default());
        run_scenario(workload, &mut governor, &scenario)
    };
    let original = run(models);
    let from_disk = run(shipped);
    assert_eq!(original, from_disk);
    assert!(original.met_deadline, "{original:?}");
}
