//! Property-based tests of the browsing-session runner and the streaming
//! statistics it reports through.

use dora_repro::browser::Catalog;
use dora_repro::campaign::session::{run_session, SessionConfig};
use dora_repro::governors::{InteractiveGovernor, PerformanceGovernor};
use dora_repro::sim::stats::Running;
use dora_repro::sim::{Rng, SimDuration};
use dora_repro::soc::DvfsTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Session accounting is internally consistent for any itinerary and
    /// think time, and fully deterministic per seed.
    #[test]
    fn session_accounting_consistent(
        seed in 0u64..100,
        think_s in 1u64..6,
        page_picks in prop::collection::vec(0usize..18, 1..4),
    ) {
        let catalog = Catalog::alexa18();
        let pages: Vec<_> = page_picks
            .iter()
            .map(|&i| &catalog.pages()[i])
            .collect();
        let config = SessionConfig {
            seed,
            think_time: SimDuration::from_secs(think_s),
            ..SessionConfig::default()
        };
        let run = |config: &SessionConfig| {
            let mut g = InteractiveGovernor::new(DvfsTable::default());
            run_session(&pages, None, &mut g, config)
        };
        let r = run(&config);
        prop_assert_eq!(r.loads.len(), pages.len());
        // Duration covers every load plus every think period.
        let load_total: f64 = r.loads.iter().map(|l| l.load_time.value()).sum();
        let think_total = think_s as f64 * pages.len() as f64;
        prop_assert!(r.duration.value() >= load_total + think_total - 0.01);
        // Loads cannot be instantaneous or absurd.
        for l in &r.loads {
            prop_assert!(l.load_time.value() > 0.05, "{l:?}");
            prop_assert!(l.load_time.value() <= 60.0, "{l:?}");
        }
        // Energy and power are physical.
        prop_assert!(r.energy.value() > 0.0);
        let p = r.mean_power().value();
        prop_assert!((1.0..7.0).contains(&p), "mean power {p}");
        // Bit-exact determinism.
        let again = run(&config);
        prop_assert_eq!(r, again);
    }

    /// More pages never costs less total energy (monotone workload).
    #[test]
    fn longer_sessions_cost_more(seed in 0u64..50) {
        let catalog = Catalog::alexa18();
        let config = SessionConfig {
            seed,
            think_time: SimDuration::from_secs(2),
            ..SessionConfig::default()
        };
        let short: Vec<_> = catalog.pages().iter().take(1).collect();
        let long: Vec<_> = catalog.pages().iter().take(3).collect();
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let a = run_session(&short, None, &mut g, &config);
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let b = run_session(&long, None, &mut g, &config);
        prop_assert!(b.energy > a.energy);
        prop_assert!(b.duration > a.duration);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford moments agree with the naive two-pass computation.
    #[test]
    fn running_matches_naive(values in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let mut r = Running::new();
        for &v in &values {
            r.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((r.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Merging accumulators in any split position matches the whole.
    #[test]
    fn running_merge_any_split(
        values in prop::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((values.len() as f64 * split_frac) as usize).min(values.len() - 1);
        let mut whole = Running::new();
        let mut left = Running::new();
        let mut right = Running::new();
        for (i, &v) in values.iter().enumerate() {
            whole.push(v);
            if i < split {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    /// The simulator PRNG's range functions respect their bounds for any
    /// seed and any (ordered) bounds.
    #[test]
    fn rng_ranges_respect_bounds(
        seed in 0u64..10_000,
        lo in -1e6f64..1e6,
        width in 1e-3f64..1e6,
        n_lo in 0u64..1_000_000,
        n_width in 1u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = rng.range_f64(lo, lo + width);
            prop_assert!(x >= lo && x < lo + width);
            let k = rng.range_u64(n_lo, n_lo + n_width);
            prop_assert!(k >= n_lo && k <= n_lo + n_width);
        }
    }
}
