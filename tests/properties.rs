//! Property-based tests on the workspace's core invariants.
//!
//! These exercise the substrate with randomized inputs far outside the
//! curated paper workloads: conservation laws in the task machinery,
//! boundedness of the cache and memory contention models, regression
//! round-trips, and bit-exact determinism of whole-board simulations.

use dora_repro::browser::PageFeatures;
use dora_repro::modeling::surface::{ResponseSurface, SurfaceKind};
use dora_repro::sim::stats::Samples;
use dora_repro::sim::{Rng, SimDuration};
use dora_repro::soc::board::Board;
use dora_repro::soc::cache::{CacheDemand, SharedCache};
use dora_repro::soc::dvfs::BusTier;
use dora_repro::soc::memory::MemorySystem;
use dora_repro::soc::task::{CyclicTask, PhaseProfile, PhasedTask, Task};
use dora_repro::units::Seconds;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = PhaseProfile> {
    (
        0.5f64..3.0,
        0.0f64..60.0,
        0.0f64..16e6,
        0.0f64..1.0,
        0.05f64..1.0,
    )
        .prop_map(|(cpi, apki, ws, reuse, duty)| PhaseProfile {
            base_cpi: cpi,
            l2_apki: apki,
            working_set_bytes: ws,
            reuse_fraction: reuse,
            duty_cycle: duty,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A PhasedTask retires exactly its budget, no matter how the work is
    /// delivered.
    #[test]
    fn phased_task_conserves_instructions(
        budgets in prop::collection::vec(1.0f64..1e7, 1..6),
        chunks in prop::collection::vec(1.0f64..5e6, 1..200),
    ) {
        let phases: Vec<(f64, PhaseProfile)> = budgets
            .iter()
            .map(|&b| (b, PhaseProfile::compute_bound()))
            .collect();
        let total: f64 = budgets.iter().sum();
        let mut task = PhasedTask::new("p", phases);
        for c in chunks {
            task.retire(c);
        }
        prop_assert!(task.retired() <= total + 1e-6);
        let invariant = task.retired() + task.remaining_instructions();
        prop_assert!((invariant - total).abs() < 1e-3);
    }

    /// A CyclicTask never finishes and its cycle counter matches the work
    /// delivered.
    #[test]
    fn cyclic_task_cycles_match_work(
        budget in 10.0f64..1e5,
        reps in 1u32..50,
    ) {
        let mut task = CyclicTask::new(
            "c",
            vec![(budget, PhaseProfile::compute_bound())],
        );
        task.retire(budget * f64::from(reps));
        prop_assert!(!task.is_finished());
        prop_assert_eq!(task.completed_cycles(), u64::from(reps));
    }

    /// The shared-cache apportionment never over-allocates and always
    /// produces miss ratios in [0, 1].
    #[test]
    fn cache_apportionment_is_bounded(
        capacity_mib in 0.5f64..8.0,
        demands in prop::collection::vec(
            (0.0f64..2e8, 0.0f64..2e7, 0.0f64..1.0),
            1..6
        ),
    ) {
        let cache = SharedCache::new(capacity_mib * 1024.0 * 1024.0);
        let demands: Vec<CacheDemand> = demands
            .into_iter()
            .map(|(rate, ws, reuse)| CacheDemand {
                access_rate: rate,
                working_set: ws,
                reuse_fraction: reuse,
            })
            .collect();
        let shares = cache.apportion(&demands);
        let total: f64 = shares.iter().map(|s| s.allocated_bytes).sum();
        prop_assert!(total <= cache.capacity_bytes() * (1.0 + 1e-9));
        for (share, demand) in shares.iter().zip(&demands) {
            prop_assert!((0.0..=1.0).contains(&share.miss_ratio));
            prop_assert!(share.allocated_bytes >= -1e-9);
            prop_assert!(share.allocated_bytes <= demand.working_set + 1e-6);
        }
    }

    /// DRAM latency is monotone in demand and bounded for every tier.
    #[test]
    fn memory_latency_monotone_and_bounded(
        demands in prop::collection::vec(0.0f64..2e10, 2..20),
    ) {
        let mem = MemorySystem::lpddr3();
        let mut sorted = demands.clone();
        sorted.sort_by(f64::total_cmp);
        for tier in BusTier::ALL {
            let mut last = Seconds::ZERO;
            for &d in &sorted {
                let lat = mem.miss_latency(tier, d);
                prop_assert!(lat >= last);
                prop_assert!(lat.value().is_finite());
                prop_assert!(lat >= mem.params(tier).base_latency);
                last = lat;
            }
        }
    }

    /// Linear response surfaces recover randomly drawn linear models
    /// essentially exactly.
    #[test]
    fn linear_surface_roundtrip(
        seed in 0u64..1000,
        intercept in -10.0f64..10.0,
        w0 in -5.0f64..5.0,
        w1 in -5.0f64..5.0,
        w2 in -5.0f64..5.0,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![rng.range_f64(-3.0, 3.0), rng.range_f64(0.0, 10.0), rng.range_f64(-1.0, 1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| intercept + w0 * x[0] + w1 * x[1] + w2 * x[2])
            .collect();
        let fit = ResponseSurface::new(SurfaceKind::Linear, 3)
            .fit(&xs, &ys)
            .expect("well posed");
        let mut probe = Rng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..10 {
            let x = vec![
                probe.range_f64(-3.0, 3.0),
                probe.range_f64(0.0, 10.0),
                probe.range_f64(-1.0, 1.0),
            ];
            let truth = intercept + w0 * x[0] + w1 * x[1] + w2 * x[2];
            prop_assert!((fit.predict(&x) - truth).abs() < 1e-6 * (1.0 + truth.abs()));
        }
    }

    /// Quantiles of a sample set are monotone in the quantile parameter
    /// and bracketed by min/max.
    #[test]
    fn samples_quantiles_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let samples: Samples = values.iter().copied().collect();
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(f64::total_cmp);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for q in sorted_q {
            let v = samples.quantile(q);
            prop_assert!(v >= last);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            last = v;
        }
    }

    /// Whole-board simulation is bit-exact deterministic in (seed, work).
    #[test]
    fn board_simulation_is_deterministic(
        seed in 0u64..500,
        profile in arb_profile(),
        millis in 20u64..200,
    ) {
        let run = || {
            let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), seed);
            let task = dora_repro::soc::task::LoopTask::new("t", profile);
            board.assign(0, Box::new(task)).expect("fresh board");
            board
                .set_frequency(dora_repro::soc::Frequency::from_mhz(1497.6))
                .expect("table frequency");
            board.step(SimDuration::from_millis(millis));
            (
                board.energy().value().to_bits(),
                board.counters(0).instructions.to_bits(),
                board.temperature().value().to_bits(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Synthesized pages are always structurally valid and their feature
    /// vector matches the accessors.
    #[test]
    fn synthesized_pages_valid(seed in 0u64..2000, complexity in 0.0f64..=1.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let page = PageFeatures::synthesize(&mut rng, complexity);
        let v = page.as_vector();
        prop_assert_eq!(v[0] as u32, page.dom_nodes());
        prop_assert!(page.a_tags() + page.div_tags() <= page.dom_nodes());
        // Re-constructing through the validating constructor succeeds.
        let rebuilt = PageFeatures::new(
            page.dom_nodes(),
            page.class_attrs(),
            page.href_attrs(),
            page.a_tags(),
            page.div_tags(),
        );
        prop_assert!(rebuilt.is_ok());
    }
}
