//! Property-based tests of the mergeable-sketch layer the fleet report
//! is built on: merge associativity, grouping/order invariance of the
//! discrete state, the empty-histogram identity, and digest stability.
//!
//! One subtlety is load-bearing for the fleet determinism contract:
//! the *discrete* state (bin counts, totals) is exactly associative
//! under any grouping, while the float `sum` is a left fold — so a
//! **fixed** shard layout merged in a **fixed** order is byte-stable,
//! but regrouping shards may move the sum by an ULP. The properties
//! below pin down both halves of that contract.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::sim::sketch::{Digest64, FixedHistogram};
use proptest::prelude::*;

const BINS: usize = 24;
const LO: f64 = 0.0;
const HI: f64 = 12.0;

fn histogram(values: &[f64]) -> FixedHistogram {
    let mut h = FixedHistogram::new(BINS, LO, HI).unwrap();
    for &v in values {
        h.record(v);
    }
    h
}

fn digest_of(h: &FixedHistogram) -> u64 {
    let mut d = Digest64::new();
    h.digest_into(&mut d);
    d.finish()
}

/// Sampled values straddle the histogram range so underflow and
/// overflow counters participate in every property.
fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0f64..18.0, 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Discrete state is exactly associative: `(a ⊕ b) ⊕ c` and
    /// `a ⊕ (b ⊕ c)` agree on every counter, and the float sums agree
    /// to within reassociation ULPs.
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (histogram(&a), histogram(&b), histogram(&c));

        let mut left = ha.clone();
        left.merge(&hb).unwrap();
        left.merge(&hc).unwrap();

        let mut bc = hb.clone();
        bc.merge(&hc).unwrap();
        let mut right = ha.clone();
        right.merge(&bc).unwrap();

        prop_assert_eq!(left.bin_counts(), right.bin_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.underflow(), right.underflow());
        prop_assert_eq!(left.overflow(), right.overflow());
        let tolerance = 1e-12 * left.sum().abs().max(1.0);
        prop_assert!((left.sum() - right.sum()).abs() <= tolerance);
    }

    /// A fixed partition merged in a fixed order is bitwise
    /// reproducible: recomputing the same sharded fold yields the same
    /// digest, float sum included. This — not grouping invariance — is
    /// the contract `--jobs 1/N` byte-identity rests on: the shard
    /// layout never changes with executor width, only shard ownership.
    #[test]
    fn fixed_partition_fold_is_bitwise_reproducible(xs in values(), cut in 0usize..64) {
        let cut = cut.min(xs.len());
        let fold = || {
            let mut h = histogram(&xs[..cut]);
            h.merge(&histogram(&xs[cut..])).unwrap();
            h
        };
        let (a, b) = (fold(), fold());
        prop_assert_eq!(a.sum().to_bits(), b.sum().to_bits());
        prop_assert_eq!(digest_of(&a), digest_of(&b));
        // And the discrete state of any partition matches the whole.
        let whole = histogram(&xs);
        prop_assert_eq!(a.bin_counts(), whole.bin_counts());
        prop_assert_eq!(a.count(), whole.count());
    }

    /// Merging singleton shards in sequence order IS the unsharded left
    /// fold, bit for bit — each one-sample histogram carries an exact
    /// sum, so the merge chain reassociates nothing.
    #[test]
    fn singleton_shard_fold_matches_whole_bitwise(xs in values()) {
        let whole = histogram(&xs);
        let mut folded = FixedHistogram::new(BINS, LO, HI).unwrap();
        for &x in &xs {
            folded.merge(&histogram(&[x])).unwrap();
        }
        prop_assert_eq!(folded.sum().to_bits(), whole.sum().to_bits());
        prop_assert_eq!(digest_of(&folded), digest_of(&whole));
    }

    /// The empty histogram is a two-sided identity, bitwise.
    #[test]
    fn empty_is_identity(xs in values()) {
        let h = histogram(&xs);
        let empty = FixedHistogram::new(BINS, LO, HI).unwrap();

        let mut left = empty.clone();
        left.merge(&h).unwrap();
        let mut right = h.clone();
        right.merge(&empty).unwrap();

        prop_assert_eq!(digest_of(&left), digest_of(&h));
        prop_assert_eq!(digest_of(&right), digest_of(&h));
        prop_assert_eq!(left.sum().to_bits(), h.sum().to_bits());
        prop_assert_eq!(right.sum().to_bits(), h.sum().to_bits());
    }

    /// Merging shards in a *different* order still agrees on all
    /// discrete state (commutativity of the counters).
    #[test]
    fn counters_commute(a in values(), b in values()) {
        let (ha, hb) = (histogram(&a), histogram(&b));
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(ab.bin_counts(), ba.bin_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.underflow(), ba.underflow());
        prop_assert_eq!(ab.overflow(), ba.overflow());
    }

    /// Shape mismatches are merge errors, never silent corruption.
    #[test]
    fn shape_mismatch_is_rejected(xs in values()) {
        let h = histogram(&xs);
        let before = digest_of(&h);
        let mut target = h.clone();
        let narrow = FixedHistogram::new(BINS - 1, LO, HI).unwrap();
        prop_assert!(target.merge(&narrow).is_err());
        prop_assert_eq!(digest_of(&target), before, "failed merge must not mutate");
    }

    /// Recording a non-finite value is ignored; everything else lands in
    /// exactly one of (underflow | bins | overflow).
    #[test]
    fn every_finite_record_lands_once(xs in values()) {
        let mut h = histogram(&xs);
        let counted: u64 = h.bin_counts().iter().sum::<u64>() + h.underflow() + h.overflow();
        prop_assert_eq!(counted, xs.len() as u64);
        let before = digest_of(&h);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        prop_assert_eq!(digest_of(&h), before);
    }
}
