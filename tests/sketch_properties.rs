//! Property-based tests of the mergeable-sketch layer the fleet report
//! is built on: merge associativity, grouping/order invariance of the
//! discrete state, the empty-histogram identity, and digest stability.
//!
//! One subtlety is load-bearing for the fleet determinism contract:
//! the *discrete* state (bin counts, totals) is exactly associative
//! under any grouping, while the float `sum` is a left fold — so a
//! **fixed** shard layout merged in a **fixed** order is byte-stable,
//! but regrouping shards may move the sum by an ULP. The properties
//! below pin down both halves of that contract.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::sim::sketch::{Digest64, FixedHistogram};
use proptest::prelude::*;

const BINS: usize = 24;
const LO: f64 = 0.0;
const HI: f64 = 12.0;

fn histogram(values: &[f64]) -> FixedHistogram {
    let mut h = FixedHistogram::new(BINS, LO, HI).unwrap();
    for &v in values {
        h.record(v);
    }
    h
}

fn digest_of(h: &FixedHistogram) -> u64 {
    let mut d = Digest64::new();
    h.digest_into(&mut d);
    d.finish()
}

/// Sampled values straddle the histogram range so underflow and
/// overflow counters participate in every property.
fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0f64..18.0, 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Discrete state is exactly associative: `(a ⊕ b) ⊕ c` and
    /// `a ⊕ (b ⊕ c)` agree on every counter, and the float sums agree
    /// to within reassociation ULPs.
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (histogram(&a), histogram(&b), histogram(&c));

        let mut left = ha.clone();
        left.merge(&hb).unwrap();
        left.merge(&hc).unwrap();

        let mut bc = hb.clone();
        bc.merge(&hc).unwrap();
        let mut right = ha.clone();
        right.merge(&bc).unwrap();

        prop_assert_eq!(left.bin_counts(), right.bin_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.underflow(), right.underflow());
        prop_assert_eq!(left.overflow(), right.overflow());
        let tolerance = 1e-12 * left.sum().abs().max(1.0);
        prop_assert!((left.sum() - right.sum()).abs() <= tolerance);
    }

    /// A fixed partition merged in a fixed order is bitwise
    /// reproducible: recomputing the same sharded fold yields the same
    /// digest, float sum included. This — not grouping invariance — is
    /// the contract `--jobs 1/N` byte-identity rests on: the shard
    /// layout never changes with executor width, only shard ownership.
    #[test]
    fn fixed_partition_fold_is_bitwise_reproducible(xs in values(), cut in 0usize..64) {
        let cut = cut.min(xs.len());
        let fold = || {
            let mut h = histogram(&xs[..cut]);
            h.merge(&histogram(&xs[cut..])).unwrap();
            h
        };
        let (a, b) = (fold(), fold());
        prop_assert_eq!(a.sum().to_bits(), b.sum().to_bits());
        prop_assert_eq!(digest_of(&a), digest_of(&b));
        // And the discrete state of any partition matches the whole.
        let whole = histogram(&xs);
        prop_assert_eq!(a.bin_counts(), whole.bin_counts());
        prop_assert_eq!(a.count(), whole.count());
    }

    /// Merging singleton shards in sequence order IS the unsharded left
    /// fold, bit for bit — each one-sample histogram carries an exact
    /// sum, so the merge chain reassociates nothing.
    #[test]
    fn singleton_shard_fold_matches_whole_bitwise(xs in values()) {
        let whole = histogram(&xs);
        let mut folded = FixedHistogram::new(BINS, LO, HI).unwrap();
        for &x in &xs {
            folded.merge(&histogram(&[x])).unwrap();
        }
        prop_assert_eq!(folded.sum().to_bits(), whole.sum().to_bits());
        prop_assert_eq!(digest_of(&folded), digest_of(&whole));
    }

    /// The empty histogram is a two-sided identity, bitwise.
    #[test]
    fn empty_is_identity(xs in values()) {
        let h = histogram(&xs);
        let empty = FixedHistogram::new(BINS, LO, HI).unwrap();

        let mut left = empty.clone();
        left.merge(&h).unwrap();
        let mut right = h.clone();
        right.merge(&empty).unwrap();

        prop_assert_eq!(digest_of(&left), digest_of(&h));
        prop_assert_eq!(digest_of(&right), digest_of(&h));
        prop_assert_eq!(left.sum().to_bits(), h.sum().to_bits());
        prop_assert_eq!(right.sum().to_bits(), h.sum().to_bits());
    }

    /// Merging shards in a *different* order still agrees on all
    /// discrete state (commutativity of the counters).
    #[test]
    fn counters_commute(a in values(), b in values()) {
        let (ha, hb) = (histogram(&a), histogram(&b));
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(ab.bin_counts(), ba.bin_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.underflow(), ba.underflow());
        prop_assert_eq!(ab.overflow(), ba.overflow());
    }

    /// Shape mismatches are merge errors, never silent corruption.
    #[test]
    fn shape_mismatch_is_rejected(xs in values()) {
        let h = histogram(&xs);
        let before = digest_of(&h);
        let mut target = h.clone();
        let narrow = FixedHistogram::new(BINS - 1, LO, HI).unwrap();
        prop_assert!(target.merge(&narrow).is_err());
        prop_assert_eq!(digest_of(&target), before, "failed merge must not mutate");
    }

    /// Recording a non-finite value is ignored; everything else lands in
    /// exactly one of (underflow | bins | overflow).
    #[test]
    fn every_finite_record_lands_once(xs in values()) {
        let mut h = histogram(&xs);
        let counted: u64 = h.bin_counts().iter().sum::<u64>() + h.underflow() + h.overflow();
        prop_assert_eq!(counted, xs.len() as u64);
        let before = digest_of(&h);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        prop_assert_eq!(digest_of(&h), before);
    }
}

/// `Running` is the third mergeable sketch the fleet report folds
/// (alongside `FixedHistogram` and `Digest64`); its parallel-Welford
/// merge is float-*approximate* rather than bitwise, so these
/// properties assert exactness on the discrete state (count, min, max)
/// and tolerance-bounded agreement on the moments (mean, variance).
mod running_merge {
    use dora_repro::sim::stats::Running;
    use proptest::prelude::*;

    fn running(values: &[f64]) -> Running {
        let mut r = Running::new();
        for &v in values {
            r.push(v);
        }
        r
    }

    fn close(a: f64, b: f64) -> bool {
        // Welford merges reassociate the second moment; allow a few
        // orders of magnitude over ULP noise, relative to magnitude.
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    fn values() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-3.0f64..18.0, 0..64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` agree exactly on count/min/
        /// max and to tolerance on mean/variance.
        #[test]
        fn merge_is_associative(a in values(), b in values(), c in values()) {
            let (ra, rb, rc) = (running(&a), running(&b), running(&c));

            let mut left = ra.clone();
            left.merge(&rb);
            left.merge(&rc);

            let mut bc = rb.clone();
            bc.merge(&rc);
            let mut right = ra.clone();
            right.merge(&bc);

            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.min().to_bits(), right.min().to_bits());
            prop_assert_eq!(left.max().to_bits(), right.max().to_bits());
            prop_assert!(close(left.mean(), right.mean()),
                "mean {} vs {}", left.mean(), right.mean());
            prop_assert!(close(left.variance(), right.variance()),
                "variance {} vs {}", left.variance(), right.variance());
        }

        /// Shard order does not matter: `a ⊕ b` and `b ⊕ a` agree the
        /// same way, so shard *ownership* (which worker folds which) is
        /// free to change without moving the reported statistics.
        #[test]
        fn merge_is_order_insensitive(a in values(), b in values()) {
            let (ra, rb) = (running(&a), running(&b));
            let mut ab = ra.clone();
            ab.merge(&rb);
            let mut ba = rb.clone();
            ba.merge(&ra);

            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min().to_bits(), ba.min().to_bits());
            prop_assert_eq!(ab.max().to_bits(), ba.max().to_bits());
            prop_assert!(close(ab.mean(), ba.mean()),
                "mean {} vs {}", ab.mean(), ba.mean());
            prop_assert!(close(ab.variance(), ba.variance()),
                "variance {} vs {}", ab.variance(), ba.variance());
        }

        /// Any two-way split merged back equals the unsharded stream to
        /// tolerance — merging loses no information relative to pushing
        /// every sample into one accumulator.
        #[test]
        fn split_merge_matches_whole(xs in values(), cut in 0usize..64) {
            let cut = cut.min(xs.len());
            let whole = running(&xs);
            let mut merged = running(&xs[..cut]);
            merged.merge(&running(&xs[cut..]));

            prop_assert_eq!(merged.count(), whole.count());
            prop_assert_eq!(merged.min().to_bits(), whole.min().to_bits());
            prop_assert_eq!(merged.max().to_bits(), whole.max().to_bits());
            prop_assert!(close(merged.mean(), whole.mean()),
                "mean {} vs {}", merged.mean(), whole.mean());
            prop_assert!(close(merged.variance(), whole.variance()),
                "variance {} vs {}", merged.variance(), whole.variance());
        }

        /// The empty accumulator is a two-sided merge identity.
        #[test]
        fn empty_is_identity(xs in values()) {
            let r = running(&xs);
            let mut left = Running::new();
            left.merge(&r);
            let mut right = r.clone();
            right.merge(&Running::new());
            for out in [&left, &right] {
                prop_assert_eq!(out.count(), r.count());
                prop_assert_eq!(out.mean().to_bits(), r.mean().to_bits());
                prop_assert_eq!(out.variance().to_bits(), r.variance().to_bits());
                prop_assert_eq!(out.min().to_bits(), r.min().to_bits());
                prop_assert_eq!(out.max().to_bits(), r.max().to_bits());
            }
        }
    }
}
