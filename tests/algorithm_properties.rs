//! Property-based tests of Algorithm 1 and model persistence, over
//! randomized (but physically shaped) trained model bundles.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::browser::PageFeatures;
use dora_repro::dora::models::{DoraModels, FrequencyEncoding, PiecewiseSurface, PredictorInputs};
use dora_repro::dora::{
    from_text, select_frequency, select_operating_point, to_text, ClusterModel,
};
use dora_repro::modeling::leakage::Eq5Params;
use dora_repro::modeling::surface::{ResponseSurface, SurfaceKind};
use dora_repro::soc::{ClusterId, DvfsTable, MigrationCost, OperatingPoint, SocProfile};
use dora_repro::units::{Celsius, Mpki, Seconds, Utilization};
use proptest::prelude::*;

/// Builds a trained bundle from a randomized physical ground truth:
/// `T = work/f·(1 + k·mpki)`, `P = floor + c·v²·f`.
fn synth_models(work: f64, mpki_k: f64, floor: f64, c: f64) -> DoraModels {
    let dvfs = DvfsTable::default();
    let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
    let mut xs = Vec::new();
    let mut t_ys = Vec::new();
    let mut p_ys = Vec::new();
    for f in dvfs.frequencies() {
        let v = dvfs.voltage_of(f).expect("table entry");
        for mpki in [0.5f64, 4.0, 9.0, 16.0] {
            for util in [0.2f64, 0.6, 1.0] {
                let inputs = PredictorInputs::for_frequency(
                    page,
                    f,
                    &dvfs,
                    Mpki::clamped(mpki),
                    Utilization::clamped(util),
                );
                let mut x = inputs.to_vector();
                FrequencyEncoding::Period.encode(&mut x);
                xs.push(x);
                t_ys.push(work / f.as_ghz() * (1.0 + mpki_k * mpki));
                p_ys.push(floor + c * v * v * f.as_ghz());
            }
        }
    }
    let time = ResponseSurface::new(SurfaceKind::Interaction, 9)
        .fit(&xs, &t_ys)
        .expect("well posed");
    // Power uses the natural encoding: rebuild the design.
    let xs_nat: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            let mut raw = x.clone();
            // Undo the period encoding for the power design.
            raw[6] = 1.0 / raw[6];
            raw[7] = 1000.0 / raw[7];
            raw
        })
        .collect();
    let power = ResponseSurface::new(SurfaceKind::Linear, 9)
        .fit(&xs_nat, &p_ys)
        .expect("well posed");
    DoraModels {
        load_time: PiecewiseSurface::new([None, None, None], time, FrequencyEncoding::Period),
        power: PiecewiseSurface::new([None, None, None], power, FrequencyEncoding::Natural),
        leakage: Eq5Params {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        },
        dvfs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chosen frequency is always a table entry, and the reported
    /// feasibility matches the curve's contents.
    #[test]
    fn decision_is_well_formed(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        util in 0.0f64..1.0,
        temp in 25.0f64..75.0,
        deadline in 0.3f64..8.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let d = select_frequency(
            &models,
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(util),
            Celsius::new(temp),
            true,
        );
        prop_assert!(models.dvfs.index_of(d.chosen).is_some());
        prop_assert_eq!(d.curve.len(), models.dvfs.len());
        let any_feasible = d.curve.iter().any(|p| p.feasible);
        prop_assert_eq!(d.feasible, any_feasible);
        if !d.feasible {
            prop_assert_eq!(d.chosen, models.dvfs.max_frequency());
        } else {
            let chosen = d.curve.iter().find(|p| p.frequency == d.chosen).expect("in curve");
            prop_assert!(chosen.feasible);
        }
        // Every prediction is positive and finite.
        for p in &d.curve {
            prop_assert!(p.load_time.value() > 0.0 && p.load_time.is_finite());
            prop_assert!(p.power.value() > 0.0 && p.power.is_finite());
            prop_assert!(p.ppw.is_finite());
        }
    }

    /// Relaxing the deadline never lowers the achievable predicted PPW.
    #[test]
    fn relaxing_deadline_is_monotone_in_ppw(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        d1 in 0.3f64..8.0,
        extra in 0.1f64..4.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let tight = select_frequency(
            &models,
            page,
            Seconds::new(d1),
            Mpki::clamped(mpki),
            Utilization::clamped(0.6),
            Celsius::new(45.0),
            true,
        );
        let loose = select_frequency(
            &models,
            page,
            Seconds::new(d1 + extra),
            Mpki::clamped(mpki),
            Utilization::clamped(0.6),
            Celsius::new(45.0),
            true,
        );
        if tight.feasible {
            prop_assert!(loose.feasible);
            prop_assert!(loose.predicted_ppw.value() >= tight.predicted_ppw.value() - 1e-12);
        }
    }

    /// fD (lowest feasible) never exceeds fopt, and Eq. 1 holds.
    #[test]
    fn equation_one_structure(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        deadline in 0.3f64..8.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let d = select_frequency(
            &models,
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(0.6),
            Celsius::new(45.0),
            true,
        );
        if let Some(fd) = d.f_deadline() {
            prop_assert!(fd <= d.chosen, "fD {fd} above chosen {}", d.chosen);
            let fe = d.f_energy();
            let expected = if fd <= fe { fe } else { fd };
            prop_assert_eq!(d.chosen, expected);
        }
    }

    /// The 2-D (cluster, F) search is exactly the exhaustive argmax over
    /// its own predicted product space: the feasible PPW maximizer in
    /// cluster-major order, or — when nothing is feasible — fmax of the
    /// cluster whose flat-out load time is smallest.
    #[test]
    fn cluster_search_is_the_product_space_argmax(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        util in 0.0f64..1.0,
        temp in 25.0f64..75.0,
        deadline in 0.3f64..8.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let board = SocProfile::biglittle_a15a7().board_config();
        let clusters = ClusterModel::from_profile(&models, &board);
        let current = OperatingPoint {
            cluster: ClusterId::PRIMARY,
            frequency: clusters[0].models.dvfs.max_frequency(),
        };
        let d = select_operating_point(
            &clusters,
            current,
            MigrationCost::biglittle(),
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(util),
            Celsius::new(temp),
            true,
        );
        prop_assert_eq!(
            d.curve.len(),
            clusters.iter().map(|c| c.models.dvfs.len()).sum::<usize>()
        );
        // Re-derive the winner by brute force over the curve, with the
        // same strictly-greater, cluster-major-first-wins tie-break.
        let mut best: Option<usize> = None;
        for (i, p) in d.curve.iter().enumerate() {
            if p.feasible && best.is_none_or(|b| p.ppw.value() > d.curve[b].ppw.value()) {
                best = Some(i);
            }
        }
        match best {
            Some(b) => {
                prop_assert!(d.feasible);
                prop_assert_eq!(d.chosen, d.curve[b].point);
                prop_assert_eq!(
                    d.predicted_ppw.value().to_bits(),
                    d.curve[b].ppw.value().to_bits()
                );
            }
            None => {
                prop_assert!(!d.feasible);
                let fastest = clusters
                    .iter()
                    .filter_map(|cm| {
                        d.curve.iter().rfind(|p| p.point.cluster == cm.cluster)
                    })
                    .min_by(|a, b| a.load_time.value().total_cmp(&b.load_time.value()))
                    .expect("non-empty product space");
                prop_assert_eq!(d.chosen, fastest.point);
                prop_assert_eq!(
                    d.chosen.frequency,
                    clusters[d.chosen.cluster.index()].models.dvfs.max_frequency()
                );
            }
        }
    }

    /// With zero migration cost the product-space search decomposes into
    /// independent per-cluster 1-D searches: each cluster's curve rows
    /// are bit-identical to the rows of a search over that cluster alone,
    /// and the winner is the cluster-major argmax of the solo winners.
    #[test]
    fn zero_migration_reduces_to_per_cluster_search(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        deadline in 0.3f64..8.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let board = SocProfile::biglittle_a15a7().board_config();
        let clusters = ClusterModel::from_profile(&models, &board);
        let current = OperatingPoint {
            cluster: ClusterId::PRIMARY,
            frequency: clusters[0].models.dvfs.max_frequency(),
        };
        let full = select_operating_point(
            &clusters,
            current,
            MigrationCost::none(),
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(0.6),
            Celsius::new(45.0),
            true,
        );
        for cm in &clusters {
            let solo = select_operating_point(
                std::slice::from_ref(cm),
                OperatingPoint {
                    cluster: cm.cluster,
                    frequency: cm.models.dvfs.max_frequency(),
                },
                MigrationCost::none(),
                page,
                Seconds::new(deadline),
                Mpki::clamped(mpki),
                Utilization::clamped(0.6),
                Celsius::new(45.0),
                true,
            );
            let rows: Vec<_> = full
                .curve
                .iter()
                .filter(|p| p.point.cluster == cm.cluster)
                .collect();
            prop_assert_eq!(rows.len(), solo.curve.len());
            for (a, b) in rows.iter().zip(&solo.curve) {
                prop_assert_eq!(a.point, b.point);
                prop_assert_eq!(a.load_time.value().to_bits(), b.load_time.value().to_bits());
                prop_assert_eq!(a.power.value().to_bits(), b.power.value().to_bits());
                prop_assert_eq!(a.ppw.value().to_bits(), b.ppw.value().to_bits());
                prop_assert_eq!(a.feasible, b.feasible);
            }
            if full.feasible && solo.feasible {
                prop_assert!(full.predicted_ppw.value() >= solo.predicted_ppw.value());
            }
        }
    }

    /// A single-cluster product-space search is the 1-D Algorithm 1,
    /// bit for bit — the homogeneous profile reproduces legacy decisions
    /// exactly.
    #[test]
    fn single_cluster_point_search_matches_select_frequency(
        work in 0.5f64..6.0,
        mpki in 0.0f64..20.0,
        util in 0.0f64..1.0,
        temp in 25.0f64..75.0,
        deadline in 0.3f64..8.0,
    ) {
        let page = PageFeatures::new(2000, 1200, 500, 550, 600).expect("valid");
        let models = synth_models(work, 0.03, 1.5, 0.8);
        let flat = select_frequency(
            &models,
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(util),
            Celsius::new(temp),
            true,
        );
        let current = OperatingPoint {
            cluster: ClusterId::PRIMARY,
            frequency: models.dvfs.max_frequency(),
        };
        let point = select_operating_point(
            &[ClusterModel::primary(models)],
            current,
            MigrationCost::none(),
            page,
            Seconds::new(deadline),
            Mpki::clamped(mpki),
            Utilization::clamped(util),
            Celsius::new(temp),
            true,
        );
        prop_assert_eq!(point.chosen.cluster, ClusterId::PRIMARY);
        prop_assert_eq!(point.chosen.frequency, flat.chosen);
        prop_assert_eq!(point.feasible, flat.feasible);
        prop_assert_eq!(
            point.predicted_ppw.value().to_bits(),
            flat.predicted_ppw.value().to_bits()
        );
        prop_assert_eq!(point.curve.len(), flat.curve.len());
        for (p2, p1) in point.curve.iter().zip(&flat.curve) {
            prop_assert_eq!(p2.point.frequency, p1.frequency);
            prop_assert_eq!(p2.load_time.value().to_bits(), p1.load_time.value().to_bits());
            prop_assert_eq!(p2.power.value().to_bits(), p1.power.value().to_bits());
            prop_assert_eq!(p2.ppw.value().to_bits(), p1.ppw.value().to_bits());
            prop_assert_eq!(p2.feasible, p1.feasible);
            prop_assert!(!p2.migrating);
        }
    }

    /// Persistence round-trips arbitrary synthesized bundles bit-exactly.
    #[test]
    fn persist_roundtrip_random_bundles(
        work in 0.5f64..6.0,
        mpki_k in 0.0f64..0.1,
        floor in 1.0f64..2.0,
        c in 0.3f64..1.2,
    ) {
        let models = synth_models(work, mpki_k, floor, c);
        let text = to_text(&models);
        let parsed = from_text(&text).expect("round trip parses");
        prop_assert_eq!(&models, &parsed);
        // And a re-serialization is byte-identical (canonical form).
        prop_assert_eq!(text, to_text(&parsed));
    }
}
