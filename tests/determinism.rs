//! The campaign executor's determinism guarantee, end to end: parallel
//! fan-out must produce `RunResult` vectors byte-identical to the
//! sequential loop, for the evaluation grid, the oracle sweeps behind
//! the pinned policies, and the training campaign.

use dora_repro::campaign::evaluate::{evaluate, evaluate_with, Policy};
use dora_repro::campaign::executor::{Executor, Parallelism};
use dora_repro::campaign::runner::ScenarioConfig;
use dora_repro::campaign::training::{
    training_campaign, training_campaign_with, TrainingCampaignConfig,
};
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::sim::SimDuration;
use dora_repro::soc::Frequency;

fn quick() -> ScenarioConfig {
    ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(2))
        .build()
}

#[test]
fn full_54_workload_campaign_is_deterministic_across_executors() {
    // The whole paper54 grid under the baseline policy: 54 scenarios per
    // executor width. Every result field must match bit for bit, in the
    // same workload-major order.
    let set = WorkloadSet::paper54();
    let config = quick();
    let sequential = evaluate(&set, &[Policy::Interactive], None, &config).expect("runs");
    let parallel = evaluate_with(
        &set,
        &[Policy::Interactive],
        None,
        &config,
        &Executor::new(Parallelism::Fixed(4)),
    )
    .expect("runs");
    assert_eq!(sequential.results().len(), 54);
    assert_eq!(sequential.results(), parallel.results());
}

#[test]
fn oracle_backed_policies_are_deterministic_across_executors() {
    // Oracle sweeps fan out as (workload × frequency) tasks; the derived
    // fD/fE/fopt pins — and therefore the pinned-policy results — must
    // not depend on the executor width.
    let all = WorkloadSet::paper54();
    let set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| w.page.name == "Amazon")
            .cloned()
            .collect(),
    );
    let config = quick();
    let policies = [Policy::Interactive, Policy::OfflineOpt];
    let sequential = evaluate(&set, &policies, None, &config).expect("runs");
    let parallel = evaluate_with(
        &set,
        &policies,
        None,
        &config,
        &Executor::new(Parallelism::Fixed(3)),
    )
    .expect("runs");
    assert_eq!(sequential.results(), parallel.results());
    assert_eq!(sequential.oracles(), parallel.oracles());
    for oracle in parallel.oracles().values() {
        assert_eq!(oracle.sweep.len(), 14, "full-table sweep");
    }
}

#[test]
fn training_campaign_is_deterministic_across_executors() {
    let all = WorkloadSet::paper54();
    let set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| w.page.name == "MSN" && w.is_training())
            .cloned()
            .collect(),
    );
    let config = TrainingCampaignConfig {
        scenario: quick(),
        frequencies: Some(vec![
            Frequency::from_mhz(729.6),
            Frequency::from_mhz(1497.6),
            Frequency::from_mhz(2265.6),
        ]),
    };
    let sequential = training_campaign(&set, &config);
    let parallel = training_campaign_with(&set, &config, &Executor::new(Parallelism::Fixed(4)));
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.load_time, p.load_time);
        assert_eq!(s.total_power, p.total_power);
        assert_eq!(s.mean_temp, p.mean_temp);
        assert_eq!(s.inputs.l2_mpki, p.inputs.l2_mpki);
        assert_eq!(s.inputs.corun_utilization, p.inputs.corun_utilization);
    }
}
