//! The campaign executor's determinism guarantee, end to end: parallel
//! fan-out must produce `RunResult` vectors byte-identical to the
//! sequential loop, for the evaluation grid, the oracle sweeps behind
//! the pinned policies, and the training campaign — plus the snapshot
//! kernel's replay guarantee: restore + re-step reproduces the original
//! trajectory bit for bit, observable events included.

use dora_repro::campaign::driver::CampaignDriver;
use dora_repro::campaign::evaluate::Policy;
use dora_repro::campaign::executor::{Executor, Parallelism};
use dora_repro::campaign::runner::ScenarioConfig;
use dora_repro::campaign::training::TrainingCampaignConfig;
use dora_repro::campaign::workload::WorkloadSet;
use dora_repro::sim::SimDuration;
use dora_repro::soc::Frequency;

fn quick() -> ScenarioConfig {
    ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(2))
        .build()
}

#[test]
fn full_54_workload_campaign_is_deterministic_across_executors() {
    // The whole paper54 grid under the baseline policy: 54 scenarios per
    // executor width. Every result field must match bit for bit, in the
    // same workload-major order.
    let set = WorkloadSet::paper54();
    let config = quick();
    let sequential = CampaignDriver::new()
        .evaluate(&set, &[Policy::Interactive], None, &config)
        .expect("runs");
    let parallel = CampaignDriver::new()
        .executor(Executor::new(Parallelism::Fixed(4)))
        .evaluate(&set, &[Policy::Interactive], None, &config)
        .expect("runs");
    assert_eq!(sequential.results().len(), 54);
    assert_eq!(sequential.results(), parallel.results());
}

#[test]
fn oracle_backed_policies_are_deterministic_across_executors() {
    // Oracle sweeps fan out as (workload × frequency) tasks; the derived
    // fD/fE/fopt pins — and therefore the pinned-policy results — must
    // not depend on the executor width.
    let all = WorkloadSet::paper54();
    let set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| w.page.name == "Amazon")
            .cloned()
            .collect(),
    );
    let config = quick();
    let policies = [Policy::Interactive, Policy::OfflineOpt];
    let sequential = CampaignDriver::new()
        .evaluate(&set, &policies, None, &config)
        .expect("runs");
    let parallel = CampaignDriver::new()
        .executor(Executor::new(Parallelism::Fixed(3)))
        .evaluate(&set, &policies, None, &config)
        .expect("runs");
    assert_eq!(sequential.results(), parallel.results());
    assert_eq!(sequential.oracles(), parallel.oracles());
    for oracle in parallel.oracles().values() {
        assert_eq!(oracle.sweep.len(), 14, "full-table sweep");
    }
}

#[test]
fn training_campaign_is_deterministic_across_executors() {
    let all = WorkloadSet::paper54();
    let set = WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| w.page.name == "MSN" && w.is_training())
            .cloned()
            .collect(),
    );
    let config = TrainingCampaignConfig {
        scenario: quick(),
        frequencies: Some(vec![
            Frequency::from_mhz(729.6),
            Frequency::from_mhz(1497.6),
            Frequency::from_mhz(2265.6),
        ]),
    };
    let sequential = CampaignDriver::new().training_campaign(&set, &config);
    let parallel = CampaignDriver::new()
        .executor(Executor::new(Parallelism::Fixed(4)))
        .training_campaign(&set, &config);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.load_time, p.load_time);
        assert_eq!(s.total_power, p.total_power);
        assert_eq!(s.mean_temp, p.mean_temp);
        assert_eq!(s.inputs.l2_mpki, p.inputs.l2_mpki);
        assert_eq!(s.inputs.corun_utilization, p.inputs.corun_utilization);
    }
}

#[test]
fn snapshot_restore_replays_the_trajectory_bitwise_with_events() {
    use dora_repro::sim::probe::ProbeRing;
    use dora_repro::soc::task::{LoopTask, PhaseProfile, PhasedTask};
    use dora_repro::soc::Board;

    let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), 11);
    board
        .set_frequency(Frequency::from_mhz(1190.4))
        .expect("in table");
    // A finite foreground task (so both runs see a TaskFinished and a
    // lifecycle trace line) next to an endless streaming co-runner.
    board
        .assign(
            0,
            Box::new(PhasedTask::new(
                "page",
                vec![
                    (1.0e8, PhaseProfile::compute_bound()),
                    (0.5e8, PhaseProfile::streaming(30.0)),
                ],
            )),
        )
        .expect("free");
    board
        .assign(
            2,
            Box::new(LoopTask::new("hog", PhaseProfile::streaming(45.0))),
        )
        .expect("free");
    board.step(SimDuration::from_millis(120));

    let snapshot = board.snapshot();
    let d = SimDuration::from_millis(700);

    // Observers go on after the snapshot so both runs watch the same
    // window: a fresh trace shim and ring per run.
    board.enable_trace(1 << 10);
    let ring_a = ProbeRing::shared(1 << 14);
    let id_a = board.attach_probe(ring_a.clone());
    board.step(d);
    board.detach_probe(id_a);
    let run_a = (
        board.time(),
        board.energy(),
        board.energy_breakdown(),
        board.temperature(),
        board.counters(0),
        board.counters(2),
        board.finish_time(0),
        board.trace_events(),
    );
    let events_a = ring_a.borrow().to_vec();
    assert!(
        board.task_finished(0),
        "the page task should finish in run A"
    );
    assert!(!events_a.is_empty(), "run A should observe events");

    board.restore(&snapshot).expect("snapshot fits");
    // Fresh observers for run B: the trace shim and ring still hold run
    // A's events (observers are deliberately outside the snapshot).
    board.enable_trace(1 << 10);
    let ring_b = ProbeRing::shared(1 << 14);
    board.attach_probe(ring_b.clone());
    board.step(d);
    let run_b = (
        board.time(),
        board.energy(),
        board.energy_breakdown(),
        board.temperature(),
        board.counters(0),
        board.counters(2),
        board.finish_time(0),
        board.trace_events(),
    );
    assert_eq!(run_a, run_b, "restore + re-step must replay run A bitwise");
    assert_eq!(
        events_a,
        ring_b.borrow().to_vec(),
        "the observable event stream must replay bitwise too"
    );
}
