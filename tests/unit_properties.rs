//! Property-based tests of the typed units layer: textual round-trips,
//! constructor domains, clamping, the power/energy/time triangle and the
//! PPW objective's shape.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_repro::units::{Celsius, Joules, Mpki, Ppw, Seconds, Utilization, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display prints the shortest round-trippable float plus the unit
    /// suffix; FromStr recovers the exact bits for every finite value.
    #[test]
    fn display_fromstr_roundtrip_unbounded(v in -1e12f64..1e12) {
        let s = Seconds::new(v);
        prop_assert_eq!(s.to_string().parse::<Seconds>().unwrap(), s);
        let w = Watts::new(v);
        prop_assert_eq!(w.to_string().parse::<Watts>().unwrap(), w);
        let j = Joules::new(v);
        prop_assert_eq!(j.to_string().parse::<Joules>().unwrap(), j);
        let c = Celsius::new(v);
        prop_assert_eq!(c.to_string().parse::<Celsius>().unwrap(), c);
        let p = Ppw::new(v);
        prop_assert_eq!(p.to_string().parse::<Ppw>().unwrap(), p);
    }

    /// Bounded quantities round-trip over their whole domain.
    #[test]
    fn display_fromstr_roundtrip_bounded(m in 0.0f64..1e9, u in 0.0f64..=1.0) {
        let mpki = Mpki::new(m).unwrap();
        prop_assert_eq!(mpki.to_string().parse::<Mpki>().unwrap(), mpki);
        let util = Utilization::new(u).unwrap();
        prop_assert_eq!(util.to_string().parse::<Utilization>().unwrap(), util);
    }

    /// A bare number (no suffix) parses too — the suffix is optional.
    #[test]
    fn suffixless_parse(v in -1e9f64..1e9) {
        let parsed: Seconds = format!("{v:?}").parse().unwrap();
        prop_assert_eq!(parsed.value(), v);
    }

    /// `Utilization::new` accepts exactly `[0, 1]`; `Mpki::new` accepts
    /// exactly finite non-negatives.
    #[test]
    fn constructor_domains(v in -10.0f64..10.0) {
        prop_assert_eq!(Utilization::new(v).is_ok(), (0.0..=1.0).contains(&v));
        prop_assert_eq!(Mpki::new(v).is_ok(), v >= 0.0);
    }

    /// `clamped` always lands inside the domain, and is the identity on
    /// already-valid values.
    #[test]
    fn clamped_is_in_domain(sel in 0usize..4, finite in -1e12f64..1e12) {
        let v = [finite, f64::NAN, f64::INFINITY, f64::NEG_INFINITY][sel];
        let u = Utilization::clamped(v).value();
        prop_assert!((0.0..=1.0).contains(&u));
        let m = Mpki::clamped(v).value();
        prop_assert!(m >= 0.0 && m.is_finite());
        if (0.0..=1.0).contains(&v) {
            prop_assert_eq!(u, v);
        }
    }

    /// The power/energy/time triangle: `W·s = J` exactly, and the inverse
    /// divisions recover the factors.
    #[test]
    fn energy_triangle(p in 0.01f64..100.0, t in 0.01f64..1e4) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        prop_assert_eq!(e.value(), p * t);
        // Commuted form is identical.
        prop_assert_eq!((Seconds::new(t) * Watts::new(p)).value(), e.value());
        let back_p: Watts = e / Seconds::new(t);
        let back_t: Seconds = e / Watts::new(p);
        prop_assert!((back_p.value() - p).abs() <= 1e-12 * p);
        prop_assert!((back_t.value() - t).abs() <= 1e-12 * t);
    }

    /// PPW is strictly decreasing in the time·power product: more energy
    /// for the same outcome can never score better.
    #[test]
    fn ppw_monotone_in_energy(
        t in 0.01f64..100.0,
        p in 0.01f64..100.0,
        grow in 1.001f64..10.0,
    ) {
        let base = Ppw::from_time_power(Seconds::new(t), Watts::new(p));
        let worse = Ppw::from_time_power(Seconds::new(t * grow), Watts::new(p));
        prop_assert!(worse.value() < base.value());
        let worse_p = Ppw::from_time_power(Seconds::new(t), Watts::new(p * grow));
        prop_assert!(worse_p.value() < base.value());
    }

    /// Degenerate time/power inputs can never win a frequency search:
    /// they score `Ppw::ZERO`, the worst possible value.
    #[test]
    fn ppw_degenerate_is_zero(sel in 0usize..4) {
        let t = [0.0f64, -1.0, f64::NAN, f64::INFINITY][sel];
        let score = Ppw::from_time_power(Seconds::new(t), Watts::new(2.0));
        prop_assert_eq!(score, Ppw::ZERO);
    }
}

#[test]
fn garbage_does_not_parse() {
    assert!("".parse::<Seconds>().is_err());
    assert!("watts".parse::<Watts>().is_err());
    assert!("NaNs".parse::<Seconds>().is_err());
    assert!("1.5x".parse::<Seconds>().is_err());
    // Valid number, out of domain: rejected by the bounded constructor.
    assert!("1.5".parse::<Utilization>().is_err());
    assert!("-2MPKI".parse::<Mpki>().is_err());
}
