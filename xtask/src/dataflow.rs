//! A small forward abstract-interpretation framework over [`Cfg`]s.
//!
//! An [`Analysis`] supplies a boundary state, a per-statement transfer
//! function, and a join; [`forward`] runs a worklist to a fixpoint and
//! returns the state at every block entry and exit. The framework is
//! agnostic to the domain — the dataflow passes (`dimensional-flow`,
//! `snapshot-pairing`, `probe-balance`) each bring their own — and
//! ships one ready-made instance, [`ReachingDefs`], which doubles as
//! the framework's own test harness.
//!
//! Termination: the driver caps worklist steps at a generous multiple
//! of the block count. Domains used here are finite lattices joined
//! monotonically, so the cap is a backstop for a buggy domain, not a
//! tuning knob; hitting it leaves later blocks at their last sound
//! over-approximation.
//!
//! State at the synthetic exit block's entry is "state on function
//! exit" — `return` and `?` edges flow there (see [`crate::cfg`]).

use crate::cfg::{Cfg, Stmt};
use crate::lex::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A forward dataflow problem over one function body.
pub trait Analysis {
    /// The abstract state attached to program points.
    type State: Clone + PartialEq;

    /// State on entry to the function.
    fn boundary(&self) -> Self::State;

    /// Applies one statement's effect to `state`. `block`/`idx` locate
    /// the statement for clients that key facts by position.
    fn transfer(&self, state: &mut Self::State, cfg: &Cfg, block: usize, idx: usize, stmt: &Stmt);

    /// Merges `other` into `into` at a control-flow join. Returns
    /// whether `into` changed (drives the worklist).
    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool;
}

/// Fixpoint result: per-block entry and exit states. `None` means the
/// block was never reached from the entry.
pub struct BlockStates<S> {
    /// State on entry to each block.
    pub entry: Vec<Option<S>>,
    /// State after each block's last statement.
    pub exit: Vec<Option<S>>,
}

/// Runs `analysis` forward over `cfg` to a fixpoint.
pub fn forward<A: Analysis>(cfg: &Cfg, analysis: &A) -> BlockStates<A::State> {
    let n = cfg.blocks.len();
    let mut entry: Vec<Option<A::State>> = vec![None; n];
    let mut exit: Vec<Option<A::State>> = vec![None; n];
    entry[cfg.entry] = Some(analysis.boundary());
    let mut work: VecDeque<usize> = VecDeque::from([cfg.entry]);
    let mut queued = vec![false; n];
    queued[cfg.entry] = true;
    let mut steps = 0usize;
    let cap = 64 * n + 256;
    while let Some(block) = work.pop_front() {
        queued[block] = false;
        steps += 1;
        if steps > cap {
            break;
        }
        let Some(mut state) = entry[block].clone() else {
            continue;
        };
        for (idx, stmt) in cfg.blocks[block].stmts.iter().enumerate() {
            analysis.transfer(&mut state, cfg, block, idx, stmt);
        }
        for &succ in &cfg.blocks[block].succs {
            let changed = match &mut entry[succ] {
                Some(existing) => analysis.join(existing, &state),
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
        exit[block] = Some(state);
    }
    BlockStates { entry, exit }
}

/// The local name a statement binds or assigns, if it is a simple
/// `let [mut] name …` / `name = …` / `name op= …` statement. Complex
/// patterns (`let (a, b) = …`, `let Some(x) = …`) return `None`.
pub fn assigned_local(src: &str, tokens: &[Token], cfg: &Cfg, stmt: &Stmt) -> Option<String> {
    let toks = cfg.stmt_tokens(stmt);
    let word = |p: usize| toks.get(p).map(|&i| tokens[i].text(src));
    let kind = |p: usize| toks.get(p).map(|&i| tokens[i].kind);
    let mut p = 0;
    if word(p) == Some("let") {
        p += 1;
        if word(p) == Some("mut") {
            p += 1;
        }
        if kind(p) != Some(TokenKind::Ident) {
            return None;
        }
        // A plain binding is `ident :` or `ident =`; anything else
        // (path, tuple/struct pattern) is out of scope.
        return match word(p + 1) {
            Some(":") | Some("=") => word(p).map(str::to_owned),
            _ => None,
        };
    }
    // `name = …` or `name op= …` (first token an identifier, an `=`
    // before any other identifier or call structure).
    if kind(p) == Some(TokenKind::Ident) {
        let is_eq = match word(p + 1) {
            Some("=") => word(p + 2) != Some("="),
            Some("+") | Some("-") | Some("*") | Some("/") | Some("%") => word(p + 2) == Some("="),
            _ => false,
        };
        if is_eq {
            return word(p).map(str::to_owned);
        }
    }
    None
}

/// Reaching definitions: which `(block, stmt)` sites may have produced
/// each local's current value. The classic may-analysis — used by the
/// CFG property tests and available to future passes.
pub struct ReachingDefs<'a> {
    /// Source text backing the token list.
    pub src: &'a str,
    /// The file's token list (the one `Cfg::code` indexes).
    pub tokens: &'a [Token],
}

/// Map from local name to the definition sites that may reach here.
pub type DefSites = BTreeMap<String, BTreeSet<(usize, usize)>>;

impl Analysis for ReachingDefs<'_> {
    type State = DefSites;

    fn boundary(&self) -> DefSites {
        BTreeMap::new()
    }

    fn transfer(&self, state: &mut DefSites, cfg: &Cfg, block: usize, idx: usize, stmt: &Stmt) {
        if let Some(name) = assigned_local(self.src, self.tokens, cfg, stmt) {
            let mut sites = BTreeSet::new();
            sites.insert((block, idx));
            state.insert(name, sites);
        }
    }

    fn join(&self, into: &mut DefSites, other: &DefSites) -> bool {
        let mut changed = false;
        for (name, sites) in other {
            let entry = into.entry(name.clone()).or_default();
            for &site in sites {
                changed |= entry.insert(site);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run(body: &str) -> (String, Vec<Token>, Cfg) {
        let src = format!("fn f() {{ {body} }}");
        let tokens = lex(&src);
        let items = crate::items::parse_items("test.rs", &src, &tokens);
        let cfg = Cfg::build(&src, &tokens, items.fns[0].body.expect("body"));
        (src, tokens, cfg)
    }

    #[test]
    fn straight_line_defs_reach_exit() {
        let (src, tokens, cfg) = run("let a = 1; let b = a + 2;");
        let states = forward(
            &cfg,
            &ReachingDefs {
                src: &src,
                tokens: &tokens,
            },
        );
        let at_exit = states.entry[cfg.exit].as_ref().expect("exit reached");
        assert!(at_exit.contains_key("a"));
        assert!(at_exit.contains_key("b"));
        assert_eq!(at_exit["a"].len(), 1);
    }

    #[test]
    fn branches_merge_definition_sites() {
        let (src, tokens, cfg) = run("let mut a = 1; if c { a = 2; } else { a = 3; } let b = a;");
        let states = forward(
            &cfg,
            &ReachingDefs {
                src: &src,
                tokens: &tokens,
            },
        );
        let at_exit = states.entry[cfg.exit].as_ref().expect("exit reached");
        // Both branch assignments (not the initial `let`) reach the end.
        assert_eq!(at_exit["a"].len(), 2, "{at_exit:?}");
    }

    #[test]
    fn loop_reaches_fixpoint_with_both_defs() {
        let (src, tokens, cfg) = run("let mut i = 0; while c { i = i + 1; } let done = i;");
        let states = forward(
            &cfg,
            &ReachingDefs {
                src: &src,
                tokens: &tokens,
            },
        );
        let at_exit = states.entry[cfg.exit].as_ref().expect("exit reached");
        // Initial def and loop-body def both may reach the exit.
        assert_eq!(at_exit["i"].len(), 2, "{at_exit:?}");
    }

    #[test]
    fn assigned_local_recognizes_simple_forms_only() {
        let (src, tokens, cfg) = run("let a = 1; let (x, y) = p; a += 2; s.field = 3;");
        let stmts: Vec<Stmt> = cfg.blocks[cfg.entry].stmts.clone();
        let names: Vec<Option<String>> = stmts
            .iter()
            .map(|s| assigned_local(&src, &tokens, &cfg, s))
            .collect();
        assert_eq!(
            names,
            vec![Some("a".to_owned()), None, Some("a".to_owned()), None]
        );
    }
}
