//! Source-file loading and the lexer-backed stripped views shared by the
//! passes.
//!
//! Every [`SourceFile`] carries its [`crate::lex`] token stream and
//! [`crate::items`] item tree, computed once at load. The textual views
//! ([`library_code`], [`blank_strings`]) are reconstructed from token
//! spans, so string literals, char literals, raw strings, and nested
//! block comments are all handled exactly — the former line-oriented
//! scanners' blind spots (`//` inside a string literal truncating the
//! line; raw strings and char literals passing through unblanked) are
//! gone. Blanking replaces bytes with spaces, preserving both line
//! numbers *and* columns, so reported spans stay true.

use crate::cfg::Cfg;
use crate::items::ItemSet;
use crate::lex::{lex, Token, TokenKind};
use std::sync::OnceLock;

/// One library source file loaded into the lint [`crate::Context`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// Raw file contents.
    pub text: String,
    /// Token stream of `text` (byte-complete: concatenating token spans
    /// reconstructs the file).
    pub tokens: Vec<Token>,
    /// Item tree extracted from the tokens.
    pub items: ItemSet,
    /// [`library_code`] view: comments and `#[cfg(test)]` items blanked.
    pub stripped: String,
    /// Per-function CFGs, built on first request (see [`Self::cfgs`]).
    cfgs: OnceLock<Vec<Option<Cfg>>>,
}

impl SourceFile {
    /// Builds a file from its path and contents, computing the token
    /// stream, item tree, and stripped view.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let rel = rel.into();
        let text = text.into();
        let tokens = lex(&text);
        let items = crate::items::parse_items(&rel, &text, &tokens);
        let stripped = strip_with(&text, &tokens, &items.cfg_test_spans);
        SourceFile {
            rel,
            text,
            tokens,
            items,
            stripped,
            cfgs: OnceLock::new(),
        }
    }

    /// Control-flow graphs for this file's functions, index-aligned
    /// with `items.fns` (`None` for bodyless trait methods).
    ///
    /// Built lazily on first request and cached for the file's
    /// lifetime, so the dataflow passes share one construction and
    /// cache-warm engine runs that never reach a dataflow pass never
    /// pay for it.
    pub fn cfgs(&self) -> &[Option<Cfg>] {
        self.cfgs.get_or_init(|| {
            self.items
                .fns
                .iter()
                .map(|f| {
                    f.body
                        .map(|body| Cfg::build(&self.text, &self.tokens, body))
                })
                .collect()
        })
    }

    /// The crate directory key this file belongs to: `crates/<name>/…` →
    /// `<name>`, `xtask/…` → `xtask`, the root `src/` → `dora-repro`.
    pub fn crate_key(&self) -> &str {
        if let Some(rest) = self.rel.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or(rest)
        } else if self.rel.starts_with("xtask/") {
            "xtask"
        } else {
            "dora-repro"
        }
    }
}

/// Blanks `spans` (byte ranges) of `source` with spaces, preserving
/// newlines so line numbers and columns survive.
fn blank_spans(source: &str, spans: &[(usize, usize)]) -> String {
    let mut bytes = source.as_bytes().to_vec();
    for &(lo, hi) in spans {
        for b in bytes.iter_mut().take(hi.min(source.len())).skip(lo) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    // Only whole spans of non-newline bytes were replaced, so the result
    // is still valid UTF-8.
    String::from_utf8(bytes).unwrap_or_else(|_| source.to_string())
}

fn strip_with(source: &str, tokens: &[Token], cfg_test_spans: &[(usize, usize)]) -> String {
    let mut spans: Vec<(usize, usize)> = tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| (t.lo, t.hi))
        .collect();
    spans.extend_from_slice(cfg_test_spans);
    blank_spans(source, &spans)
}

/// Returns `source` with comments and `#[cfg(test)]` items blanked out
/// (spaces, newlines kept), so line numbers *and* columns stay true.
///
/// Lexer-backed: a `//` inside a string literal is part of the string,
/// not a comment — the former line scanner's truncation bug is fixed.
pub fn library_code(source: &str) -> String {
    let tokens = lex(source);
    let items = crate::items::parse_items("", source, &tokens);
    strip_with(source, &tokens, &items.cfg_test_spans)
}

/// Replaces the contents of string, raw-string, char, and byte literals
/// with spaces (delimiters kept, length and line structure preserved), so
/// token scans cannot match inside any textual literal.
///
/// Lexer-backed: raw strings (`r#"…"#`), char literals (`'"'`, `'\''`),
/// and byte strings are all blanked — the former scanner left them alone.
pub fn blank_strings(source: &str) -> String {
    let tokens = lex(source);
    let mut spans = Vec::new();
    for tok in &tokens {
        if !tok.kind.is_textual_literal() {
            continue;
        }
        let text = tok.text(source);
        // Blank strictly between the opening and closing delimiter so the
        // literal still reads as one (`""`-shaped) token.
        let Some(open) = text.find(['"', '\'']) else {
            continue;
        };
        let Some(close) = text.rfind(['"', '\'']) else {
            continue;
        };
        if close > open + 1 {
            spans.push((tok.lo + open + 1, tok.lo + close));
        }
    }
    blank_spans(source, &spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE_UNWRAP: &str = r#"
pub fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
"#;

    #[test]
    fn test_modules_are_blanked_but_lines_preserved() {
        let stripped = library_code(FIXTURE_UNWRAP);
        assert_eq!(stripped.lines().count(), FIXTURE_UNWRAP.lines().count());
        assert!(stripped.contains("read_to_string"));
        assert!(!stripped.contains("in_tests_is_fine"));
    }

    #[test]
    fn comments_are_blanked() {
        let stripped = library_code("/// Call `.unwrap()` at your peril.\nfn ok() {}\n");
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("fn ok"));
    }

    #[test]
    fn stripping_preserves_columns() {
        let src = "fn f() { /* note */ g(); }\n";
        let stripped = library_code(src);
        assert_eq!(stripped.len(), src.len());
        assert_eq!(src.find("g()"), stripped.find("g()"));
    }

    // Regression: the line-oriented scanner treated a `//` inside a
    // string literal as a comment and truncated the rest of the line.
    #[test]
    fn slashes_inside_strings_do_not_truncate() {
        let src = "let url = \"http://example.com\"; after_the_string();\n";
        let stripped = library_code(src);
        assert!(stripped.contains("after_the_string()"));
        assert!(stripped.contains("http://example.com"));
    }

    #[test]
    fn strings_blank_to_same_length() {
        let s = blank_strings("let x = \"HashMap \\\" inside\"; HashMap");
        assert_eq!(s.len(), "let x = \"HashMap \\\" inside\"; HashMap".len());
        assert_eq!(s.matches("HashMap").count(), 1);
    }

    // Regression: raw strings and char literals used to pass through
    // `blank_strings` unblanked.
    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let r = r#\"HashMap \"quoted\" inside\"#; let c = 'H'; HashMap";
        let s = blank_strings(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(s.matches("HashMap").count(), 1);
        assert!(!s.contains("'H'"));
    }

    #[test]
    fn escaped_quote_char_does_not_derail_blanking() {
        let src = "let q = '\\''; let s = \"text\"; text";
        let s = blank_strings(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(s.matches("text").count(), 1);
    }

    #[test]
    fn crate_key_maps_paths() {
        assert_eq!(
            SourceFile::new("crates/soc/src/dvfs.rs", "").crate_key(),
            "soc"
        );
        assert_eq!(
            SourceFile::new("xtask/src/main.rs", "").crate_key(),
            "xtask"
        );
        assert_eq!(SourceFile::new("src/lib.rs", "").crate_key(), "dora-repro");
    }
}
