//! Source-text utilities shared by the passes.
//!
//! Everything operates on source *text* rather than a parsed AST: the
//! checks stay dependency-free, run in milliseconds over the whole tree,
//! and can be unit-tested against small fixture strings. Stripping
//! preserves line structure so reported spans stay true.

/// One library source file loaded into the lint [`crate::Context`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// Raw file contents.
    pub text: String,
    /// [`library_code`] view: comments and `#[cfg(test)]` modules blanked.
    pub stripped: String,
}

impl SourceFile {
    /// Builds a file from its path and contents, computing the stripped
    /// view.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let stripped = library_code(&text);
        SourceFile {
            rel: rel.into(),
            text,
            stripped,
        }
    }

    /// The crate directory key this file belongs to: `crates/<name>/…` →
    /// `<name>`, `xtask/…` → `xtask`, the root `src/` → `dora-repro`.
    pub fn crate_key(&self) -> &str {
        if let Some(rest) = self.rel.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or(rest)
        } else if self.rel.starts_with("xtask/") {
            "xtask"
        } else {
            "dora-repro"
        }
    }
}

/// Returns `source` with comments and `#[cfg(test)]` modules blanked out,
/// preserving line structure so reported line numbers stay true.
///
/// The pass is textual, not a full parser: a line comment marker inside a
/// string literal is treated as a comment. That trade-off keeps the tool
/// dependency-free and has no false positives on this rustfmt'd tree.
pub fn library_code(source: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut skip_above: Option<usize> = None;
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    for raw in source.lines() {
        let code = match raw.find("//") {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        let emit = if let Some(entry) = skip_above {
            depth = (depth + opens).saturating_sub(closes);
            if depth <= entry {
                skip_above = None;
            }
            false
        } else if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            depth = (depth + opens).saturating_sub(closes);
            false
        } else if pending_cfg_test && code.trim_start().starts_with("mod") && code.contains('{') {
            // The attribute applied to this module: skip until its brace
            // closes back to the entry depth.
            let entry = depth;
            depth = (depth + opens).saturating_sub(closes);
            if depth > entry {
                skip_above = Some(entry);
            }
            pending_cfg_test = false;
            false
        } else {
            if !code.trim().is_empty() {
                pending_cfg_test = false;
            }
            depth = (depth + opens).saturating_sub(closes);
            true
        };
        out.push(if emit {
            code.to_string()
        } else {
            String::new()
        });
    }
    let mut text = out.join("\n");
    // `lines()` would otherwise swallow a final blanked line, shifting the
    // stripped view's line count relative to the raw file.
    if source.ends_with('\n') {
        text.push('\n');
    }
    text
}

/// Replaces the contents of `"…"` string literals with spaces, preserving
/// length and line structure, so token scans cannot match inside strings.
///
/// Handles `\"` escapes; char literals and raw strings are left alone
/// (rare enough in this tree that the passes tolerate them).
pub fn blank_strings(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in source.chars() {
        if in_string {
            if escaped {
                escaped = false;
                out.push(' ');
            } else if c == '\\' {
                escaped = true;
                out.push(' ');
            } else if c == '"' {
                in_string = false;
                out.push('"');
            } else if c == '\n' {
                out.push('\n');
            } else {
                out.push(' ');
            }
        } else {
            if c == '"' {
                in_string = true;
            }
            out.push(c);
        }
    }
    out
}

/// Float literals (`1.5`, `2.0e8`, `20e-6`) in one line of string-blanked
/// code: `(1-based column, literal text, parsed value)`.
pub fn float_literals(line: &str) -> Vec<(usize, String, f64)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // Not a literal start if glued to an identifier or to `.` (method
        // position / tuple index like `x.0`).
        if i > 0 {
            let prev = bytes[i - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.' {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        let mut is_float = false;
        if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
            is_float = true;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            let mut j = i + 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            if j < bytes.len() && bytes[j].is_ascii_digit() {
                is_float = true;
                i = j;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
        }
        // `1.0f64` / `1.0f32` suffix.
        if is_float && (line[i..].starts_with("f64") || line[i..].starts_with("f32")) {
            i += 3;
        }
        if is_float {
            let text = &line[start..i];
            let cleaned: String = text
                .trim_end_matches("f64")
                .trim_end_matches("f32")
                .chars()
                .filter(|&c| c != '_')
                .collect();
            if let Ok(v) = cleaned.parse::<f64>() {
                out.push((start + 1, text.to_string(), v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE_UNWRAP: &str = r#"
pub fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
"#;

    #[test]
    fn test_modules_are_blanked_but_lines_preserved() {
        let stripped = library_code(FIXTURE_UNWRAP);
        assert_eq!(stripped.lines().count(), FIXTURE_UNWRAP.lines().count());
        assert!(stripped.contains("read_to_string"));
        assert!(!stripped.contains("in_tests_is_fine"));
    }

    #[test]
    fn comments_are_blanked() {
        let stripped = library_code("/// Call `.unwrap()` at your peril.\nfn ok() {}\n");
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("fn ok"));
    }

    #[test]
    fn strings_blank_to_same_length() {
        let s = blank_strings("let x = \"HashMap \\\" inside\"; HashMap");
        assert_eq!(s.len(), "let x = \"HashMap \\\" inside\"; HashMap".len());
        assert_eq!(s.matches("HashMap").count(), 1);
    }

    #[test]
    fn float_literal_scanner_finds_values_and_columns() {
        let found = float_literals("const K: f64 = 0.30e-9 + 2.0; let i = 42; x.0;");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].1, "0.30e-9");
        assert!((found[0].2 - 0.30e-9).abs() < 1e-24);
        assert_eq!(found[0].0, 16);
        assert_eq!(found[1].1, "2.0");
    }

    #[test]
    fn integers_and_tuple_indexes_are_not_floats() {
        assert!(float_literals("let a = [1, 2, 3]; b.1; 1_000;").is_empty());
        assert_eq!(float_literals("20e-6")[0].2, 20e-6);
    }

    #[test]
    fn crate_key_maps_paths() {
        assert_eq!(
            SourceFile::new("crates/soc/src/dvfs.rs", "").crate_key(),
            "soc"
        );
        assert_eq!(
            SourceFile::new("xtask/src/main.rs", "").crate_key(),
            "xtask"
        );
        assert_eq!(SourceFile::new("src/lib.rs", "").crate_key(), "dora-repro");
    }
}
