//! The diagnostic model every pass emits into.
//!
//! A [`Diagnostic`] is the unit of output: a stable lint id, a severity, a
//! [`Span`] pointing into the repository, a one-line message, and optional
//! help text. Renderers (`render` module) turn slices of diagnostics into
//! human text, JSON, or SARIF without knowing which pass produced them.

use std::fmt;

/// A location in a repository file.
///
/// `line` and `column` are 1-based; `0` means "whole file" (file-scoped
/// findings such as a missing lint header) or "whole line" respectively.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line, or 0 for file-scoped findings.
    pub line: usize,
    /// 1-based column, or 0 for line-scoped findings.
    pub column: usize,
}

impl Span {
    /// A span covering a whole file.
    pub fn file(file: impl Into<String>) -> Self {
        Span {
            file: file.into(),
            line: 0,
            column: 0,
        }
    }

    /// A span covering one line.
    pub fn line(file: impl Into<String>, line: usize) -> Self {
        Span {
            file: file.into(),
            line,
            column: 0,
        }
    }

    /// A span pointing at a line and column.
    pub fn at(file: impl Into<String>, line: usize, column: usize) -> Self {
        Span {
            file: file.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "{}", self.file),
            (l, 0) => write!(f, "{}:{l}", self.file),
            (l, c) => write!(f, "{}:{l}:{c}", self.file),
        }
    }
}

/// How a finding affects the lint run's exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails the run (e.g. a below-budget ratchet
    /// opportunity).
    Note,
    /// Reported but non-fatal (a lint configured `level = "warn"`).
    Warning,
    /// Fails the run.
    Error,
}

impl Severity {
    /// The lowercase keyword used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The SARIF `level` keyword for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable kebab-case lint id (doubles as the SARIF rule id).
    pub lint: &'static str,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// One-line description of the violation.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic (the pass default; the driver may
    /// downgrade it per `xtask.toml` levels).
    pub fn error(lint: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A note-severity diagnostic (informational, never fatal).
    pub fn note(lint: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Note,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches remediation help.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.lint, self.message, self.span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_degrades_gracefully() {
        assert_eq!(Span::file("a.rs").to_string(), "a.rs");
        assert_eq!(Span::line("a.rs", 3).to_string(), "a.rs:3");
        assert_eq!(Span::at("a.rs", 3, 7).to_string(), "a.rs:3:7");
    }

    #[test]
    fn severity_orders_note_below_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostic_display_carries_lint_and_span() {
        let d = Diagnostic::error("panic-ratchet", Span::line("src/lib.rs", 9), "boom")
            .with_help("return a Result");
        assert_eq!(d.to_string(), "error[panic-ratchet]: boom (src/lib.rs:9)");
        assert_eq!(d.help.as_deref(), Some("return a Result"));
    }
}
