//! Typed view of `xtask.toml`.
//!
//! The config file owns everything a pass can be parameterized on:
//! per-lint levels, per-lint file allowlists, the crate layer order, the
//! determinism-scanned export paths, the designated paper-constants
//! modules with their trivial-float exemptions, and the sanctioned
//! panic entry points (`[panic-reachability] allow`, which subsumed the
//! old per-file `[panic-budget]` counts).

use crate::toml::{self, Value};
use std::collections::BTreeMap;

/// How findings of one lint are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Findings fail the run (the default).
    #[default]
    Deny,
    /// Findings are reported but do not fail the run.
    Warn,
    /// Findings are dropped.
    Allow,
}

impl Level {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "deny" => Ok(Level::Deny),
            "warn" => Ok(Level::Warn),
            "allow" => Ok(Level::Allow),
            other => Err(format!(
                "unknown lint level `{other}` (expected deny | warn | allow)"
            )),
        }
    }
}

/// The parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Per-lint level overrides (`[levels]`).
    pub levels: BTreeMap<String, Level>,
    /// Per-lint path-prefix allowlists (`[allow]`).
    pub allow: BTreeMap<String, Vec<String>>,
    /// The declared crate layers, bottom-up (`[layering] layers`). A crate
    /// may depend only on crates in its own or a lower layer.
    pub layers: Vec<Vec<String>>,
    /// Path prefixes of export/serialization code the determinism lint
    /// scans (`[determinism] export_paths`).
    pub determinism_paths: Vec<String>,
    /// Files designated as paper-constants modules (`[constants] modules`).
    pub constants_modules: Vec<String>,
    /// Float values exempt from the constants audit (`[constants]
    /// trivial`): structural values like 0.0, 1.0, 1024.0 that encode no
    /// physical or model assumption.
    pub trivial_floats: Vec<f64>,
    /// Qualified function paths sanctioned to contain panic sites
    /// (`[panic-reachability] allow`), e.g.
    /// `campaign::runner::Runner::run`.
    pub panic_allow: Vec<String>,
    /// Path prefixes of sync-facade implementations, exempt from the
    /// sync-hygiene facade ban (`[sync-hygiene] facade_paths`).
    pub sync_facade_paths: Vec<String>,
    /// Path prefixes of probe-off hot-path files the probe-purity lint
    /// scans for allocation/formatting (`[probe-purity] hot_paths`).
    pub probe_hot_paths: Vec<String>,
    /// Path prefixes of the typed-units boundary crates the units-escape
    /// lint audits (`[units-escape] boundary_paths`).
    pub units_boundary_paths: Vec<String>,
    /// Names of the unit newtypes (`[units-escape] unit_types`) —
    /// declared here because the types are macro-generated and invisible
    /// to item extraction.
    pub unit_types: Vec<String>,
    /// Qualified function paths treated as extra nondeterminism sources
    /// by the determinism-taint lint (`[determinism-taint] source_fns`).
    pub taint_source_fns: Vec<String>,
    /// State-coverage contracts (`[state-coverage]`): qualified struct
    /// path → qualified methods that must each access every named field
    /// of the struct (or justify the gap with `// state: skip(<reason>)`).
    pub state_coverage: BTreeMap<String, Vec<String>>,
    /// Qualified shard-merge sink functions (`[merge-associativity]
    /// sink_fns`): raw `f64` accumulation reachable from these is
    /// flagged unless it goes through a mergeable sketch type.
    pub merge_sink_fns: Vec<String>,
    /// Type names whose methods are trusted to merge associatively
    /// (`[merge-associativity] mergeable_types`).
    pub merge_mergeable_types: Vec<String>,
    /// Method name that opens a snapshot pair (`[snapshot-pairing]
    /// open`). Empty means the pass's built-in default, `snapshot`.
    pub snapshot_open: String,
    /// Method name that closes a snapshot pair (`[snapshot-pairing]
    /// close`). Empty means the pass's built-in default, `restore`.
    pub snapshot_close: String,
    /// Qualified functions the snapshot-pairing lint checks
    /// (`[snapshot-pairing] fns`). Empty leaves the pass inert.
    pub snapshot_fns: Vec<String>,
    /// Probe-balance contracts (`[probe-balance]`): qualified function
    /// path → `[open_method, close_method]` that must balance on every
    /// control-flow path through that function.
    pub probe_balance: BTreeMap<String, (String, String)>,
}

fn string_list(value: &Value, what: &str) -> Result<Vec<String>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what} must contain strings"))
        })
        .collect()
}

impl Config {
    /// Parses `xtask.toml` text.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let doc = toml::parse(text)?;
        let mut config = Config::default();
        for (table, entries) in &doc {
            match table.as_str() {
                "" => {
                    if let Some(key) = entries.keys().next() {
                        return Err(format!("top-level key `{key}` outside any table"));
                    }
                }
                "levels" => {
                    for (lint, v) in entries {
                        let s = v
                            .as_str()
                            .ok_or_else(|| format!("[levels] {lint} must be a string"))?;
                        config.levels.insert(lint.clone(), Level::parse(s)?);
                    }
                }
                "allow" => {
                    for (lint, v) in entries {
                        config
                            .allow
                            .insert(lint.clone(), string_list(v, &format!("[allow] {lint}"))?);
                    }
                }
                "layering" => {
                    for (key, v) in entries {
                        if key != "layers" {
                            return Err(format!("unknown key `{key}` in [layering]"));
                        }
                        let outer = v
                            .as_array()
                            .ok_or("[layering] layers must be an array of arrays")?;
                        for layer in outer {
                            config
                                .layers
                                .push(string_list(layer, "[layering] layers entries")?);
                        }
                    }
                }
                "determinism" => {
                    for (key, v) in entries {
                        if key != "export_paths" {
                            return Err(format!("unknown key `{key}` in [determinism]"));
                        }
                        config.determinism_paths = string_list(v, "[determinism] export_paths")?;
                    }
                }
                "constants" => {
                    for (key, v) in entries {
                        match key.as_str() {
                            "modules" => {
                                config.constants_modules = string_list(v, "[constants] modules")?;
                            }
                            "trivial" => {
                                config.trivial_floats = v
                                    .as_array()
                                    .ok_or("[constants] trivial must be an array")?
                                    .iter()
                                    .map(|x| {
                                        x.as_float().ok_or_else(|| {
                                            "[constants] trivial must contain numbers".to_string()
                                        })
                                    })
                                    .collect::<Result<_, _>>()?;
                            }
                            other => return Err(format!("unknown key `{other}` in [constants]")),
                        }
                    }
                }
                "sync-hygiene" => {
                    for (key, v) in entries {
                        if key != "facade_paths" {
                            return Err(format!("unknown key `{key}` in [sync-hygiene]"));
                        }
                        config.sync_facade_paths = string_list(v, "[sync-hygiene] facade_paths")?;
                    }
                }
                "probe-purity" => {
                    for (key, v) in entries {
                        if key != "hot_paths" {
                            return Err(format!("unknown key `{key}` in [probe-purity]"));
                        }
                        config.probe_hot_paths = string_list(v, "[probe-purity] hot_paths")?;
                    }
                }
                "panic-reachability" => {
                    for (key, v) in entries {
                        if key != "allow" {
                            return Err(format!("unknown key `{key}` in [panic-reachability]"));
                        }
                        config.panic_allow = string_list(v, "[panic-reachability] allow")?;
                    }
                }
                "units-escape" => {
                    for (key, v) in entries {
                        match key.as_str() {
                            "boundary_paths" => {
                                config.units_boundary_paths =
                                    string_list(v, "[units-escape] boundary_paths")?;
                            }
                            "unit_types" => {
                                config.unit_types = string_list(v, "[units-escape] unit_types")?;
                            }
                            other => {
                                return Err(format!("unknown key `{other}` in [units-escape]"))
                            }
                        }
                    }
                }
                "state-coverage" => {
                    for (ty, v) in entries {
                        config.state_coverage.insert(
                            ty.clone(),
                            string_list(v, &format!("[state-coverage] \"{ty}\""))?,
                        );
                    }
                }
                "merge-associativity" => {
                    for (key, v) in entries {
                        match key.as_str() {
                            "sink_fns" => {
                                config.merge_sink_fns =
                                    string_list(v, "[merge-associativity] sink_fns")?;
                            }
                            "mergeable_types" => {
                                config.merge_mergeable_types =
                                    string_list(v, "[merge-associativity] mergeable_types")?;
                            }
                            other => {
                                return Err(format!(
                                    "unknown key `{other}` in [merge-associativity]"
                                ))
                            }
                        }
                    }
                }
                "snapshot-pairing" => {
                    for (key, v) in entries {
                        match key.as_str() {
                            "open" => {
                                config.snapshot_open = v
                                    .as_str()
                                    .ok_or("[snapshot-pairing] open must be a string")?
                                    .to_string();
                            }
                            "close" => {
                                config.snapshot_close = v
                                    .as_str()
                                    .ok_or("[snapshot-pairing] close must be a string")?
                                    .to_string();
                            }
                            "fns" => {
                                config.snapshot_fns = string_list(v, "[snapshot-pairing] fns")?;
                            }
                            other => {
                                return Err(format!("unknown key `{other}` in [snapshot-pairing]"))
                            }
                        }
                    }
                }
                "probe-balance" => {
                    for (qual, v) in entries {
                        let pair = string_list(v, &format!("[probe-balance] \"{qual}\""))?;
                        let [open, close] = <[String; 2]>::try_from(pair).map_err(|_| {
                            format!("[probe-balance] \"{qual}\" must be [open, close]")
                        })?;
                        config.probe_balance.insert(qual.clone(), (open, close));
                    }
                }
                "determinism-taint" => {
                    for (key, v) in entries {
                        if key != "source_fns" {
                            return Err(format!("unknown key `{key}` in [determinism-taint]"));
                        }
                        config.taint_source_fns = string_list(v, "[determinism-taint] source_fns")?;
                    }
                }
                other => return Err(format!("unknown table `[{other}]` in xtask.toml")),
            }
        }
        Ok(config)
    }

    /// The effective level of a lint (deny unless overridden).
    pub fn level(&self, lint: &str) -> Level {
        self.levels.get(lint).copied().unwrap_or_default()
    }

    /// Whether `file` is allowlisted for `lint` (path-prefix match).
    pub fn is_allowed(&self, lint: &str, file: &str) -> bool {
        self.allow
            .get(lint)
            .is_some_and(|prefixes| prefixes.iter().any(|p| file.starts_with(p.as_str())))
    }

    /// Whether a float value is in the trivial exemption list.
    pub fn is_trivial_float(&self, value: f64) -> bool {
        self.trivial_floats.contains(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[levels]
partial-cmp = "warn"
dvfs-guard = "allow"

[allow]
unit-suffix = ["crates/experiments/", "crates/cli/"]

[layering]
layers = [
  ["dora-sim-core", "dora-soc"],
  ["dora-browser"],
]

[determinism]
export_paths = ["crates/campaign/src/export.rs"]

[constants]
modules = ["crates/soc/src/dvfs.rs"]
trivial = [0.0, 1.0, 1024.0]

[panic-reachability]
allow = ["campaign::runner::Runner::run"]

[units-escape]
boundary_paths = ["crates/soc/"]
unit_types = ["Seconds", "Watts"]

[determinism-taint]
source_fns = ["campaign::executor::unordered_reduce"]

[state-coverage]
"soc::snapshot::BoardSnapshot" = [
  "soc::snapshot::Board::snapshot",
  "soc::snapshot::Board::restore",
]
"sim-core::stats::Running" = ["sim-core::stats::Running::merge"]

[merge-associativity]
sink_fns = ["campaign::fleet::report::FleetReport::merge"]
mergeable_types = ["FixedHistogram", "Running"]

[snapshot-pairing]
open = "snapshot"
close = "restore"
fns = ["campaign::runner::Runner::sweep_frequencies_with"]

[probe-balance]
"campaign::runner::Runner::run_page_observed" = ["attach_probe", "detach_probe"]
"#;

    #[test]
    fn full_sample_round_trips() {
        let c = Config::from_toml(SAMPLE).expect("parses");
        assert_eq!(c.level("partial-cmp"), Level::Warn);
        assert_eq!(c.level("dvfs-guard"), Level::Allow);
        assert_eq!(c.level("panic-reachability"), Level::Deny);
        assert!(c.is_allowed("unit-suffix", "crates/cli/src/args.rs"));
        assert!(!c.is_allowed("unit-suffix", "crates/soc/src/dvfs.rs"));
        assert_eq!(c.layers.len(), 2);
        assert_eq!(c.layers[0], vec!["dora-sim-core", "dora-soc"]);
        assert_eq!(c.panic_allow, vec!["campaign::runner::Runner::run"]);
        assert_eq!(c.units_boundary_paths, vec!["crates/soc/"]);
        assert_eq!(c.unit_types, vec!["Seconds", "Watts"]);
        assert_eq!(
            c.taint_source_fns,
            vec!["campaign::executor::unordered_reduce"]
        );
        assert!(c.is_trivial_float(1024.0));
        assert!(!c.is_trivial_float(64.0));
        assert_eq!(
            c.state_coverage["soc::snapshot::BoardSnapshot"],
            vec![
                "soc::snapshot::Board::snapshot",
                "soc::snapshot::Board::restore"
            ]
        );
        assert_eq!(
            c.state_coverage["sim-core::stats::Running"],
            vec!["sim-core::stats::Running::merge"]
        );
        assert_eq!(
            c.merge_sink_fns,
            vec!["campaign::fleet::report::FleetReport::merge"]
        );
        assert_eq!(c.merge_mergeable_types, vec!["FixedHistogram", "Running"]);
        assert_eq!(c.snapshot_open, "snapshot");
        assert_eq!(c.snapshot_close, "restore");
        assert_eq!(
            c.snapshot_fns,
            vec!["campaign::runner::Runner::sweep_frequencies_with"]
        );
        assert_eq!(
            c.probe_balance["campaign::runner::Runner::run_page_observed"],
            ("attach_probe".to_string(), "detach_probe".to_string())
        );
    }

    #[test]
    fn probe_balance_pair_must_have_two_entries() {
        let err = Config::from_toml("[probe-balance]\n\"a::b\" = [\"open\"]\n").expect_err("bad");
        assert!(err.contains("must be [open, close]"), "{err}");
    }

    #[test]
    fn unknown_merge_associativity_key_is_rejected() {
        let err = Config::from_toml("[merge-associativity]\nsinks = []\n").expect_err("bad");
        assert!(err.contains("unknown key `sinks`"), "{err}");
    }

    #[test]
    fn bad_level_is_rejected() {
        let err = Config::from_toml("[levels]\nx = \"fatal\"\n").expect_err("bad");
        assert!(err.contains("unknown lint level"), "{err}");
    }

    #[test]
    fn unknown_table_is_rejected() {
        let err = Config::from_toml("[typo]\nx = 1\n").expect_err("bad");
        assert!(err.contains("unknown table"), "{err}");
    }

    #[test]
    fn retired_panic_budget_table_is_rejected() {
        let err = Config::from_toml("[panic-budget]\n\"a.rs\" = 1\n").expect_err("bad");
        assert!(err.contains("unknown table"), "{err}");
    }
}
