//! `cargo run -p xtask -- lint` — the repository's static-analysis gate.
//!
//! Scans every crate's library source (plus the root `src/`) and fails on:
//! panic-site growth beyond `xtask/panic_allowlist.txt`, raw unit-suffixed
//! `pub …: f64` fields, `partial_cmp` in enforced crates, missing crate
//! lint headers, and a missing DVFS const-eval table guard. See
//! `xtask/src/lib.rs` for the individual passes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use xtask::{
    dvfs_guard_present, has_lint_header, library_code, panic_sites, parse_allowlist,
    partial_cmp_sites, suffixed_fields, Finding,
};

/// Crates whose report structs intentionally keep raw `f64` fields while
/// the typed-units burn-down proceeds outward (tracked in DESIGN.md).
const SUFFIX_EXEMPT: [&str; 2] = ["crates/experiments/", "crates/cli/"];

/// Crates where `partial_cmp` is banned outright (`f64::total_cmp`
/// replaces it); the rest are covered by the panic ratchet only.
const TOTAL_CMP_ENFORCED: [&str; 7] = [
    "crates/sim-core/",
    "crates/soc/",
    "crates/modeling/",
    "crates/governors/",
    "crates/core/",
    "crates/campaign/",
    "src/",
];

fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Library source trees: each crate's `src/`, the workspace root `src/`,
/// and xtask's own `src/`. Tests, benches and examples live outside
/// these directories and are intentionally not scanned.
fn library_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    collect_rs_files(&root.join("src"), &mut files)?;
    collect_rs_files(&root.join("xtask").join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
        .replace('\\', "/")
}

fn run_lint(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let allowlist_path = root.join("xtask").join("panic_allowlist.txt");
    let allowlist_text = std::fs::read_to_string(&allowlist_path)
        .map_err(|e| format!("reading {}: {e}", allowlist_path.display()))?;
    let allowlist = parse_allowlist(&allowlist_text);
    let budget_for = |file: &str| -> usize {
        allowlist
            .iter()
            .find(|(p, _)| p == file)
            .map_or(0, |&(_, n)| n)
    };

    for path in library_sources(root)? {
        let file = rel(root, &path);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let stripped = library_code(&source);

        let sites = panic_sites(&stripped);
        let budget = budget_for(&file);
        if sites.len() > budget {
            findings.push(Finding {
                file: file.clone(),
                line: *sites.last().unwrap_or(&0),
                message: format!(
                    "{} panic-capable site(s) in library code, budget is \
                     {budget}; handle the error or, for a documented \
                     invariant, raise the budget in xtask/panic_allowlist.txt \
                     (lines: {sites:?})",
                    sites.len()
                ),
            });
        } else if sites.len() < budget {
            println!(
                "note: {file} is below its panic budget ({} < {budget}); \
                 ratchet xtask/panic_allowlist.txt down",
                sites.len()
            );
        }

        if !SUFFIX_EXEMPT.iter().any(|p| file.starts_with(p)) {
            for (line, name) in suffixed_fields(&stripped) {
                findings.push(Finding {
                    file: file.clone(),
                    line,
                    message: format!(
                        "public field `{name}: f64` carries a raw unit suffix; \
                         use a typed quantity from dora_sim_core::units instead"
                    ),
                });
            }
        }

        if TOTAL_CMP_ENFORCED.iter().any(|p| file.starts_with(p)) {
            for line in partial_cmp_sites(&stripped) {
                findings.push(Finding {
                    file: file.clone(),
                    line,
                    message: "partial_cmp on floats can surface NaN panics; \
                              use f64::total_cmp"
                        .to_string(),
                });
            }
        }

        if file.ends_with("/lib.rs") && !has_lint_header(&source) {
            findings.push(Finding {
                file: file.clone(),
                line: 0,
                message: "crate root is missing the agreed lint header \
                          (#![forbid(unsafe_code)] + #![deny(missing_docs)])"
                    .to_string(),
            });
        }
    }

    let dvfs = root.join("crates").join("soc").join("src").join("dvfs.rs");
    let dvfs_src =
        std::fs::read_to_string(&dvfs).map_err(|e| format!("reading {}: {e}", dvfs.display()))?;
    if !dvfs_guard_present(&dvfs_src) {
        findings.push(Finding {
            file: rel(root, &dvfs),
            line: 0,
            message: "the DVFS table's const-eval sorted/deduplicated guard \
                      (`const _: () = assert!(khz_mv_table_is_valid(..))`) is gone"
                .to_string(),
        });
    }

    Ok(findings)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = repo_root();
            match run_lint(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("xtask lint: clean");
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("error: {f}");
                    }
                    eprintln!("xtask lint: {} finding(s)", findings.len());
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            std::process::exit(2);
        }
    }
}
