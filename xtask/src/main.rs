//! `cargo run -p xtask -- <command>` — the repository's static-analysis
//! gate.
//!
//! Commands:
//!
//! * `lint [--format human|json|sarif] [--only <id,id>] [--timing]
//!   [--budget-ms <n>] [--no-cache] [--changed] [--explain <id>]` — run
//!   every registered pass over the tree via the incremental parallel
//!   engine (`xtask::engine`); exit 1 when any error-severity finding
//!   survives `xtask.toml` policy, 2 on tool failure. `--timing` prints
//!   a per-pass runtime + cache report to stderr and writes
//!   `BENCH_lint.json` at the repo root; `--budget-ms` additionally
//!   fails the run when wall-clock exceeds the budget or any single
//!   pass exceeds its per-pass share of it (the CI runtime-regression
//!   gate). `--no-cache` bypasses `target/xtask-cache/`; `--changed`
//!   re-lints only files whose cache entry is stale and skips the
//!   tree-scoped passes. `--explain <id>` prints one pass's reference
//!   text (what it checks, config keys, justification syntax) and
//!   exits without linting.
//! * `bless-api` — regenerate the `xtask/api/<crate>.txt` public-API
//!   snapshots after an intentional surface change.
//! * `passes` — list registered lint ids and descriptions.
//!
//! Configuration lives in `xtask/xtask.toml`; see DESIGN.md §8.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use xtask::passes::{api_surface, registry};
use xtask::{render, repo_root, Context};

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint [--format human|json|sarif] [--only <id,id>] [--timing] [--budget-ms <n>]
       [--no-cache] [--changed] [--explain <id>]
        run the static-analysis passes; non-zero exit on findings
        --timing prints a per-pass runtime + cache report and writes
        BENCH_lint.json; --budget-ms fails the run when wall-clock
        exceeds the budget or any pass exceeds its per-pass share;
        --no-cache bypasses target/xtask-cache/; --changed lints only
        cache-stale files (skips tree passes); --explain <id> prints
        one pass's reference text and exits
  bless-api
        regenerate xtask/api/<crate>.txt public-API snapshots
  passes
        list registered passes
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// Parsed `lint` subcommand options.
struct LintArgs {
    format: Format,
    only: Option<Vec<String>>,
    timing: bool,
    budget_ms: Option<u64>,
    no_cache: bool,
    changed: bool,
    explain: Option<String>,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut parsed = LintArgs {
        format: Format::Human,
        only: None,
        timing: false,
        budget_ms: None,
        no_cache: false,
        changed: false,
        explain: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let value = args.get(i + 1).ok_or("--format needs a value")?;
                parsed.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--only" => {
                let value = args.get(i + 1).ok_or("--only needs a value")?;
                parsed.only = Some(value.split(',').map(str::to_string).collect::<Vec<_>>());
                i += 2;
            }
            "--timing" => {
                parsed.timing = true;
                i += 1;
            }
            "--no-cache" => {
                parsed.no_cache = true;
                i += 1;
            }
            "--changed" => {
                parsed.changed = true;
                i += 1;
            }
            "--explain" => {
                let value = args.get(i + 1).ok_or("--explain needs a lint id")?;
                parsed.explain = Some(value.clone());
                i += 2;
            }
            "--budget-ms" => {
                let value = args.get(i + 1).ok_or("--budget-ms needs a value")?;
                parsed.budget_ms = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("--budget-ms: `{value}` is not a number"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    if parsed.changed && parsed.no_cache {
        return Err("--changed needs the cache; drop --no-cache".to_string());
    }
    Ok(parsed)
}

/// Renders the `--timing` report: one line per pass, the engine's
/// wall-clock total and cache behavior, with the budget verdict when
/// `--budget-ms` is set. Two gates share the budget: total wall-clock
/// must stay under it, and each single pass must stay under its
/// per-pass share (budget ÷ passes run) — a pass that eats the whole
/// budget alone is a regression even while the total still fits.
/// Wall-clock is the primary gate (per-pass durations are summed
/// across workers, so their *sum* can exceed it on a healthy run, but
/// no single pass should).
fn timing_report(
    outcome: &xtask::engine::LintOutcome,
    wall: std::time::Duration,
    budget_ms: Option<u64>,
) -> (String, bool) {
    let mut out = String::from("pass timings:\n");
    for t in &outcome.timings {
        out.push_str(&format!(
            "  {:<20} {:>9.3} ms\n",
            t.id,
            t.elapsed.as_secs_f64() * 1e3
        ));
    }
    out.push_str(&format!(
        "  {:<20} {:>9.3} ms\n",
        "total (wall)",
        wall.as_secs_f64() * 1e3
    ));
    let c = &outcome.cache;
    if !c.enabled {
        out.push_str("  cache: disabled\n");
    } else if c.tree_hit {
        out.push_str(&format!("  cache: tree hit ({} files)\n", outcome.files));
    } else {
        out.push_str(&format!(
            "  cache: {} file hit(s), {} miss(es)\n",
            c.file_hits, c.file_misses
        ));
    }
    let mut over = false;
    if let Some(budget) = budget_ms {
        let wall_ms = wall.as_secs_f64() * 1e3;
        over = wall_ms > budget as f64;
        let share = budget as f64 / outcome.timings.len().max(1) as f64;
        for t in &outcome.timings {
            let ms = t.elapsed.as_secs_f64() * 1e3;
            if ms > share {
                over = true;
                out.push_str(&format!(
                    "  pass {} over its per-pass share: {ms:.3} ms > {share:.1} ms\n",
                    t.id
                ));
            }
        }
        out.push_str(&format!(
            "  budget {budget} ms: {}\n",
            if over { "EXCEEDED" } else { "ok" }
        ));
    }
    (out, over)
}

#[allow(clippy::disallowed_methods)] // timing the driver: reported, never fed into results
fn lint(root: &Path, args: &[String]) -> Result<i32, String> {
    let opts = parse_lint_args(args)?;
    let LintArgs {
        format,
        only,
        timing,
        budget_ms,
        no_cache,
        changed,
        explain,
    } = opts;
    if let Some(id) = &explain {
        print!("{}", render::explain(id)?);
        return Ok(0);
    }
    if let Some(ids) = &only {
        let known: Vec<&str> = registry().iter().map(|p| p.id()).collect();
        for id in ids {
            if !known.contains(&id.as_str()) {
                return Err(format!("unknown lint id `{id}` (see `xtask passes`)"));
            }
        }
    }
    let cx = Context::load(root)?;
    let engine_opts = xtask::engine::EngineOptions {
        use_cache: !no_cache,
        changed_only: changed,
        ..xtask::engine::EngineOptions::at_root(root)
    };
    let start = std::time::Instant::now();
    let outcome = xtask::engine::run_lint(&cx, &engine_opts)?;
    let wall = start.elapsed();
    if !outcome.skipped_tree_passes.is_empty() {
        eprintln!(
            "xtask lint: --changed skipped tree passes: {}",
            outcome.skipped_tree_passes.join(", ")
        );
    }
    let mut diags = outcome.diags.clone();
    if let Some(ids) = &only {
        diags.retain(|d| ids.iter().any(|id| id == d.lint));
    }
    let mut budget_exceeded = false;
    if timing || budget_ms.is_some() {
        let (report, over) = timing_report(&outcome, wall, budget_ms);
        eprint!("{report}");
        budget_exceeded = over;
    }
    if timing {
        let bench = root.join("BENCH_lint.json");
        xtask::engine::write_bench(&bench, &outcome, wall.as_secs_f64() * 1e3)?;
        eprintln!("wrote {}", bench.display());
    }
    let (errors, warnings, notes) = render::tally(&diags);
    match format {
        Format::Human => {
            print!("{}", render::human(&diags));
            if errors == 0 {
                println!("xtask lint: clean ({warnings} warning(s), {notes} note(s))");
            } else {
                eprintln!("xtask lint: {errors} error(s), {warnings} warning(s), {notes} note(s)");
            }
        }
        Format::Json => print!("{}", render::json(&diags)),
        Format::Sarif => {
            let passes = registry();
            let rules: Vec<(&str, &str)> =
                passes.iter().map(|p| (p.id(), p.description())).collect();
            print!("{}", render::sarif(&diags, &rules));
        }
    }
    if budget_exceeded {
        eprintln!("xtask lint: pass runtime exceeded --budget-ms; see timing report above");
        return Ok(1);
    }
    Ok(i32::from(errors > 0))
}

fn bless_api(root: &Path) -> Result<i32, String> {
    let cx = Context::load(root)?;
    let api_dir = root.join("xtask").join("api");
    std::fs::create_dir_all(&api_dir)
        .map_err(|e| format!("creating {}: {e}", api_dir.display()))?;
    let surface = api_surface::extract_surface(&cx.files);
    for (crate_key, items) in &surface {
        let path = api_dir.join(format!("{crate_key}.txt"));
        let text = api_surface::render_snapshot(items);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("blessed {} ({} symbols)", path.display(), items.len());
    }
    // Remove snapshots for crates that no longer exist.
    for stale in cx.api_snapshots.keys() {
        if !surface.contains_key(stale) {
            let path = api_dir.join(format!("{stale}.txt"));
            std::fs::remove_file(&path).map_err(|e| format!("removing {}: {e}", path.display()))?;
            println!("removed stale {}", path.display());
        }
    }
    Ok(0)
}

fn passes_list() -> i32 {
    for pass in registry() {
        println!("{:<16} {}", pass.id(), pass.description());
    }
    0
}

fn dispatch() -> Result<i32, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&root, &args[1..]),
        Some("bless-api") => bless_api(&root),
        Some("passes") => Ok(passes_list()),
        _ => {
            eprint!("{USAGE}");
            Ok(2)
        }
    }
}

fn main() {
    match dispatch() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("xtask: {e}");
            std::process::exit(2);
        }
    }
}
