//! Source-level lint passes behind `cargo run -p xtask -- lint`.
//!
//! Everything here operates on source *text* rather than on a parsed AST:
//! the checks stay dependency-free, run in milliseconds over the whole
//! tree, and can be unit-tested against small fixture strings. The passes:
//!
//! * **Panic ratchet** — `.unwrap()` / `.expect(` / `panic!` in non-test
//!   library code is budgeted per file by `xtask/panic_allowlist.txt`.
//!   New sites fail the build; burning a site down below its budget is
//!   reported so the budget can be tightened.
//! * **Unit-suffix field ban** — `pub foo_mhz: f64`-style fields leak raw
//!   unit-suffixed scalars through public APIs; typed quantities from
//!   `dora_sim_core::units` carry the unit instead.
//! * **`partial_cmp` ban** — float ordering in enforced crates goes
//!   through `f64::total_cmp`, which cannot panic on NaN.
//! * **Lint header** — every crate's `lib.rs` must carry the agreed
//!   `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` header.
//! * **DVFS const guard** — the MSM8974 frequency/voltage table keeps its
//!   compile-time sorted/deduplicated assertion.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// One lint violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        }
    }
}

/// Returns `source` with comments and `#[cfg(test)]` modules blanked out,
/// preserving line structure so reported line numbers stay true.
///
/// The pass is textual, not a full parser: a line comment marker inside a
/// string literal is treated as a comment. That trade-off keeps the tool
/// dependency-free and has no false positives on this rustfmt'd tree.
pub fn library_code(source: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut skip_above: Option<usize> = None;
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    for raw in source.lines() {
        let code = match raw.find("//") {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        let emit = if let Some(entry) = skip_above {
            depth = (depth + opens).saturating_sub(closes);
            if depth <= entry {
                skip_above = None;
            }
            false
        } else if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            depth = (depth + opens).saturating_sub(closes);
            false
        } else if pending_cfg_test && code.trim_start().starts_with("mod") && code.contains('{') {
            // The attribute applied to this module: skip until its brace
            // closes back to the entry depth.
            let entry = depth;
            depth = (depth + opens).saturating_sub(closes);
            if depth > entry {
                skip_above = Some(entry);
            }
            pending_cfg_test = false;
            false
        } else {
            if !code.trim().is_empty() {
                pending_cfg_test = false;
            }
            depth = (depth + opens).saturating_sub(closes);
            true
        };
        out.push(if emit {
            code.to_string()
        } else {
            String::new()
        });
    }
    out.join("\n")
}

/// 1-based line numbers of panic-capable sites (`.unwrap()`, `.expect(`,
/// `panic!`) in already-stripped library code.
pub fn panic_sites(stripped: &str) -> Vec<usize> {
    let mut sites = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        // Patterns assembled at runtime so this file does not flag itself.
        let unwrap_pat = concat!(".unw", "rap()");
        let expect_pat = concat!(".exp", "ect(");
        let panic_pat = concat!("pan", "ic!");
        let hits = line.matches(unwrap_pat).count()
            + line.matches(expect_pat).count()
            + line.matches(panic_pat).count();
        for _ in 0..hits {
            sites.push(i + 1);
        }
    }
    sites
}

const BANNED_SUFFIXES: [&str; 11] = [
    "_mhz", "_ghz", "_khz", "_hz", "_ms", "_s", "_mw", "_w", "_j", "_c", "_mpki",
];

/// Public `f64` struct fields whose names end in a raw unit suffix.
///
/// `_per_` compound names (e.g. `resistance_k_per_w`) describe a ratio
/// whose unit is the name, not a disguised scalar quantity, and are
/// exempt.
pub fn suffixed_fields(stripped: &str) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let Some((name, ty)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let ty = ty.trim().trim_end_matches(',');
        if ty != "f64" || name.contains('(') || name.contains("_per_") {
            continue;
        }
        if BANNED_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            found.push((i + 1, name.to_string()));
        }
    }
    found
}

/// 1-based lines calling `partial_cmp` in stripped library code.
pub fn partial_cmp_sites(stripped: &str) -> Vec<usize> {
    stripped
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(".partial_cmp("))
        .map(|(i, _)| i + 1)
        .collect()
}

/// Whether a crate root carries the agreed lint header.
pub fn has_lint_header(source: &str) -> bool {
    source.contains("#![forbid(unsafe_code)]") && source.contains("#![deny(missing_docs)]")
}

/// Whether the DVFS table source keeps its const-eval validity guard.
pub fn dvfs_guard_present(source: &str) -> bool {
    source.contains("const _: () = assert!(") && source.contains("khz_mv_table_is_valid")
}

/// Parses `panic_allowlist.txt`: `<max-count> <path>` per line, `#`
/// comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<(String, usize)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (count, path) = l.split_once(char::is_whitespace)?;
            Some((path.trim().to_string(), count.parse().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE_UNWRAP: &str = r#"
pub fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
"#;

    const FIXTURE_FIELD: &str = r#"
/// A result row.
pub struct Row {
    /// Core clock in megahertz.
    pub freq_mhz: f64,
    /// A ratio, exempt.
    pub joules_per_s: f64,
    /// Typed, fine.
    pub load_time: Seconds,
}
"#;

    #[test]
    fn library_unwrap_is_flagged_but_test_unwrap_is_not() {
        let stripped = library_code(FIXTURE_UNWRAP);
        let sites = panic_sites(&stripped);
        assert_eq!(
            sites,
            vec![3],
            "exactly the library unwrap, not the test one"
        );
    }

    #[test]
    fn expect_and_panic_are_flagged() {
        let stripped =
            library_code("fn f() {\n    g().expect(\"boom\");\n    panic!(\"no\");\n}\n");
        assert_eq!(panic_sites(&stripped), vec![2, 3]);
    }

    #[test]
    fn comments_and_docs_do_not_count() {
        let src = "/// Call `.unwrap()` at your peril.\n// panic! lives here\nfn ok() {}\n";
        assert!(panic_sites(&library_code(src)).is_empty());
    }

    #[test]
    fn public_mhz_field_is_flagged() {
        let found = suffixed_fields(&library_code(FIXTURE_FIELD));
        assert_eq!(found, vec![(5, "freq_mhz".to_string())]);
    }

    #[test]
    fn suffixed_non_f64_and_private_fields_pass() {
        let src = "pub struct S {\n    pub t: Seconds,\n    load_s: f64,\n    pub f_hz: u64,\n}\n";
        assert!(suffixed_fields(&library_code(src)).is_empty());
    }

    #[test]
    fn partial_cmp_is_flagged() {
        let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        assert_eq!(partial_cmp_sites(&library_code(src)), vec![2]);
    }

    #[test]
    fn header_check() {
        assert!(has_lint_header(
            "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n"
        ));
        assert!(!has_lint_header("#![forbid(unsafe_code)]\n"));
    }

    #[test]
    fn allowlist_parses() {
        let parsed = parse_allowlist("# comment\n3 crates/soc/src/board.rs\n\n1 src/lib.rs\n");
        assert_eq!(
            parsed,
            vec![
                ("crates/soc/src/board.rs".to_string(), 3),
                ("src/lib.rs".to_string(), 1)
            ]
        );
    }

    #[test]
    fn dvfs_guard_detector() {
        let ok = "const _: () = assert!(\n    khz_mv_table_is_valid(&T),\n    \"msg\"\n);";
        assert!(dvfs_guard_present(ok));
        assert!(!dvfs_guard_present(
            "pub const T: [(u64, u32); 1] = [(1, 1)];"
        ));
    }
}
