//! The repository's static-analysis framework, behind
//! `cargo run -p xtask -- lint`.
//!
//! Architecture (DESIGN.md §8, §12):
//!
//! * [`diag`] — the [`Diagnostic`] model: lint id, severity, file/line/
//!   column [`Span`], message, help.
//! * [`lex`] / [`items`] / [`callgraph`] — the dependency-free syntax
//!   layer: a full Rust lexer with byte-exact spans, an item tree
//!   (functions, consts, structs, uses) extracted from the token
//!   stream, and a conservative intra-workspace call graph built on
//!   top of both.
//! * [`cfg`] / [`dataflow`] — the intraprocedural layer: statement-
//!   level control-flow graphs built from the token stream, and a
//!   forward abstract-interpretation framework (worklist fixpoint,
//!   join, reaching definitions) the dataflow passes run on.
//! * [`source`] / [`workspace`] — source loading (each file carries its
//!   tokens, items, lazily built per-function CFGs, and a
//!   column-preserving stripped view) and the crate dependency graph.
//! * [`config`] — `xtask.toml`: per-lint levels, allowlists, the crate
//!   layer order, determinism scan paths, constants modules,
//!   panic-reachability entry allowlists, units-boundary paths.
//! * [`passes`] — the [`Pass`] trait and registry. Each lint is a plugin
//!   over a shared read-only [`Context`].
//! * [`render`] — human, `--format json` and `--format sarif` emitters.
//!
//! Every pass is pure over the [`Context`], so fixtures test them without
//! touching the filesystem; only [`Context::load`] and the `bless-api`
//! command do I/O.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod fieldindex;
pub mod items;
pub mod justify;
pub mod lex;
pub mod passes;
pub mod render;
pub mod source;
pub mod toml;
pub mod workspace;

pub use config::{Config, Level};
pub use diag::{Diagnostic, Severity, Span};
pub use passes::Pass;
pub use source::SourceFile;
pub use workspace::Manifest;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything the passes see: loaded library sources, workspace
/// manifests, API snapshots, and the parsed `xtask.toml`.
///
/// Fields are public so tests can assemble synthetic contexts.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// Library source files (each crate's `src/`, the root `src/`, and
    /// `xtask/src/`), sorted by path.
    pub files: Vec<SourceFile>,
    /// Workspace package manifests (root, `crates/*`, `xtask`).
    pub manifests: Vec<Manifest>,
    /// Public-API snapshots: crate key → `xtask/api/<key>.txt` contents.
    pub api_snapshots: BTreeMap<String, String>,
    /// Parsed `xtask.toml`.
    pub config: Config,
}

/// The repository root, derived from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

impl Context {
    /// Loads the real repository at `root`.
    ///
    /// # Errors
    ///
    /// On unreadable files or an invalid `xtask.toml`.
    pub fn load(root: &Path) -> Result<Self, String> {
        let config = Config::from_toml(&read(&root.join("xtask").join("xtask.toml"))?)?;

        // Library sources: each crate's `src/`, the workspace root `src/`,
        // and xtask's own `src/`. Tests, benches and examples live outside
        // these directories and are intentionally not scanned.
        let mut paths = Vec::new();
        let crates = root.join("crates");
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let mut crate_dirs: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
            crate_dirs.push(entry.path());
        }
        crate_dirs.sort();
        for dir in &crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut paths)?;
            }
        }
        collect_rs_files(&root.join("src"), &mut paths)?;
        collect_rs_files(&root.join("xtask").join("src"), &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            files.push(SourceFile::new(rel(root, path), read(path)?));
        }

        // Manifests: the root package, every crate, and xtask.
        let mut manifests = Vec::new();
        let mut manifest_paths = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
        for dir in &crate_dirs {
            manifest_paths.push(dir.join("Cargo.toml"));
        }
        for path in &manifest_paths {
            if !path.is_file() {
                continue;
            }
            if let Some(m) = workspace::parse_manifest(&rel(root, path), &read(path)?) {
                manifests.push(m);
            }
        }

        // API snapshots (absent files surface as missing-snapshot
        // findings, not load errors).
        let mut api_snapshots = BTreeMap::new();
        let api_dir = root.join("xtask").join("api");
        if api_dir.is_dir() {
            let entries = std::fs::read_dir(&api_dir)
                .map_err(|e| format!("reading {}: {e}", api_dir.display()))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("reading {}: {e}", api_dir.display()))?;
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "txt") {
                    let key = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    api_snapshots.insert(key, read(&path)?);
                }
            }
        }

        Ok(Context {
            files,
            manifests,
            api_snapshots,
            config,
        })
    }
}

/// Runs every registered pass over the context and applies `xtask.toml`
/// policy: per-lint/per-file allowlists drop findings, `level = "allow"`
/// drops a lint entirely, `level = "warn"` downgrades errors to warnings.
///
/// The returned list is sorted by span then lint id, so output (and the
/// JSON/SARIF emitted from it) is deterministic regardless of pass order.
pub fn run_passes(cx: &Context) -> Vec<Diagnostic> {
    run_passes_timed(cx).0
}

/// Wall-clock runtime of one pass, as reported by `lint --timing`.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass's stable lint id.
    pub id: &'static str,
    /// How long its `run` took over the whole tree.
    pub elapsed: std::time::Duration,
}

/// [`run_passes`], also returning per-pass wall-clock timings in
/// registry order. Backs `lint --timing` and the CI `--budget-ms`
/// runtime-regression gate.
pub fn run_passes_timed(cx: &Context) -> (Vec<Diagnostic>, Vec<PassTiming>) {
    let mut out = Vec::new();
    let mut timings = Vec::new();
    for pass in passes::registry() {
        // Timing the driver is the one sanctioned wall-clock use in this
        // workspace: durations are reported, never fed into results.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let raw = pass.run(cx);
        timings.push(PassTiming {
            id: pass.id(),
            elapsed: start.elapsed(),
        });
        out.extend(apply_policy(&cx.config, raw));
    }
    sort_diags(&mut out);
    (out, timings)
}

/// Applies `xtask.toml` policy to one pass's raw findings: per-lint/
/// per-file allowlists drop findings, `level = "allow"` drops a lint
/// entirely, `level = "warn"` downgrades errors to warnings. Shared by
/// the sequential driver above and the incremental [`engine`].
pub fn apply_policy(config: &Config, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for mut d in raw {
        if config.is_allowed(d.lint, &d.span.file) {
            continue;
        }
        match config.level(d.lint) {
            Level::Allow => continue,
            Level::Warn => {
                if d.severity == Severity::Error {
                    d.severity = Severity::Warning;
                }
            }
            Level::Deny => {}
        }
        out.push(d);
    }
    out
}

/// The canonical diagnostic order: span, then lint id. All drivers sort
/// with this so output is identical regardless of pass or worker order.
pub fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.span, a.lint).cmp(&(&b.span, b.lint)));
}
