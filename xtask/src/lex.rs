//! A dependency-free Rust lexer for the lint passes.
//!
//! Produces a complete token stream over raw source text: every byte of
//! the input is covered by exactly one token, so reconstructing the file
//! from token spans is byte-identical by construction (pinned for the
//! whole tree by `xtask/tests/lex_roundtrip.rs`). The lexer understands
//! the constructs the old line-oriented scans could not: raw strings
//! (`r#"…"#`), char/byte literals (`'\''`, `b'x'`), nested block
//! comments, lifetimes vs. char literals, and int/float literals with
//! suffixes (`1_000e-6f32`).
//!
//! Passes consume the stream through [`code_tokens`] (trivia and literal
//! *contents* filtered out by kind, so a `// TODO: panic!` comment or a
//! `"HashMap"` string can never produce a finding) and the small
//! pattern-matching helpers ([`seq_at`], [`Pat`]).

use std::fmt;

/// What one token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// `'a` / `'_` lifetime (no closing quote).
    Lifetime,
    /// `'x'` char literal, escapes handled.
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// `"…"` string literal, escapes handled.
    Str,
    /// `b"…"` byte-string literal.
    ByteStr,
    /// `r"…"` / `r#"…"#` raw string literal.
    RawStr,
    /// `br"…"` / `br#"…"#` raw byte-string literal.
    RawByteStr,
    /// Integer literal, prefix and suffix included (`0xff_u32`).
    Int,
    /// Float literal, suffix included (`1_000e-6f32`).
    Float,
    /// One punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// An unterminated literal or other byte the lexer could not place.
    /// The whole-tree round-trip test asserts none exist in the repo.
    Unknown,
}

impl TokenKind {
    /// Whether the token is whitespace or a comment.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// Whether the token is a string/char-like literal whose *contents*
    /// must never match a lint needle.
    pub fn is_textual_literal(self) -> bool {
        matches!(
            self,
            TokenKind::Char
                | TokenKind::Byte
                | TokenKind::Str
                | TokenKind::ByteStr
                | TokenKind::RawStr
                | TokenKind::RawByteStr
        )
    }
}

/// One token: a kind plus the `[lo, hi)` byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub lo: usize,
    /// End byte offset (exclusive).
    pub hi: usize,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}..{}", self.kind, self.lo, self.hi)
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs.
///
/// Columns are 1-based byte offsets within the line, matching the spans
/// the line-oriented passes have always reported.
#[derive(Debug, Clone, Default)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for one source text.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// The 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.starts[line] + 1)
    }

    /// The 1-based line of a byte offset.
    pub fn line(&self, offset: usize) -> usize {
        self.line_col(offset).0
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if f(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        self.eat_while(|c| c != '\n');
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/*` already consumed; nest until the matching `*/`.
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => return TokenKind::Unknown,
            }
        }
        TokenKind::BlockComment
    }

    /// A `"…"` body; the opening quote is already consumed.
    fn double_quoted(&mut self) -> bool {
        while let Some(c) = self.bump() {
            match c {
                '"' => return true,
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        false
    }

    /// A raw-string body starting at `r`'s hashes: `r##"…"##`.
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() != Some('"') {
            return false;
        }
        self.bump();
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return true;
                    }
                }
                Some(_) => {}
                None => return false,
            }
        }
    }

    /// A `'…'` char/byte-literal body; the opening quote is consumed.
    fn single_quoted(&mut self) -> bool {
        // First char of the body (escape or plain), then scan to the
        // closing quote. A newline before the close means unterminated.
        loop {
            match self.peek() {
                Some('\'') => {
                    self.bump();
                    return true;
                }
                Some('\n') | None => return false,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// `'` at `self.pos - 1`: lifetime or char literal.
    fn lifetime_or_char(&mut self) -> TokenKind {
        match (self.peek(), self.peek_at(1)) {
            // `'a'` is a char; `'a` (not followed by `'`) is a lifetime.
            (Some(c0), next) if is_ident_start(c0) && next != Some('\'') => {
                self.bump();
                self.eat_while(is_ident_continue);
                // `'ab'`-style (invalid but lexable) closes as a char.
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            _ => {
                if self.single_quoted() {
                    TokenKind::Char
                } else {
                    TokenKind::Unknown
                }
            }
        }
    }

    fn number(&mut self, first: char) -> TokenKind {
        if first == '0' {
            if let Some(radix) = self.peek() {
                if matches!(radix, 'x' | 'o' | 'b') {
                    self.bump();
                    self.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
                    self.eat_while(is_ident_continue); // suffix
                    return TokenKind::Int;
                }
            }
        }
        self.eat_while(|c| c.is_ascii_digit() || c == '_');
        let mut is_float = false;
        // A fractional part: `.` followed by a digit, or a trailing `1.`
        // (not `1..2`, not `1.max(2)`, not a tuple index context — those
        // leave the dot for the next token).
        if self.peek() == Some('.') {
            match self.peek_at(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.bump();
                    self.eat_while(|c| c.is_ascii_digit() || c == '_');
                    is_float = true;
                }
                Some(c) if c == '.' || is_ident_start(c) => {}
                _ => {
                    self.bump();
                    is_float = true;
                }
            }
        }
        // An exponent: `e`/`E` with optional sign and at least one digit.
        if matches!(self.peek(), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek_at(1), Some('+' | '-')));
            if self.peek_at(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                if sign == 1 {
                    self.bump();
                }
                self.eat_while(|c| c.is_ascii_digit() || c == '_');
                is_float = true;
            }
        }
        // Suffix (`u32`, `f64`, …): a float suffix forces Float.
        let suffix_start = self.pos;
        if self.peek().is_some_and(is_ident_start) {
            self.eat_while(is_ident_continue);
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = match self.bump() {
            Some(c) => c,
            None => return TokenKind::Unknown,
        };
        match c {
            c if c.is_whitespace() => {
                self.eat_while(char::is_whitespace);
                TokenKind::Whitespace
            }
            '/' => match self.peek() {
                Some('/') => self.line_comment(),
                Some('*') => {
                    self.bump();
                    self.block_comment()
                }
                _ => TokenKind::Punct,
            },
            'r' => match (self.peek(), self.peek_at(1)) {
                (Some('"'), _) | (Some('#'), Some('"' | '#')) => {
                    if self.raw_string() {
                        TokenKind::RawStr
                    } else {
                        TokenKind::Unknown
                    }
                }
                (Some('#'), Some(c1)) if is_ident_start(c1) => {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
                _ => {
                    self.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
            },
            'b' => match (self.peek(), self.peek_at(1)) {
                (Some('\''), _) => {
                    self.bump();
                    if self.single_quoted() {
                        TokenKind::Byte
                    } else {
                        TokenKind::Unknown
                    }
                }
                (Some('"'), _) => {
                    self.bump();
                    if self.double_quoted() {
                        TokenKind::ByteStr
                    } else {
                        TokenKind::Unknown
                    }
                }
                (Some('r'), Some('"' | '#')) => {
                    self.bump();
                    if self.raw_string() {
                        TokenKind::RawByteStr
                    } else {
                        TokenKind::Unknown
                    }
                }
                _ => {
                    self.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
            },
            '"' => {
                if self.double_quoted() {
                    TokenKind::Str
                } else {
                    TokenKind::Unknown
                }
            }
            '\'' => self.lifetime_or_char(),
            c if c.is_ascii_digit() => self.number(c),
            c if is_ident_start(c) => {
                self.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => TokenKind::Punct,
        }
    }
}

/// Lexes a whole source text into a complete token stream.
///
/// Every byte of `src` belongs to exactly one token; concatenating
/// `token.text(src)` over the result reproduces `src` byte-for-byte.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lexer = Lexer { src, pos: 0 };
    let mut out = Vec::new();
    while lexer.pos < src.len() {
        let lo = lexer.pos;
        let kind = lexer.next_kind();
        debug_assert!(lexer.pos > lo, "lexer must make progress");
        out.push(Token {
            kind,
            lo,
            hi: lexer.pos,
        });
    }
    out
}

/// Indexes (into `tokens`) of the non-trivia tokens, in order.
///
/// This is the stream the pattern helpers walk: comments and whitespace
/// are gone, but string/char literals remain as opaque single tokens so
/// their *kind* can be checked without their contents ever matching.
pub fn code_tokens(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_trivia())
        .map(|(i, _)| i)
        .collect()
}

/// One element of a token pattern for [`seq_at`].
#[derive(Debug, Clone, Copy)]
pub enum Pat<'a> {
    /// An identifier with this exact text.
    Ident(&'a str),
    /// Any identifier.
    AnyIdent,
    /// A punctuation token with this exact text.
    P(&'a str),
}

/// Whether the non-trivia token sequence starting at `code[at]` matches
/// `pats` exactly (each pattern consumes one token).
pub fn seq_at(src: &str, tokens: &[Token], code: &[usize], at: usize, pats: &[Pat<'_>]) -> bool {
    for (k, pat) in pats.iter().enumerate() {
        let Some(&idx) = code.get(at + k) else {
            return false;
        };
        let tok = &tokens[idx];
        match pat {
            Pat::Ident(s) => {
                if tok.kind != TokenKind::Ident || tok.text(src) != *s {
                    return false;
                }
            }
            Pat::AnyIdent => {
                if tok.kind != TokenKind::Ident {
                    return false;
                }
            }
            Pat::P(s) => {
                if tok.kind != TokenKind::Punct || tok.text(src) != *s {
                    return false;
                }
            }
        }
    }
    true
}

/// Parses the numeric value of an [`TokenKind::Int`] or
/// [`TokenKind::Float`] token's text (underscores and suffix stripped).
pub fn literal_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches("usize")
        .trim_end_matches("isize");
    let cleaned = match cleaned.find(['u', 'i']) {
        // `10u32` / `3i64`-style integer suffixes (not hex digits: hex
        // literals carry an `0x` prefix and no `u`/`i` in their digits).
        Some(pos) if pos > 0 && !cleaned.starts_with("0x") && !cleaned.starts_with("0o") => {
            &cleaned[..pos]
        }
        _ => cleaned,
    };
    if let Some(hex) = cleaned.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16).ok().map(|v| v as f64);
    }
    if let Some(oct) = cleaned.strip_prefix("0o") {
        return u64::from_str_radix(oct, 8).ok().map(|v| v as f64);
    }
    if let Some(bin) = cleaned.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok().map(|v| v as f64);
    }
    cleaned.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let src = "fn f() -> f64 { r#\"raw // not comment\"# ; '\\'' }\n";
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
        assert!(tokens.iter().all(|t| t.kind != TokenKind::Unknown));
    }

    #[test]
    fn raw_strings_and_hashes() {
        assert_eq!(kinds("r\"a\""), vec![TokenKind::RawStr]);
        assert_eq!(kinds("r#\"a \"quoted\" b\"#"), vec![TokenKind::RawStr]);
        assert_eq!(kinds("r##\"nested \"# inside\"##"), vec![TokenKind::RawStr]);
        assert_eq!(kinds("br#\"bytes\"#"), vec![TokenKind::RawByteStr]);
        // Raw identifiers are idents, and a plain `r` stays an ident.
        assert_eq!(kinds("r#type"), vec![TokenKind::Ident]);
        assert_eq!(kinds("r"), vec![TokenKind::Ident]);
        assert_eq!(kinds("rate"), vec![TokenKind::Ident]);
    }

    #[test]
    fn chars_bytes_and_lifetimes() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![TokenKind::Char]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::Byte]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        // A `'a'` directly after a lifetime-looking prefix is a char.
        assert_eq!(texts("'a' + 'b'"), vec!["'a'", "+", "'b'"]);
    }

    #[test]
    fn comments_nest_and_strings_hide_comment_markers() {
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![TokenKind::Ident]);
        let src = "let u = \"https://example.com\"; done";
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.kind != TokenKind::LineComment));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text(src).contains("//")));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        assert_eq!(kinds("1_000e-6f32"), vec![TokenKind::Float]);
        assert_eq!(kinds("0.30e-9"), vec![TokenKind::Float]);
        assert_eq!(kinds("1f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("42u32"), vec![TokenKind::Int]);
        assert_eq!(kinds("0xff_u8"), vec![TokenKind::Int]);
        assert_eq!(kinds("1_000_000"), vec![TokenKind::Int]);
        // `x.0` is a dot + int (tuple index), `1..2` is int, dots, int,
        // `1.max(2)` keeps the dot for the method call.
        assert_eq!(
            kinds("x.0"),
            vec![TokenKind::Ident, TokenKind::Punct, TokenKind::Int]
        );
        assert_eq!(texts("1..2"), vec!["1", ".", ".", "2"]);
        assert_eq!(texts("1.max(2)")[0], "1");
        assert_eq!(texts("1. + 2.")[0], "1.");
    }

    #[test]
    fn literal_values_parse() {
        assert_eq!(literal_value("1_000e-6f32"), Some(1_000e-6));
        assert_eq!(literal_value("0.30e-9"), Some(0.30e-9));
        assert_eq!(literal_value("0xff"), Some(255.0));
        assert_eq!(literal_value("42u32"), Some(42.0));
        assert_eq!(literal_value("12"), Some(12.0));
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\n");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(5), (2, 3));
    }

    #[test]
    fn seq_matching() {
        let src = "use std::sync::Mutex;";
        let toks = lex(src);
        let code = code_tokens(&toks);
        assert!(seq_at(
            src,
            &toks,
            &code,
            1,
            &[
                Pat::Ident("std"),
                Pat::P(":"),
                Pat::P(":"),
                Pat::Ident("sync")
            ]
        ));
        assert!(!seq_at(src, &toks, &code, 0, &[Pat::Ident("std")]));
    }
}
