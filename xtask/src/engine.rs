//! The incremental, parallel lint engine behind `cargo run -p xtask --
//! lint`.
//!
//! [`run_passes_timed`](crate::run_passes_timed) is the sequential
//! reference implementation: every pass over the whole tree, every
//! time. This module produces byte-identical diagnostics faster, two
//! ways:
//!
//! * **Parallelism.** Passes that declare
//!   [`PassScope::File`](crate::passes::PassScope::File) run
//!   file-parallel over single-file contexts; the
//!   [`PassScope::Tree`](crate::passes::PassScope::Tree) passes run
//!   pass-parallel (each builds its own call graph, so they scale
//!   independently). Work is distributed by an atomic cursor over a
//!   fixed worker pool and results are reassembled in input order, so
//!   scheduling never reorders output.
//! * **Caching.** Under `target/xtask-cache/` the engine keeps (a) one
//!   *tree* entry keyed by a hash of every input the passes can see —
//!   all file contents, manifests, API snapshots, `xtask.toml`, and the
//!   registry — holding the final post-policy diagnostics, and (b) one
//!   entry per file keyed by that file's content hash plus the config
//!   hash, holding the file-scoped passes' post-policy findings for it.
//!   A warm unchanged tree is one file read; an edit re-lints the
//!   touched files plus the tree passes only.
//!
//! Cache entries are plain tab-separated text with a version header;
//! any parse failure, unknown lint id, or I/O error is a silent miss —
//! the cache can always be deleted (`make lint-cache-clear`).

use crate::diag::{Diagnostic, Severity, Span};
use crate::passes::{registry, PassScope};
use crate::source::SourceFile;
use crate::{apply_policy, sort_diags, Context, PassTiming};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Bump to invalidate every existing cache entry (serialization or
/// semantics changes).
const CACHE_VERSION: &str = "xtask-cache v2";

/// How the engine is asked to run.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Read and write `target/xtask-cache/` (off under `--no-cache`).
    pub use_cache: bool,
    /// `--changed`: lint only files whose per-file cache entry is
    /// missing or stale, and skip the tree passes entirely.
    pub changed_only: bool,
    /// Cache directory (`<repo>/target/xtask-cache` in production;
    /// tests point this at a scratch dir).
    pub cache_dir: PathBuf,
}

impl EngineOptions {
    /// Production options rooted at the repository.
    pub fn at_root(root: &Path) -> Self {
        EngineOptions {
            use_cache: true,
            changed_only: false,
            cache_dir: root.join("target").join("xtask-cache"),
        }
    }
}

/// What the cache did during one run.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Whether the cache was consulted at all.
    pub enabled: bool,
    /// The whole-tree entry matched: nothing was re-linted.
    pub tree_hit: bool,
    /// Files whose per-file entry was reused.
    pub file_hits: usize,
    /// Files that were (re-)linted by the file-scoped passes.
    pub file_misses: usize,
}

/// Everything one engine run produced.
#[derive(Debug)]
pub struct LintOutcome {
    /// Final post-policy diagnostics, in the canonical (span, lint)
    /// order — byte-identical to [`crate::run_passes`].
    pub diags: Vec<Diagnostic>,
    /// Per-pass runtimes in registry order. For file-scoped passes the
    /// duration is summed across workers (work, not wall-clock); empty
    /// on a whole-tree cache hit.
    pub timings: Vec<PassTiming>,
    /// Cache behavior.
    pub cache: CacheStats,
    /// How many files were in scope.
    pub files: usize,
    /// Tree-scoped passes skipped by `--changed`, in registry order.
    pub skipped_tree_passes: Vec<&'static str>,
}

// --- hashing ---------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a sequence of length-delimited byte strings.
fn fnv(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for p in parts {
        eat(&(p.len() as u64).to_le_bytes());
        eat(p.as_bytes());
    }
    h
}

/// Hash of everything that parameterizes pass *behavior* (as opposed to
/// the sources being linted): cache format version, the registry
/// fingerprint (pass ids, order, *and* per-pass behavioral versions —
/// see [`crate::passes::registry_fingerprint`]), and the parsed config.
/// A rebuilt xtask whose pass logic changed therefore never serves
/// per-file entries computed by the old logic.
fn config_hash(cx: &Context) -> u64 {
    let fingerprint = format!("{:016x}", crate::passes::registry_fingerprint());
    let config = format!("{:?}", cx.config);
    fnv(&[CACHE_VERSION, fingerprint.as_str(), config.as_str()])
}

/// Hash of one file's identity and contents.
fn file_hash(file: &SourceFile) -> u64 {
    fnv(&[file.rel.as_str(), file.text.as_str()])
}

/// Hash of every input the tree passes can see.
fn tree_hash(cx: &Context) -> u64 {
    let mut parts: Vec<&str> = Vec::new();
    for f in &cx.files {
        parts.push(f.rel.as_str());
        parts.push(f.text.as_str());
    }
    let manifests: Vec<String> = cx.manifests.iter().map(|m| format!("{m:?}")).collect();
    for m in &manifests {
        parts.push(m.as_str());
    }
    for (k, v) in &cx.api_snapshots {
        parts.push(k.as_str());
        parts.push(v.as_str());
    }
    fnv(&parts)
}

// --- diagnostic (de)serialization ------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn serialize_diags(diags: &[Diagnostic]) -> String {
    let mut out = String::from(CACHE_VERSION);
    out.push('\n');
    for d in diags {
        let help = match &d.help {
            None => "-".to_string(),
            Some(h) => format!("={}", escape(h)),
        };
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            d.lint,
            d.severity.as_str(),
            escape(&d.span.file),
            d.span.line,
            d.span.column,
            escape(&d.message),
            help
        ));
    }
    out
}

/// Parses a cache entry; `None` on any mismatch (treated as a miss).
fn parse_diags(text: &str, ids: &BTreeMap<&'static str, &'static str>) -> Option<Vec<Diagnostic>> {
    let mut lines = text.lines();
    if lines.next()? != CACHE_VERSION {
        return None;
    }
    let mut out = Vec::new();
    for line in lines {
        let cols: Vec<&str> = line.split('\t').collect();
        let [lint, sev, file, line_no, col, msg, help] = cols.as_slice() else {
            return None;
        };
        let lint: &'static str = ids.get(lint)?;
        let severity = match *sev {
            "note" => Severity::Note,
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            _ => return None,
        };
        let span = Span {
            file: unescape(file)?,
            line: line_no.parse().ok()?,
            column: col.parse().ok()?,
        };
        let help = match help.strip_prefix('=') {
            Some(h) => Some(unescape(h)?),
            None => {
                if *help != "-" {
                    return None;
                }
                None
            }
        };
        out.push(Diagnostic {
            lint,
            severity,
            span,
            message: unescape(msg)?,
            help,
        });
    }
    Some(out)
}

fn cache_read(path: &Path) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

fn cache_write(path: &Path, text: &str) {
    // Best effort: a failed write degrades to a future miss.
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, text);
}

// --- parallel execution ----------------------------------------------

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
        .min(items.max(1))
}

/// Runs `work` over `0..n` on a fixed worker pool, returning results in
/// index order. Propagates worker panics as an error.
fn parallel_map<R, F>(n: usize, work: F) -> Result<Vec<R>, String>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let workers = worker_count(n);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    local.push((i, work(i)));
                }
                local
            }));
        }
        let mut all = Vec::new();
        let mut panicked = false;
        for h in handles {
            match h.join() {
                Ok(v) => all.extend(v),
                Err(_) => panicked = true,
            }
        }
        if panicked {
            Err("a lint worker panicked".to_string())
        } else {
            Ok(all)
        }
    })?;
    indexed.sort_by_key(|(i, _)| *i);
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

// --- the engine ------------------------------------------------------

/// One file's result from the file-scoped passes.
struct FileResult {
    diags: Vec<Diagnostic>,
    timings: Vec<(usize, Duration)>,
    cache_hit: bool,
}

/// Runs the registered passes over `cx` with caching and parallelism
/// per `opts`. Diagnostics are byte-identical to [`crate::run_passes`]
/// (modulo `--changed`, which skips the tree passes).
///
/// # Errors
///
/// When a pass panics on a worker thread.
#[allow(clippy::disallowed_methods)] // timing the driver: durations are reported, never fed into results
pub fn run_lint(cx: &Context, opts: &EngineOptions) -> Result<LintOutcome, String> {
    let passes = registry();
    let ids: BTreeMap<&'static str, &'static str> =
        passes.iter().map(|p| (p.id(), p.id())).collect();
    let conf = config_hash(cx);
    let mut cache = CacheStats {
        enabled: opts.use_cache,
        ..CacheStats::default()
    };

    // Whole-tree hit: nothing changed anywhere, return the final
    // diagnostics without lexing or running anything.
    let tree_path = opts
        .cache_dir
        .join(format!("tree-{conf:016x}-{:016x}.txt", tree_hash(cx)));
    if opts.use_cache && !opts.changed_only {
        if let Some(diags) = cache_read(&tree_path).and_then(|t| parse_diags(&t, &ids)) {
            cache.tree_hit = true;
            cache.file_hits = cx.files.len();
            return Ok(LintOutcome {
                diags,
                timings: Vec::new(),
                cache,
                files: cx.files.len(),
                skipped_tree_passes: Vec::new(),
            });
        }
    }

    let file_pass_idx: Vec<usize> = (0..passes.len())
        .filter(|&i| passes[i].scope() == PassScope::File)
        .collect();
    let tree_pass_idx: Vec<usize> = (0..passes.len())
        .filter(|&i| passes[i].scope() == PassScope::Tree)
        .collect();

    // File-scoped passes, file-parallel with per-file cache entries.
    let file_results: Vec<FileResult> = parallel_map(cx.files.len(), |i| {
        let file = &cx.files[i];
        let entry = opts
            .cache_dir
            .join(format!("file-{conf:016x}-{:016x}.txt", file_hash(file)));
        if opts.use_cache {
            if let Some(diags) = cache_read(&entry).and_then(|t| parse_diags(&t, &ids)) {
                return FileResult {
                    diags,
                    timings: Vec::new(),
                    cache_hit: true,
                };
            }
        }
        let single = Context {
            files: vec![file.clone()],
            config: cx.config.clone(),
            ..Context::default()
        };
        let mut diags = Vec::new();
        let mut timings = Vec::new();
        for &p in &file_pass_idx {
            let start = std::time::Instant::now();
            let raw = passes[p].run(&single);
            timings.push((p, start.elapsed()));
            diags.extend(apply_policy(&cx.config, raw));
        }
        sort_diags(&mut diags);
        if opts.use_cache {
            cache_write(&entry, &serialize_diags(&diags));
        }
        FileResult {
            diags,
            timings,
            cache_hit: false,
        }
    })?;

    let mut per_pass: BTreeMap<usize, Duration> = BTreeMap::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for r in &file_results {
        cache.file_hits += usize::from(r.cache_hit);
        cache.file_misses += usize::from(!r.cache_hit);
        diags.extend(r.diags.iter().cloned());
        for &(p, d) in &r.timings {
            *per_pass.entry(p).or_default() += d;
        }
    }

    let mut skipped_tree_passes = Vec::new();
    if opts.changed_only {
        skipped_tree_passes = tree_pass_idx.iter().map(|&p| passes[p].id()).collect();
    } else {
        // Tree-scoped passes, pass-parallel (each builds its own call
        // graph, so they scale independently).
        let tree_results: Vec<(Vec<Diagnostic>, Duration)> =
            parallel_map(tree_pass_idx.len(), |k| {
                let start = std::time::Instant::now();
                let raw = passes[tree_pass_idx[k]].run(cx);
                (apply_policy(&cx.config, raw), start.elapsed())
            })?;
        for (k, (d, elapsed)) in tree_results.into_iter().enumerate() {
            diags.extend(d);
            *per_pass.entry(tree_pass_idx[k]).or_default() += elapsed;
        }
    }

    sort_diags(&mut diags);
    if opts.use_cache && !opts.changed_only {
        cache_write(&tree_path, &serialize_diags(&diags));
    }
    let timings: Vec<PassTiming> = per_pass
        .into_iter()
        .map(|(p, elapsed)| PassTiming {
            id: passes[p].id(),
            elapsed,
        })
        .collect();
    Ok(LintOutcome {
        diags,
        timings,
        cache,
        files: cx.files.len(),
        skipped_tree_passes,
    })
}

// --- BENCH_lint.json -------------------------------------------------

/// Writes the `BENCH_lint.json` perf-trajectory record for one run.
/// `total_ms` is the caller-measured wall-clock around [`run_lint`].
///
/// # Errors
///
/// On an unwritable path.
pub fn write_bench(path: &Path, outcome: &LintOutcome, total_ms: f64) -> Result<(), String> {
    let mut passes = String::new();
    for (i, t) in outcome.timings.iter().enumerate() {
        if i > 0 {
            passes.push_str(", ");
        }
        passes.push_str(&format!(
            "{{\"id\": \"{}\", \"ms\": {:.3}}}",
            t.id,
            t.elapsed.as_secs_f64() * 1e3
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"xtask-lint\",\n  \"files\": {},\n  \"total_ms\": {:.3},\n  \
         \"cache\": {{\"enabled\": {}, \"tree_hit\": {}, \"file_hits\": {}, \"file_misses\": {}}},\n  \
         \"passes\": [{}]\n}}\n",
        outcome.files,
        total_ms,
        outcome.cache.enabled,
        outcome.cache.tree_hit,
        outcome.cache.file_hits,
        outcome.cache.file_misses,
        passes
    );
    std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    #[test]
    fn diag_serialization_round_trips() {
        let ids: BTreeMap<&'static str, &'static str> =
            registry().iter().map(|p| (p.id(), p.id())).collect();
        let diags = vec![
            Diagnostic::error(
                "unit-suffix",
                Span::at("crates/a/src/lib.rs", 3, 7),
                "tab\there",
            )
            .with_help("multi\nline"),
            Diagnostic::note(
                "stale-config",
                Span::file("xtask/xtask.toml"),
                "back\\slash",
            ),
        ];
        let text = serialize_diags(&diags);
        let back = parse_diags(&text, &ids).expect("round trip");
        assert_eq!(back, diags);
    }

    #[test]
    fn unknown_lint_and_bad_header_are_misses() {
        let ids: BTreeMap<&'static str, &'static str> =
            registry().iter().map(|p| (p.id(), p.id())).collect();
        assert!(parse_diags("other header\n", &ids).is_none());
        let bogus = format!("{CACHE_VERSION}\nno-such-lint\terror\tf\t1\t0\tm\t-\n");
        assert!(parse_diags(&bogus, &ids).is_none());
        let short = format!("{CACHE_VERSION}\nunit-suffix\terror\tf\n");
        assert!(parse_diags(&short, &ids).is_none());
    }

    #[test]
    fn hashes_separate_fields() {
        // Length-delimiting means ("ab","c") and ("a","bc") differ.
        assert_ne!(fnv(&["ab", "c"]), fnv(&["a", "bc"]));
        assert_ne!(fnv(&["a"]), fnv(&["a", ""]));
    }

    #[test]
    fn config_hash_tracks_config_changes() {
        let a = Context {
            config: Config::from_toml("[levels]\nunit-suffix = \"warn\"\n").expect("config"),
            ..Context::default()
        };
        let b = Context::default();
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&b), config_hash(&Context::default()));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map(100, |i| i * 2).expect("no panics");
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_surfaces_worker_panics() {
        let err = parallel_map(4, |i| {
            assert!(i != 2, "boom");
            i
        })
        .expect_err("panic propagates");
        assert!(err.contains("worker panicked"), "{err}");
    }
}
