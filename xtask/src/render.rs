//! Output renderers: human text, `--format json`, `--format sarif`.
//!
//! All three are hand-rolled (the workspace carries no serialization
//! dependency) and deterministic: diagnostics arrive pre-sorted from
//! [`crate::run_passes`] and field order is fixed, so CI can diff output
//! byte-for-byte.

use crate::diag::{Diagnostic, Severity};

/// Renders `lint --explain <id>`: the pass's one-line description as a
/// header, then its multi-line reference text.
///
/// # Errors
///
/// When `id` names no registered pass (the message lists valid ids).
pub fn explain(id: &str) -> Result<String, String> {
    let passes = crate::passes::registry();
    let Some(pass) = passes.iter().find(|p| p.id() == id) else {
        let known: Vec<&str> = passes.iter().map(|p| p.id()).collect();
        return Err(format!(
            "unknown lint id `{id}` (known: {})",
            known.join(", ")
        ));
    };
    Ok(format!(
        "{id} — {}\n\n{}\n",
        pass.description(),
        pass.explain()
    ))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as human-readable text, one block per finding.
pub fn human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}\n",
            d.severity, d.lint, d.message, d.span
        ));
        if let Some(help) = &d.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
    }
    out
}

/// Renders diagnostics as a stable JSON document.
///
/// Shape: `{"version": 1, "diagnostics": [{"lint", "severity", "file",
/// "line", "column", "message", "help"}]}` with `line`/`column` 0 for
/// file/line-scoped findings and `help` null when absent.
pub fn json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let help = d
            .help
            .as_ref()
            .map_or_else(|| "null".to_string(), |h| format!("\"{}\"", json_escape(h)));
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"column\": {}, \"message\": \"{}\", \"help\": {}}}",
            json_escape(d.lint),
            d.severity,
            json_escape(&d.span.file),
            d.span.line,
            d.span.column,
            json_escape(&d.message),
            help,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders diagnostics as a SARIF 2.1.0 log with one run.
///
/// `rules` is the full pass registry (`(id, description)` pairs) so the
/// SARIF `tool.driver.rules` table is complete even for lints with no
/// findings — CI code-scanning UIs key on it.
pub fn sarif(diags: &[Diagnostic], rules: &[(&str, &str)]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \
         \"name\": \"xtask-lint\",\n          \"informationUri\": \
         \"https://example.invalid/dora-repro\",\n          \"rules\": [",
    );
    for (i, (id, desc)) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = rules
            .iter()
            .position(|(id, _)| *id == d.lint)
            .map_or(-1i64, |p| p as i64);
        let mut region = String::new();
        if d.span.line > 0 {
            region.push_str(&format!(
                ",\n              \"region\": {{\"startLine\": {}",
                d.span.line
            ));
            if d.span.column > 0 {
                region.push_str(&format!(", \"startColumn\": {}", d.span.column));
            }
            region.push('}');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": {},\n          \
             \"level\": \"{}\",\n          \"message\": {{\"text\": \"{}\"}},\n          \
             \"locations\": [{{\n            \"physicalLocation\": {{\n              \
             \"artifactLocation\": {{\"uri\": \"{}\"}}{}\n            }}\n          }}]\n        }}",
            json_escape(d.lint),
            rule_index,
            d.severity.sarif_level(),
            json_escape(&d.message),
            json_escape(&d.span.file),
            region,
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

/// Counts of each severity, for the summary line and the exit code.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    (errors, warnings, notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Span;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error(
                "map-determinism",
                Span::at("crates/campaign/src/evaluate.rs", 81, 14),
                "`HashMap` in export-reachable code",
            )
            .with_help("use BTreeMap"),
            Diagnostic::note("panic-ratchet", Span::file("src/lib.rs"), "below budget"),
        ]
    }

    #[test]
    fn human_blocks_carry_span_and_help() {
        let text = human(&sample());
        assert!(text.contains("error[map-determinism]"));
        assert!(text.contains("--> crates/campaign/src/evaluate.rs:81:14"));
        assert!(text.contains("= help: use BTreeMap"));
        assert!(text.contains("note[panic-ratchet]"));
    }

    #[test]
    fn json_escaping_and_nulls() {
        let d = vec![Diagnostic::error(
            "x",
            Span::file("a.rs"),
            "quote \" backslash \\ newline \n",
        )];
        let text = json(&d);
        assert!(text.contains("quote \\\" backslash \\\\ newline \\n"));
        assert!(text.contains("\"help\": null"));
    }

    #[test]
    fn tally_counts() {
        assert_eq!(tally(&sample()), (1, 0, 1));
    }
}
