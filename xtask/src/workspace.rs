//! Workspace-graph extraction from `Cargo.toml` manifests.
//!
//! A line-oriented scan, not a full TOML parse: the workspace's manifests
//! are rustfmt-simple (`name = "…"` under `[package]`, one dependency per
//! line under `[dependencies]` / `[dev-dependencies]`), and keeping the
//! scan dumb keeps line numbers attached to every dependency edge so the
//! layering pass can point at the offending line.

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// The dependency's package name (the table key).
    pub name: String,
    /// 1-based line in the manifest where the edge is declared.
    pub line: usize,
    /// Whether the edge is a `[dev-dependencies]` entry.
    pub dev: bool,
}

/// One workspace member's manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Package name (`[package] name`).
    pub name: String,
    /// Repo-relative path of the `Cargo.toml`, `/`-separated.
    pub path: String,
    /// Declared dependencies, in file order.
    pub deps: Vec<DepEntry>,
}

impl Manifest {
    /// Normal (non-dev) dependency names.
    pub fn normal_deps(&self) -> impl Iterator<Item = &DepEntry> {
        self.deps.iter().filter(|d| !d.dev)
    }
}

/// Parses one manifest. Returns `None` when the file declares no
/// `[package]` (e.g. a virtual manifest).
pub fn parse_manifest(path: &str, text: &str) -> Option<Manifest> {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut name: Option<String> = None;
    let mut deps = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(v) = rest.strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            Section::Deps | Section::DevDeps => {
                // `dora-soc.workspace = true`, `foo = { path = ".." }`,
                // `foo = "1"` — the key ends at the first `.`, space or `=`.
                let key: String = line
                    .chars()
                    .take_while(|c| !matches!(c, '.' | ' ' | '=' | '\t'))
                    .collect();
                let key = key.trim_matches('"').to_string();
                if !key.is_empty() {
                    deps.push(DepEntry {
                        name: key,
                        line: i + 1,
                        dev: section == Section::DevDeps,
                    });
                }
            }
            Section::Other => {}
        }
    }
    Some(Manifest {
        name: name?,
        path: path.to_string(),
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "dora-governors"
version.workspace = true

[dependencies]
dora-sim-core.workspace = true
dora-soc = { path = "../soc" }

[dev-dependencies]
proptest.workspace = true

[lints]
workspace = true
"#;

    #[test]
    fn package_and_edges_with_lines() {
        let m = parse_manifest("crates/governors/Cargo.toml", SAMPLE).expect("package");
        assert_eq!(m.name, "dora-governors");
        assert_eq!(m.deps.len(), 3);
        assert_eq!(m.deps[0].name, "dora-sim-core");
        assert_eq!(m.deps[0].line, 7);
        assert!(!m.deps[0].dev);
        assert_eq!(m.deps[1].name, "dora-soc");
        assert!(m.deps[2].dev);
        assert_eq!(m.normal_deps().count(), 2);
    }

    #[test]
    fn virtual_manifest_is_none() {
        assert!(parse_manifest("Cargo.toml", "[workspace]\nmembers = []\n").is_none());
    }
}
