//! `map-determinism` — export/serialization code must not iterate
//! hash-seeded collections.
//!
//! `HashMap`/`HashSet` iteration order varies run to run, so any CSV/JSON
//! row order derived from one silently breaks bit-reproducibility — the
//! property the campaign's accuracy claims rest on. Files reachable from
//! the export pipeline (listed under `[determinism] export_paths` in
//! `xtask.toml`) must use `BTreeMap`/`BTreeSet` or sort explicitly.

use crate::diag::{Diagnostic, Span};
use crate::source::blank_strings;
use crate::Context;

/// The pass. See the module docs.
pub struct MapDeterminism;

/// `(1-based line, 1-based column, type name)` of hash-collection
/// mentions in stripped, string-blanked library code.
pub fn hash_collection_sites(stripped: &str) -> Vec<(usize, usize, &'static str)> {
    let blanked = blank_strings(stripped);
    let mut out = Vec::new();
    for (i, line) in blanked.lines().enumerate() {
        for name in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(idx) = line[from..].find(name) {
                let at = from + idx;
                // Reject identifier continuations (`FxHashMap`, `HashMapExt`).
                let before_ok = at == 0
                    || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && line.as_bytes()[at - 1] != b'_';
                let end = at + name.len();
                let after_ok = end >= line.len()
                    || !line.as_bytes()[end].is_ascii_alphanumeric()
                        && line.as_bytes()[end] != b'_';
                if before_ok && after_ok {
                    out.push((i + 1, at + 1, name));
                }
                from = end;
            }
        }
    }
    out.sort_unstable();
    out
}

impl super::Pass for MapDeterminism {
    fn id(&self) -> &'static str {
        "map-determinism"
    }

    fn description(&self) -> &'static str {
        "export/serialization code must not use hash-seeded collections"
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            if !cx
                .config
                .determinism_paths
                .iter()
                .any(|p| file.rel.starts_with(p.as_str()))
            {
                continue;
            }
            for (line, column, name) in hash_collection_sites(&file.stripped) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::at(&file.rel, line, column),
                        format!(
                            "`{name}` in export-reachable code: iteration order is \
                             nondeterministic"
                        ),
                    )
                    .with_help("use BTreeMap/BTreeSet, or collect and sort before serializing"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;
    use crate::Config;

    const FIXTURE: &str = r#"
use std::collections::HashMap;

pub fn export(rows: &HashMap<String, f64>) -> String {
    rows.iter().map(|(k, v)| format!("{k},{v}\n")).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
}
"#;

    #[test]
    fn hash_collections_in_export_paths_are_flagged() {
        let cx = Context {
            files: vec![SourceFile::new("crates/campaign/src/export.rs", FIXTURE)],
            config: Config::from_toml(
                "[determinism]\nexport_paths = [\"crates/campaign/src/export.rs\"]\n",
            )
            .expect("config"),
            ..Context::default()
        };
        let diags = MapDeterminism.run(&cx);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(
            diags[0].span,
            Span::at("crates/campaign/src/export.rs", 2, 23)
        );
        assert!(diags[0].message.contains("HashMap"));
    }

    #[test]
    fn test_modules_and_out_of_scope_files_are_exempt() {
        let cx = Context {
            files: vec![SourceFile::new("crates/cli/src/args.rs", FIXTURE)],
            config: Config::from_toml("[determinism]\nexport_paths = [\"crates/campaign/\"]\n")
                .expect("config"),
            ..Context::default()
        };
        assert!(MapDeterminism.run(&cx).is_empty());
    }

    #[test]
    fn prefix_scoping_covers_fig_modules() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/experiments/src/fig08.rs",
                "pub struct R {\n    pub m: std::collections::HashMap<String, f64>,\n}\n",
            )],
            config: Config::from_toml(
                "[determinism]\nexport_paths = [\"crates/experiments/src/fig\"]\n",
            )
            .expect("config"),
            ..Context::default()
        };
        let diags = MapDeterminism.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn identifier_continuations_and_strings_do_not_match() {
        let sites = hash_collection_sites(
            "let a = FxHashMap::default();\nlet b = \"HashMap\";\nstruct HashMapExt;\n",
        );
        assert!(sites.is_empty(), "{sites:?}");
    }
}
