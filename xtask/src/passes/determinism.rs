//! `map-determinism` — export/serialization code must not iterate
//! hash-seeded collections.
//!
//! `HashMap`/`HashSet` iteration order varies run to run, so any CSV/JSON
//! row order derived from one silently breaks bit-reproducibility — the
//! property the campaign's accuracy claims rest on. Files reachable from
//! the export pipeline (listed under `[determinism] export_paths` in
//! `xtask.toml`) must use `BTreeMap`/`BTreeSet` or sort explicitly.
//!
//! This is the *per-file* ban on the export files themselves; the
//! `determinism-taint` pass extends the same property through the call
//! graph to everything those files reach.

use crate::diag::{Diagnostic, Span};
use crate::lex::{LineIndex, TokenKind};
use crate::source::SourceFile;
use crate::Context;

/// The pass. See the module docs.
pub struct MapDeterminism;

/// `(1-based line, 1-based column, type name)` of hash-collection
/// mentions in non-test library code.
///
/// Token-level: only whole identifiers count (`FxHashMap` and
/// `HashMapExt` are different tokens), and comments, strings, and
/// `#[cfg(test)]` items never match.
pub fn hash_collection_sites(file: &SourceFile) -> Vec<(usize, usize, &'static str)> {
    let src = file.text.as_str();
    let index = LineIndex::new(src);
    let in_cfg_test = |lo: usize| {
        file.items
            .cfg_test_spans
            .iter()
            .any(|&(a, b)| a <= lo && lo < b)
    };
    let mut out = Vec::new();
    for tok in &file.tokens {
        if tok.kind != TokenKind::Ident || in_cfg_test(tok.lo) {
            continue;
        }
        for name in ["HashMap", "HashSet"] {
            if tok.text(src) == name {
                let (line, col) = index.line_col(tok.lo);
                out.push((line, col, name));
            }
        }
    }
    out.sort_unstable();
    out
}

impl super::Pass for MapDeterminism {
    fn id(&self) -> &'static str {
        "map-determinism"
    }

    fn description(&self) -> &'static str {
        "export/serialization code must not use hash-seeded collections"
    }

    fn explain(&self) -> &'static str {
        "Bans hash-seeded collections (`HashMap`, `HashSet`) in the\n\
         configured export/serialization paths: their iteration order\n\
         varies run to run, so golden files and exported reports stop\n\
         being byte-stable. Use `BTreeMap`/`BTreeSet` (or sort before\n\
         emitting) in export code.\n\
         \n\
         Config (`xtask.toml`):\n\
           [determinism]\n\
           export_paths = [\"crates/campaign/src/export.rs\"]  # prefixes\n\
         See also `determinism-taint`, which follows the call graph out\n\
         of these paths."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            if !cx
                .config
                .determinism_paths
                .iter()
                .any(|p| file.rel.starts_with(p.as_str()))
            {
                continue;
            }
            for (line, column, name) in hash_collection_sites(file) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::at(&file.rel, line, column),
                        format!(
                            "`{name}` in export-reachable code: iteration order is \
                             nondeterministic"
                        ),
                    )
                    .with_help("use BTreeMap/BTreeSet, or collect and sort before serializing"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;
    use crate::Config;

    const FIXTURE: &str = r#"
use std::collections::HashMap;

pub fn export(rows: &HashMap<String, f64>) -> String {
    rows.iter().map(|(k, v)| format!("{k},{v}\n")).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
}
"#;

    #[test]
    fn hash_collections_in_export_paths_are_flagged() {
        let cx = Context {
            files: vec![SourceFile::new("crates/campaign/src/export.rs", FIXTURE)],
            config: Config::from_toml(
                "[determinism]\nexport_paths = [\"crates/campaign/src/export.rs\"]\n",
            )
            .expect("config"),
            ..Context::default()
        };
        let diags = MapDeterminism.run(&cx);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(
            diags[0].span,
            Span::at("crates/campaign/src/export.rs", 2, 23)
        );
        assert!(diags[0].message.contains("HashMap"));
    }

    #[test]
    fn test_modules_and_out_of_scope_files_are_exempt() {
        let cx = Context {
            files: vec![SourceFile::new("crates/cli/src/args.rs", FIXTURE)],
            config: Config::from_toml("[determinism]\nexport_paths = [\"crates/campaign/\"]\n")
                .expect("config"),
            ..Context::default()
        };
        assert!(MapDeterminism.run(&cx).is_empty());
    }

    #[test]
    fn prefix_scoping_covers_fig_modules() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/experiments/src/fig08.rs",
                "pub struct R {\n    pub m: std::collections::HashMap<String, f64>,\n}\n",
            )],
            config: Config::from_toml(
                "[determinism]\nexport_paths = [\"crates/experiments/src/fig\"]\n",
            )
            .expect("config"),
            ..Context::default()
        };
        let diags = MapDeterminism.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn identifier_continuations_and_strings_do_not_match() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "fn f() {\n    let a = FxHashMap::default();\n    let b = \"HashMap\";\n    let c = r#\"HashSet\"#;\n    let _ = (a, b, c);\n}\nstruct HashMapExt;\n",
        );
        let sites = hash_collection_sites(&file);
        assert!(sites.is_empty(), "{sites:?}");
    }
}
