//! `dvfs-guard` — the MSM8974 frequency/voltage table keeps its
//! compile-time sorted/deduplicated assertion, so a corrupted table edit
//! fails `cargo build`, not a campaign three layers up.

use crate::diag::{Diagnostic, Span};
use crate::Context;

/// The pass. See the module docs.
pub struct DvfsGuard;

/// The file that must carry the guard.
pub const DVFS_FILE: &str = "crates/soc/src/dvfs.rs";

/// Whether the DVFS table source keeps its const-eval validity guard.
pub fn dvfs_guard_present(source: &str) -> bool {
    source.contains("const _: () = assert!(") && source.contains("khz_mv_table_is_valid")
}

impl super::Pass for DvfsGuard {
    fn id(&self) -> &'static str {
        "dvfs-guard"
    }

    fn description(&self) -> &'static str {
        "the DVFS table keeps its const-eval sorted/deduplicated assertion"
    }

    fn explain(&self) -> &'static str {
        "Checks that the DVFS operating-point table keeps its compile-time\n\
         guard: the `const`-evaluated assertion that the table is sorted\n\
         by frequency and free of duplicates. Losing the guard lets an\n\
         edited table silently break the governors' binary searches.\n\
         \n\
         Config: none; the generic `[levels]` / `[allow]` policy applies."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let Some(file) = cx.files.iter().find(|f| f.rel == DVFS_FILE) else {
            return vec![Diagnostic::error(
                self.id(),
                Span::file(DVFS_FILE),
                "the DVFS table module is gone",
            )];
        };
        if dvfs_guard_present(&file.text) {
            Vec::new()
        } else {
            vec![Diagnostic::error(
                self.id(),
                Span::file(DVFS_FILE),
                "the DVFS table's const-eval sorted/deduplicated guard is gone",
            )
            .with_help(
                "restore `const _: () = assert!(khz_mv_table_is_valid(..))` next to the table",
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn dvfs_guard_detector() {
        let ok = "const _: () = assert!(\n    khz_mv_table_is_valid(&T),\n    \"msg\"\n);";
        assert!(dvfs_guard_present(ok));
        assert!(!dvfs_guard_present(
            "pub const T: [(u64, u32); 1] = [(1, 1)];"
        ));
    }

    #[test]
    fn missing_guard_and_missing_file_are_findings() {
        let cx = Context {
            files: vec![SourceFile::new(DVFS_FILE, "pub const T: u8 = 1;\n")],
            ..Context::default()
        };
        assert_eq!(DvfsGuard.run(&cx).len(), 1);
        assert_eq!(DvfsGuard.run(&Context::default()).len(), 1);
    }
}
