//! `paper-constants` — hard-coded physical/model constants carry
//! provenance.
//!
//! Two complementary rules keep the paper's numbers auditable:
//!
//! 1. **Designated constants modules** (`[constants] modules` in
//!    `xtask.toml` — the DVFS table, the power model, the overhead
//!    budget) may hold numeric `const`/`static` items, but each must cite
//!    its source with a `paper:` comment (doc comment or trailing `//`).
//! 2. **Everywhere else**, a float-literal audit flags non-trivial float
//!    values in `const`/`static` initializers: a magic `0.22` belongs in
//!    a constants module with a citation, not inline. Structural values
//!    (`0.0`, `1.0`, `1024.0`, …) are exempted via `[constants] trivial`.
//!
//! The audit walks the [`crate::items`] const items and their
//! initializer token ranges, so only the initializer (never array
//! lengths in the type annotation, never comments or strings) is
//! scanned.

use crate::diag::{Diagnostic, Span};
use crate::lex::{literal_value, LineIndex, TokenKind};
use crate::source::SourceFile;
use crate::Context;

/// The pass. See the module docs.
pub struct PaperConstants;

/// Whether the raw source cites a paper reference for the item spanning
/// `line..=end_line` (1-based): a `paper:` marker in the contiguous
/// comment / attribute block above, or trailing on one of the item's own
/// lines.
pub fn has_citation(raw: &SourceFile, line: usize, end_line: usize) -> bool {
    let lines: Vec<&str> = raw.text.lines().collect();
    // Walk up through the doc/comment/attribute block.
    let mut i = line.saturating_sub(1);
    while i > 0 {
        let above = lines.get(i - 1).map_or("", |l| l.trim_start());
        if above.starts_with("//") || above.starts_with("#[") || above.starts_with("#!") {
            if above.contains("paper:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    // Trailing comments on the item's own lines.
    for l in lines
        .iter()
        .skip(line.saturating_sub(1))
        .take(end_line.saturating_sub(line) + 1)
    {
        if let Some(idx) = l.find("//") {
            if l[idx..].contains("paper:") {
                return true;
            }
        }
    }
    false
}

impl super::Pass for PaperConstants {
    fn id(&self) -> &'static str {
        "paper-constants"
    }

    fn description(&self) -> &'static str {
        "model constants live in designated modules and cite the paper"
    }

    fn explain(&self) -> &'static str {
        "Keeps the paper's model constants auditable: non-trivial float\n\
         literals may appear only in the designated constants modules,\n\
         and every constant there must cite its source with a\n\
         `// paper: <section/table/equation>` comment. A magic float\n\
         elsewhere either moves into a constants module or joins the\n\
         trivial list.\n\
         \n\
         Config (`xtask.toml`):\n\
           [constants]\n\
           modules = [\"crates/soc/src/dvfs.rs\"]   # designated modules\n\
           trivial = [0.0, 1.0, 1024.0]           # structural values\n\
         Justification: the `// paper:` citation itself."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            let designated = cx.config.constants_modules.contains(&file.rel);
            if file.items.consts.is_empty() {
                continue;
            }
            let index = LineIndex::new(&file.text);
            for item in file.items.consts.iter().filter(|c| !c.in_test) {
                // Numeric literals in the initializer token range. A
                // tuple-index `x.0` lexes as an Int after a `.` and is a
                // projection, not a value.
                let mut floats: Vec<(usize, usize, String, f64)> = Vec::new();
                let mut has_numeric = false;
                for i in item.init.0..item.init.1.min(file.tokens.len()) {
                    let tok = &file.tokens[i];
                    let after_dot = file.tokens[..i]
                        .iter()
                        .rev()
                        .find(|t| !t.kind.is_trivia())
                        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(&file.text) == ".");
                    match tok.kind {
                        TokenKind::Int if !after_dot => has_numeric = true,
                        TokenKind::Float if !after_dot => {
                            has_numeric = true;
                            let text = tok.text(&file.text);
                            if let Some(value) = literal_value(text) {
                                let (line, col) = index.line_col(tok.lo);
                                floats.push((line, col, text.to_string(), value));
                            }
                        }
                        _ => {}
                    }
                }
                if designated {
                    if has_numeric && !has_citation(file, item.line, item.end_line) {
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                Span::line(&file.rel, item.line),
                                format!(
                                    "constant `{}` in a designated constants module lacks \
                                     a `paper:` citation",
                                    item.name
                                ),
                            )
                            .with_help(
                                "add a `// paper: <section/table/equation>` comment \
                                 documenting where the value comes from",
                            ),
                        );
                    }
                } else {
                    for &(line, column, ref text, value) in &floats {
                        if cx.config.is_trivial_float(value) {
                            continue;
                        }
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                Span::at(&file.rel, line, column),
                                format!(
                                    "hard-coded model constant `{text}` in `{}` outside a \
                                     designated constants module",
                                    item.name
                                ),
                            )
                            .with_help(
                                "move it to a module listed under [constants] modules in \
                                 xtask/xtask.toml with a `// paper:` citation, or add the \
                                 value to [constants] trivial if it is structural",
                            ),
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::Config;

    const DESIGNATED: &str = r#"
/// The table. paper: Table II (MSM8974 OPPs).
pub const TABLE: [(u64, u32); 2] = [
    (300_000, 800),
    (422_400, 810),
];

/// Uncited numeric constant.
pub const K1: f64 = 0.22;

/// No numerics, no citation needed.
pub const NAME: &str = "msm8974";
"#;

    fn config() -> Config {
        Config::from_toml(
            "[constants]\nmodules = [\"crates/soc/src/power.rs\"]\ntrivial = [0.0, 1.0]\n",
        )
        .expect("config")
    }

    #[test]
    fn uncited_constant_in_designated_module_is_flagged() {
        let cx = Context {
            files: vec![SourceFile::new("crates/soc/src/power.rs", DESIGNATED)],
            config: config(),
            ..Context::default()
        };
        let diags = PaperConstants.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`K1`"));
        assert_eq!(diags[0].span.line, 9);
    }

    #[test]
    fn const_fn_is_not_an_item() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/soc/src/dvfs.rs",
                "pub const fn from_khz(khz: u64) -> u64 {\n    khz * 3\n}\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }

    #[test]
    fn magic_float_const_outside_designated_module_is_flagged() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/governors/src/lib.rs",
                "const UP_THRESHOLD: f64 = 0.85;\nconst UNITY: f64 = 1.0;\n",
            )],
            config: config(),
            ..Context::default()
        };
        let diags = PaperConstants.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("0.85"));
        assert!(diags[0].span.column > 0);
    }

    #[test]
    fn trailing_citation_counts() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/soc/src/power.rs",
                "pub const K1: f64 = 0.22; // paper: Eq. 5\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }

    #[test]
    fn array_lengths_in_types_are_structure_not_physics() {
        // The `2` in `[(u64, u32); 2]` is in the type annotation, not
        // the initializer: a designated module still needs the citation
        // because of the element values, but an empty-init const with
        // only a typed length is not numeric.
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/governors/src/lib.rs",
                "pub const EMPTY: [f64; 4] = [0.0, 0.0, 0.0, 0.0];\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }

    #[test]
    fn floats_in_strings_and_comments_are_invisible() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/governors/src/lib.rs",
                "const LABEL: &str = \"k = 0.85\"; // tune 0.9 later\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }

    #[test]
    fn inline_floats_in_functions_are_not_audited() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/modeling/src/leakage.rs",
                "fn f(x: f64) -> f64 {\n    x.max(1e-12) * 0.3\n}\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }
}
