//! `paper-constants` — hard-coded physical/model constants carry
//! provenance.
//!
//! Two complementary rules keep the paper's numbers auditable:
//!
//! 1. **Designated constants modules** (`[constants] modules` in
//!    `xtask.toml` — the DVFS table, the power model, the overhead
//!    budget) may hold numeric `const`/`static` items, but each must cite
//!    its source with a `paper:` comment (doc comment or trailing `//`).
//! 2. **Everywhere else**, a float-literal audit flags non-trivial float
//!    values in `const`/`static` initializers: a magic `0.22` belongs in
//!    a constants module with a citation, not inline. Structural values
//!    (`0.0`, `1.0`, `1024.0`, …) are exempted via `[constants] trivial`.

use crate::diag::{Diagnostic, Span};
use crate::source::{blank_strings, float_literals, SourceFile};
use crate::Context;

/// The pass. See the module docs.
pub struct PaperConstants;

/// One `const`/`static` item found in stripped source.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstItem {
    /// 1-based line of the declaration.
    pub line: usize,
    /// The item name (`_` for anonymous const assertions).
    pub name: String,
    /// Float literals in the initializer: `(line, column, text, value)`.
    pub floats: Vec<(usize, usize, String, f64)>,
    /// Whether the initializer contains any numeric literal at all.
    pub has_numeric: bool,
}

fn decl_name(trimmed: &str) -> Option<String> {
    let rest = trimmed
        .strip_prefix("pub ")
        .or_else(|| trimmed.strip_prefix("pub(crate) "))
        .unwrap_or(trimmed);
    let rest = rest
        .strip_prefix("const ")
        .or_else(|| rest.strip_prefix("static "))?;
    // `const fn` / `static ref` style declarations are not items we audit.
    if rest.starts_with("fn ") || rest.starts_with("unsafe ") || rest.starts_with("mut ") {
        return None;
    }
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn bracket_depth_delta(line: &str) -> i64 {
    let mut delta = 0;
    for c in line.chars() {
        match c {
            '(' | '[' | '{' => delta += 1,
            ')' | ']' | '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

fn has_int_literal(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let glued = i > 0
                && (bytes[i - 1].is_ascii_alphanumeric()
                    || bytes[i - 1] == b'_'
                    || bytes[i - 1] == b'.');
            if !glued {
                return true;
            }
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    false
}

/// Extracts `const`/`static` items (with their initializer literals) from
/// a stripped source file.
pub fn const_items(stripped: &str) -> Vec<ConstItem> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        let Some(name) = decl_name(trimmed) else {
            i += 1;
            continue;
        };
        let start = i;
        let mut depth = 0i64;
        let mut floats = Vec::new();
        let mut has_numeric = false;
        let mut seen_eq = false;
        loop {
            let line = lines.get(i).copied().unwrap_or("");
            let blanked = blank_strings(line);
            // Only the initializer (after `=`) is audited; array lengths
            // in the type annotation are structure, not physics.
            let audit_from = if seen_eq {
                0
            } else if let Some(eq) = blanked.find('=') {
                seen_eq = true;
                eq + 1
            } else {
                blanked.len()
            };
            let audited = &blanked[audit_from..];
            for (col, text, value) in float_literals(audited) {
                floats.push((i + 1, audit_from + col, text, value));
                has_numeric = true;
            }
            if has_int_literal(audited) {
                has_numeric = true;
            }
            depth += bracket_depth_delta(&blanked);
            let done = depth <= 0 && blanked.trim_end().ends_with(';');
            i += 1;
            if done || i >= lines.len() || i - start > 200 {
                break;
            }
        }
        items.push(ConstItem {
            line: start + 1,
            name,
            floats,
            has_numeric,
        });
    }
    items
}

/// Whether the raw source cites a paper reference for the item starting
/// at `line` (1-based): a `paper:` marker in the contiguous comment /
/// attribute block above, or trailing on one of the item's own lines.
pub fn has_citation(raw: &SourceFile, line: usize, end_line: usize) -> bool {
    let lines: Vec<&str> = raw.text.lines().collect();
    // Walk up through the doc/comment/attribute block.
    let mut i = line.saturating_sub(1);
    while i > 0 {
        let above = lines.get(i - 1).map_or("", |l| l.trim_start());
        if above.starts_with("//") || above.starts_with("#[") || above.starts_with("#!") {
            if above.contains("paper:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    // Trailing comments on the item's own lines.
    for l in lines
        .iter()
        .skip(line.saturating_sub(1))
        .take(end_line.saturating_sub(line) + 1)
    {
        if let Some(idx) = l.find("//") {
            if l[idx..].contains("paper:") {
                return true;
            }
        }
    }
    false
}

impl super::Pass for PaperConstants {
    fn id(&self) -> &'static str {
        "paper-constants"
    }

    fn description(&self) -> &'static str {
        "model constants live in designated modules and cite the paper"
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            let designated = cx.config.constants_modules.contains(&file.rel);
            let items = const_items(&file.stripped);
            for item in &items {
                let end_line = item
                    .floats
                    .last()
                    .map_or(item.line, |&(l, _, _, _)| l)
                    .max(item.line);
                if designated {
                    if item.has_numeric && !has_citation(file, item.line, end_line + 1) {
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                Span::line(&file.rel, item.line),
                                format!(
                                    "constant `{}` in a designated constants module lacks \
                                     a `paper:` citation",
                                    item.name
                                ),
                            )
                            .with_help(
                                "add a `// paper: <section/table/equation>` comment \
                                 documenting where the value comes from",
                            ),
                        );
                    }
                } else {
                    for &(line, column, ref text, value) in &item.floats {
                        if cx.config.is_trivial_float(value) {
                            continue;
                        }
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                Span::at(&file.rel, line, column),
                                format!(
                                    "hard-coded model constant `{text}` in `{}` outside a \
                                     designated constants module",
                                    item.name
                                ),
                            )
                            .with_help(
                                "move it to a module listed under [constants] modules in \
                                 xtask/xtask.toml with a `// paper:` citation, or add the \
                                 value to [constants] trivial if it is structural",
                            ),
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::Config;

    const DESIGNATED: &str = r#"
/// The table. paper: Table II (MSM8974 OPPs).
pub const TABLE: [(u64, u32); 2] = [
    (300_000, 800),
    (422_400, 810),
];

/// Uncited numeric constant.
pub const K1: f64 = 0.22;

/// No numerics, no citation needed.
pub const NAME: &str = "msm8974";
"#;

    fn config() -> Config {
        Config::from_toml(
            "[constants]\nmodules = [\"crates/soc/src/power.rs\"]\ntrivial = [0.0, 1.0]\n",
        )
        .expect("config")
    }

    #[test]
    fn const_item_extraction_sees_multiline_arrays() {
        let items = const_items(&crate::source::library_code(DESIGNATED));
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "TABLE");
        assert!(items[0].has_numeric);
        assert_eq!(items[1].name, "K1");
        assert_eq!(items[1].floats.len(), 1);
        assert!(!items[2].has_numeric);
    }

    #[test]
    fn const_fn_is_not_an_item() {
        assert!(
            const_items("pub const fn from_khz(khz: u64) -> Self {\n    Self(khz)\n}\n").is_empty()
        );
    }

    #[test]
    fn uncited_constant_in_designated_module_is_flagged() {
        let cx = Context {
            files: vec![SourceFile::new("crates/soc/src/power.rs", DESIGNATED)],
            config: config(),
            ..Context::default()
        };
        let diags = PaperConstants.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`K1`"));
        assert_eq!(diags[0].span.line, 9);
    }

    #[test]
    fn magic_float_const_outside_designated_module_is_flagged() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/governors/src/lib.rs",
                "const UP_THRESHOLD: f64 = 0.85;\nconst UNITY: f64 = 1.0;\n",
            )],
            config: config(),
            ..Context::default()
        };
        let diags = PaperConstants.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("0.85"));
        assert!(diags[0].span.column > 0);
    }

    #[test]
    fn trailing_citation_counts() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/soc/src/power.rs",
                "pub const K1: f64 = 0.22; // paper: Eq. 5\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }

    #[test]
    fn inline_floats_in_functions_are_not_audited() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/modeling/src/leakage.rs",
                "fn f(x: f64) -> f64 {\n    x.max(1e-12) * 0.3\n}\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(PaperConstants.run(&cx).is_empty());
    }
}
