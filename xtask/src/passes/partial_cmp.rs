//! `partial-cmp` — float ordering goes through `f64::total_cmp`, which
//! cannot panic on NaN. Crates not yet migrated are allowlisted under
//! `[allow] partial-cmp` in `xtask.toml`.

use crate::diag::{Diagnostic, Span};
use crate::Context;

/// The pass. See the module docs.
pub struct PartialCmp;

/// `(1-based line, 1-based column)` of `partial_cmp` calls in stripped
/// library code.
pub fn partial_cmp_sites(stripped: &str) -> Vec<(usize, usize)> {
    let needle = ".partial_cmp(";
    let mut out = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        let mut from = 0;
        while let Some(idx) = line[from..].find(needle) {
            out.push((i + 1, from + idx + 2)); // column of the `p`
            from += idx + needle.len();
        }
    }
    out
}

impl super::Pass for PartialCmp {
    fn id(&self) -> &'static str {
        "partial-cmp"
    }

    fn description(&self) -> &'static str {
        "float ordering must use f64::total_cmp, not partial_cmp"
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            for (line, column) in partial_cmp_sites(&file.stripped) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::at(&file.rel, line, column),
                        "partial_cmp on floats can surface NaN panics",
                    )
                    .with_help("use f64::total_cmp"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::{library_code, SourceFile};

    #[test]
    fn partial_cmp_is_flagged_with_column() {
        let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        assert_eq!(partial_cmp_sites(&library_code(src)), vec![(2, 24)]);
    }

    #[test]
    fn pass_reports_span() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/x/src/lib.rs",
                "fn f(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).is_some()\n}\n",
            )],
            ..Context::default()
        };
        let diags = PartialCmp.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::at("crates/x/src/lib.rs", 2, 7));
    }
}
