//! `partial-cmp` — float ordering goes through `f64::total_cmp`, which
//! cannot panic on NaN. Crates not yet migrated are allowlisted under
//! `[allow] partial-cmp` in `xtask.toml`.
//!
//! Token-level: only a real `.partial_cmp(` method call counts — the
//! name in a comment, doc example, or string literal never trips it.

use crate::diag::{Diagnostic, Span};
use crate::lex::{LineIndex, TokenKind};
use crate::source::SourceFile;
use crate::Context;

/// The pass. See the module docs.
pub struct PartialCmp;

/// `(1-based line, 1-based column)` of `.partial_cmp(` call sites.
pub fn partial_cmp_sites(file: &SourceFile) -> Vec<(usize, usize)> {
    let src = file.text.as_str();
    let index = LineIndex::new(src);
    let code: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| !file.tokens[i].kind.is_trivia())
        .collect();
    let mut out = Vec::new();
    let in_cfg_test = |lo: usize| {
        file.items
            .cfg_test_spans
            .iter()
            .any(|&(a, b)| a <= lo && lo < b)
    };
    for (pos, &i) in code.iter().enumerate() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident || tok.text(src) != "partial_cmp" || in_cfg_test(tok.lo) {
            continue;
        }
        let punct = |p: usize, s: &str| {
            code.get(p).is_some_and(|&j| {
                file.tokens[j].kind == TokenKind::Punct && file.tokens[j].text(src) == s
            })
        };
        if pos > 0 && punct(pos - 1, ".") && punct(pos + 1, "(") {
            out.push(index.line_col(tok.lo));
        }
    }
    out
}

impl super::Pass for PartialCmp {
    fn id(&self) -> &'static str {
        "partial-cmp"
    }

    fn description(&self) -> &'static str {
        "float ordering must use f64::total_cmp, not partial_cmp"
    }

    fn explain(&self) -> &'static str {
        "Flags `partial_cmp` on floats in library code: a NaN anywhere in\n\
         the data turns `partial_cmp(..).unwrap()` into a panic and\n\
         sort-by-partial_cmp into an inconsistent order. Use\n\
         `f64::total_cmp`, which is a total order over every bit pattern\n\
         and keeps campaign reductions deterministic.\n\
         \n\
         Config: none of its own; the generic `[levels]` / `[allow]`\n\
         policy applies."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            for (line, column) in partial_cmp_sites(file) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::at(&file.rel, line, column),
                        "partial_cmp on floats can surface NaN panics",
                    )
                    .with_help("use f64::total_cmp"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;

    #[test]
    fn partial_cmp_is_flagged_with_column() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        );
        assert_eq!(partial_cmp_sites(&file), vec![(2, 24)]);
    }

    #[test]
    fn comments_strings_and_tests_do_not_count() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "/// Avoid `.partial_cmp(x)` here.\nfn f() {\n    let s = \"a.partial_cmp(b)\";\n    let _ = s;\n}\n\n#[cfg(test)]\nmod tests {\n    fn t(a: f64, b: f64) {\n        let _ = a.partial_cmp(&b);\n    }\n}\n",
        );
        assert!(partial_cmp_sites(&file).is_empty());
    }

    #[test]
    fn pass_reports_span() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/x/src/lib.rs",
                "fn f(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).is_some()\n}\n",
            )],
            ..Context::default()
        };
        let diags = PartialCmp.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::at("crates/x/src/lib.rs", 2, 7));
    }
}
