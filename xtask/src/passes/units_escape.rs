//! `units-escape` — raw `f64`s must not cross the typed-units boundary
//! in the physics crates.
//!
//! Two rules over the item tree and call graph, scoped to
//! `[units-escape] boundary_paths` (the `soc` / `governors` /
//! `modeling` / `sim-core` sources):
//!
//! 1. **Signatures**: a `pub fn` taking an `f64` parameter whose name
//!    carries a raw unit suffix (`freq_mhz`, `dt_s`, …), or returning
//!    `f64` while itself being unit-suffix-named, is leaking a
//!    dimensioned quantity untyped. Use the `dora_sim_core::units`
//!    newtypes.
//! 2. **Dataflow**: a function projecting a raw value out of a unit
//!    newtype (`.value()` / `.0` / `as_mhz()`-style accessors) and
//!    returning `f64` is a *leak*; any `pub fn` returning `f64` that
//!    reaches a leak through the call graph is flagged, with the chain.
//!
//! The unit newtypes themselves (declared in `[units-escape]
//! unit_types`, since the types are macro-generated and invisible to
//! item extraction) are the sanctioned escape hatch: their impls are
//! exempt, and a `// units:` justification comment on the declaration
//! (or the line above) exempts an individual function — e.g. an FFI-ish
//! boundary that genuinely must speak scalar.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Span};
use crate::lex::TokenKind;
use crate::Context;

/// The pass. See the module docs.
pub struct UnitsEscape;

/// Raw unit suffixes that name a dimensioned quantity. Shared with the
/// `unit-suffix` field lint; `_per_` compound names are ratios and
/// exempt.
pub const BANNED_SUFFIXES: [&str; 14] = [
    "_mhz", "_ghz", "_khz", "_hz", "_ms", "_ns", "_us", "_s", "_mw", "_w", "_j", "_c", "_k",
    "_mpki",
];

/// Whether `name` carries a banned raw unit suffix.
pub fn has_unit_suffix(name: &str) -> bool {
    !name.contains("_per_") && BANNED_SUFFIXES.iter().any(|s| name.ends_with(s))
}

fn is_f64(ty: &str) -> bool {
    matches!(ty.trim_start_matches('&'), "f64" | "mut f64")
}

/// Whether the declaration at `line` (1-based) carries a `// units:`
/// justification — trailing on the line or in the comment block above.
fn justified(text: &str, line: usize) -> bool {
    let lines: Vec<&str> = text.lines().collect();
    let mut i = line.saturating_sub(1);
    if lines
        .get(i)
        .and_then(|l| l.find("//").map(|idx| &l[idx..]))
        .is_some_and(|c| c.contains("units:"))
    {
        return true;
    }
    while i > 0 {
        let above = lines.get(i - 1).map_or("", |l| l.trim_start());
        if above.starts_with("//") || above.starts_with("#[") {
            if above.contains("units:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

impl super::Pass for UnitsEscape {
    fn id(&self) -> &'static str {
        "units-escape"
    }

    fn description(&self) -> &'static str {
        "raw f64 must not cross the typed-units boundary in physics crates"
    }

    fn explain(&self) -> &'static str {
        "Audits declarations in the typed-units boundary crates: public\n\
         functions there must not take or return raw `f64` where a\n\
         `dora_sim_core::units` newtype exists, and unit-newtype methods\n\
         must not hand the raw scalar back out except through the\n\
         sanctioned accessors.\n\
         \n\
         Config (`xtask.toml`):\n\
           [units-escape]\n\
           boundary_paths = [\"crates/soc/\"]       # path prefixes audited\n\
           unit_types = [\"Seconds\", \"Watts\", …]  # the newtype vocabulary\n\
         Justification: `// units: <reason>` on the declaration line or in\n\
         the comment block directly above it."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let boundary = |rel: &str| {
            cx.config
                .units_boundary_paths
                .iter()
                .any(|p| rel.starts_with(p.as_str()))
        };
        if cx.config.units_boundary_paths.is_empty() {
            return Vec::new();
        }
        let graph = CallGraph::build(cx);
        let is_unit_ty = |ty: &Option<String>| {
            ty.as_deref()
                .is_some_and(|t| cx.config.unit_types.iter().any(|u| u == t))
        };

        // Leak set: functions whose bodies project a raw scalar out of a
        // unit type and return f64.
        let leak_methods: Vec<String> = std::iter::once("value".to_string())
            .chain(BANNED_SUFFIXES.iter().map(|s| format!("as{s}")))
            .collect();
        let mut leaks: Vec<usize> = Vec::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            if node.item.in_test || !is_f64(&node.item.ret) || is_unit_ty(&node.item.self_ty) {
                continue;
            }
            let Some((body_lo, body_hi)) = node.item.body else {
                continue;
            };
            let file = &cx.files[node.file];
            let src = file.text.as_str();
            let code: Vec<usize> = (body_lo..body_hi.min(file.tokens.len()))
                .filter(|&i| !file.tokens[i].kind.is_trivia())
                .collect();
            let projects = code.iter().enumerate().any(|(pos, &i)| {
                let tok = &file.tokens[i];
                let prev_dot = pos > 0
                    && code.get(pos - 1).is_some_and(|&j| {
                        file.tokens[j].kind == TokenKind::Punct && file.tokens[j].text(src) == "."
                    });
                if !prev_dot {
                    return false;
                }
                match tok.kind {
                    // `.0` tuple projection.
                    TokenKind::Int => tok.text(src) == "0",
                    TokenKind::Ident => leak_methods.iter().any(|m| m == tok.text(src)),
                    _ => false,
                }
            });
            if projects {
                leaks.push(idx);
            }
        }
        let leak_reach = graph.backward(&leaks);

        let mut out = Vec::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            if node.item.in_test
                || node.item.vis != crate::items::Vis::Pub
                || !boundary(&node.rel)
                || is_unit_ty(&node.item.self_ty)
            {
                continue;
            }
            let file = &cx.files[node.file];
            if justified(&file.text, node.item.line) {
                continue;
            }
            let qual = node.item.qual.as_str();
            // Rule 1a: unit-suffixed f64 parameters.
            for (pname, pty) in &node.item.params {
                if is_f64(pty) && has_unit_suffix(pname) {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            Span::line(&node.rel, node.item.line),
                            format!(
                                "`{qual}` takes raw `{pname}: f64` across the typed-units \
                                 boundary"
                            ),
                        )
                        .with_help(
                            "take a dora_sim_core::units newtype instead, or justify with \
                             a `// units:` comment",
                        ),
                    );
                }
            }
            // Rule 1b: unit-suffixed fn returning raw f64.
            if is_f64(&node.item.ret) && has_unit_suffix(&node.item.name) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&node.rel, node.item.line),
                        format!("`{qual}` returns a raw unit-suffixed `f64`"),
                    )
                    .with_help(
                        "return a dora_sim_core::units newtype instead, or justify with a \
                         `// units:` comment",
                    ),
                );
                continue;
            }
            // Rule 2: pub f64-returning fn reaching a projection leak.
            if is_f64(&node.item.ret) && leak_reach.contains(idx) {
                let chain = leak_reach
                    .path_to(idx)
                    .map(|mut p| {
                        p.reverse();
                        graph.render_path(&p)
                    })
                    .unwrap_or_else(|| qual.to_string());
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&node.rel, node.item.line),
                        format!(
                            "`{qual}` returns `f64` unwrapped from a unit newtype \
                             (projection chain: `{chain}`)"
                        ),
                    )
                    .with_help(
                        "return the unit newtype itself, or justify the scalar boundary \
                         with a `// units:` comment",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;
    use crate::Config;

    fn config() -> Config {
        Config::from_toml(
            "[units-escape]\nboundary_paths = [\"crates/soc/\"]\nunit_types = [\"Seconds\", \"Frequency\"]\n",
        )
        .expect("config")
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let cx = Context {
            files: vec![SourceFile::new("crates/soc/src/power.rs", src)],
            config: config(),
            ..Context::default()
        };
        UnitsEscape.run(&cx)
    }

    #[test]
    fn suffixed_f64_param_is_flagged() {
        let diags = run("pub fn dynamic(freq_mhz: f64) -> Watts {\n    Watts::new(freq_mhz)\n}\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("freq_mhz"), "{diags:?}");
    }

    #[test]
    fn suffixed_f64_return_is_flagged() {
        let diags = run("pub fn latency_ms(&self) -> f64 {\n    3.0\n}\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("latency_ms"), "{diags:?}");
    }

    #[test]
    fn projection_leak_propagates_through_the_call_graph() {
        let src = "pub fn report(dt: Seconds) -> f64 {\n    raw(dt)\n}\nfn raw(dt: Seconds) -> f64 {\n    dt.value()\n}\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("soc::power::report"), "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("soc::power::report -> soc::power::raw"),
            "{diags:?}"
        );
    }

    #[test]
    fn unit_type_impls_and_justified_fns_are_exempt() {
        let src = "impl Frequency {\n    pub fn as_mhz(&self) -> f64 {\n        self.0\n    }\n}\n\n/// For CSV export. units: scalar column by design.\npub fn column(dt: Seconds) -> f64 {\n    dt.value()\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn ratio_names_and_dimensionless_returns_pass() {
        let src = "pub fn joules_per_s(e: Joules, t: Seconds) -> f64 {\n    ratio(e, t)\n}\nfn ratio(e: Joules, t: Seconds) -> f64 {\n    2.0\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn outside_boundary_paths_is_out_of_scope() {
        let cx = Context {
            files: vec![SourceFile::new(
                "crates/cli/src/render.rs",
                "pub fn width_ms(t: Seconds) -> f64 {\n    t.value()\n}\n",
            )],
            config: config(),
            ..Context::default()
        };
        assert!(UnitsEscape.run(&cx).is_empty());
    }
}
