//! `panic-ratchet` — `.unwrap()` / `.expect(` / `panic!` in non-test
//! library code is budgeted per file by `[panic-budget]` in `xtask.toml`.
//!
//! New sites fail the build; burning a site down below its budget emits a
//! note so the budget can be tightened. Budgets only ratchet down: never
//! raise one to land new code — return a `Result` instead.

use crate::diag::{Diagnostic, Span};
use crate::Context;

/// The pass. See the module docs.
pub struct PanicRatchet;

/// 1-based line numbers of panic-capable sites in already-stripped
/// library code.
pub fn panic_sites(stripped: &str) -> Vec<usize> {
    // Patterns assembled at runtime so this file does not flag itself.
    let unwrap_pat = concat!(".unw", "rap()");
    let expect_pat = concat!(".exp", "ect(");
    let panic_pat = concat!("pan", "ic!");
    let mut sites = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        let hits = line.matches(unwrap_pat).count()
            + line.matches(expect_pat).count()
            + line.matches(panic_pat).count();
        for _ in 0..hits {
            sites.push(i + 1);
        }
    }
    sites
}

impl super::Pass for PanicRatchet {
    fn id(&self) -> &'static str {
        "panic-ratchet"
    }

    fn description(&self) -> &'static str {
        "panic-capable sites in library code are budgeted per file and only ratchet down"
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            let sites = panic_sites(&file.stripped);
            let budget = cx.config.budget(&file.rel);
            if sites.len() > budget {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&file.rel, sites.last().copied().unwrap_or(0)),
                        format!(
                            "{} panic-capable site(s) in library code, budget is {budget} \
                             (lines: {sites:?})",
                            sites.len()
                        ),
                    )
                    .with_help(
                        "handle the error, or for a documented invariant raise the \
                         [panic-budget] entry in xtask/xtask.toml"
                            .to_string(),
                    ),
                );
            } else if sites.len() < budget {
                out.push(Diagnostic::note(
                    self.id(),
                    Span::file(&file.rel),
                    format!(
                        "below its panic budget ({} < {budget}); ratchet \
                         [panic-budget] in xtask/xtask.toml down",
                        sites.len()
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::diag::Severity;
    use crate::source::{library_code, SourceFile};
    use crate::Config;

    const FIXTURE: &str = r#"
pub fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let x: Option<u8> = None;
        x.unwrap();
    }
}
"#;

    #[test]
    fn library_unwrap_is_flagged_but_test_unwrap_is_not() {
        assert_eq!(panic_sites(&library_code(FIXTURE)), vec![3]);
    }

    #[test]
    fn expect_and_panic_are_flagged() {
        let stripped =
            library_code("fn f() {\n    g().expect(\"boom\");\n    panic!(\"no\");\n}\n");
        assert_eq!(panic_sites(&stripped), vec![2, 3]);
    }

    #[test]
    fn comments_and_docs_do_not_count() {
        let src = "/// Call `.unwrap()` at your peril.\n// panic! lives here\nfn ok() {}\n";
        assert!(panic_sites(&library_code(src)).is_empty());
    }

    #[test]
    fn over_budget_errors_and_under_budget_notes() {
        let mut cx = Context {
            files: vec![SourceFile::new("crates/x/src/lib.rs", FIXTURE)],
            ..Context::default()
        };
        let over = PanicRatchet.run(&cx);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].severity, Severity::Error);
        assert_eq!(over[0].span.line, 3);

        cx.config =
            Config::from_toml("[panic-budget]\n\"crates/x/src/lib.rs\" = 2\n").expect("config");
        let under = PanicRatchet.run(&cx);
        assert_eq!(under.len(), 1);
        assert_eq!(under[0].severity, Severity::Note);

        cx.config =
            Config::from_toml("[panic-budget]\n\"crates/x/src/lib.rs\" = 1\n").expect("config");
        assert!(PanicRatchet.run(&cx).is_empty(), "exactly on budget");
    }
}
