//! `probe-balance` — paired probe events must balance on every
//! control-flow path through a configured function.
//!
//! The measurement protocol (DESIGN.md §7) brackets the measured
//! window with an attach/detach pair: a path that exits with the probe
//! still attached measures navigation noise as page energy, and a path
//! that detaches twice underflows the probe stack. Both are path
//! properties, invisible to per-file token counting — a function with
//! one `attach_probe` and one `detach_probe` call can still leak the
//! probe on its early-return path.
//!
//! The analysis runs forward over the function's [`crate::cfg`] graph
//! with the set of *possible* open−close imbalances as its state
//! (`{0}` on entry; a branch that attaches on one arm only yields
//! `{0, 1}` at the join). Each statement shifts every member by its
//! own attach/detach count; magnitudes cap at ±9 — a sentinel for
//! "many", which keeps loop joins finite. Any nonzero member reaching
//! the synthetic exit (fed by `return` and `?` edges) is an error at
//! the function's declaration line.
//!
//! Config (`xtask.toml`): qualified function → `[open, close]` pair:
//!
//! ```toml
//! [probe-balance]
//! "campaign::runner::Runner::run_page_observed" = ["attach_probe", "detach_probe"]
//! ```
//!
//! With no entries the pass is inert. Intentional imbalance carries a
//! `// probe: <reason>` justification at the function's declaration.

use crate::cfg::{Cfg, Stmt};
use crate::dataflow::{self, Analysis};
use crate::diag::{Diagnostic, Span};
use crate::justify::justified;
use crate::lex::TokenKind;
use crate::source::SourceFile;
use crate::{Config, Context};
use std::collections::BTreeSet;

/// The pass. See the module docs.
pub struct ProbeBalance;

/// Marker for inline justifications.
const MARKER: &str = "probe:";

/// Imbalance magnitudes above this collapse to the cap, read as
/// "many": loops that attach without detaching converge instead of
/// counting up forever, and the report stays honest (`9+`).
const CAP: i64 = 9;

/// Net open−close shift of one statement: occurrences of `open(` /
/// `.open(…)` minus occurrences of `close(`.
fn shift(file: &SourceFile, cfg: &Cfg, stmt: &Stmt, open: &str, close: &str) -> i64 {
    let toks = cfg.stmt_tokens(stmt);
    let mut net = 0i64;
    for w in toks.windows(2) {
        let (a, b) = (w[0], w[1]);
        if file.tokens[a].kind != TokenKind::Ident || file.tokens[b].text(&file.text) != "(" {
            continue;
        }
        let word = file.tokens[a].text(&file.text);
        if word == open {
            net += 1;
        } else if word == close {
            net -= 1;
        }
    }
    net
}

struct BalanceAnalysis<'a> {
    file: &'a SourceFile,
    open: &'a str,
    close: &'a str,
}

impl Analysis for BalanceAnalysis<'_> {
    /// The set of possible open−close imbalances at this point.
    type State = BTreeSet<i64>;

    fn boundary(&self) -> Self::State {
        BTreeSet::from([0])
    }

    fn transfer(
        &self,
        state: &mut Self::State,
        cfg: &Cfg,
        _block: usize,
        _idx: usize,
        stmt: &Stmt,
    ) {
        let d = shift(self.file, cfg, stmt, self.open, self.close);
        if d != 0 {
            *state = state.iter().map(|v| (v + d).clamp(-CAP, CAP)).collect();
        }
    }

    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool {
        let before = into.len();
        into.extend(other.iter());
        into.len() != before
    }
}

/// Runs the analysis over one file, returning finished diagnostics.
pub fn file_findings(file: &SourceFile, config: &Config) -> Vec<Diagnostic> {
    if config.probe_balance.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (fi, f) in file.items.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = config.probe_balance.get(&f.qual) else {
            continue;
        };
        let Some(cfg) = file.cfgs().get(fi).and_then(|c| c.as_ref()) else {
            continue;
        };
        let analysis = BalanceAnalysis { file, open, close };
        let states = dataflow::forward(cfg, &analysis);
        let Some(at_exit) = states.entry[cfg.exit].as_ref() else {
            continue;
        };
        let mut bad: Vec<String> = at_exit
            .iter()
            .filter(|&&v| v != 0)
            .map(|&v| {
                if v.abs() >= CAP {
                    format!("{}{CAP}+", if v > 0 { "+" } else { "-" })
                } else {
                    format!("{v:+}")
                }
            })
            .collect();
        if bad.is_empty() || justified(&file.text, f.line, MARKER) {
            continue;
        }
        bad.sort();
        out.push(
            Diagnostic::error(
                "probe-balance",
                Span::at(&file.rel, f.line, 1),
                format!(
                    "`{open}`/`{close}` can exit `{}` unbalanced ({} on some path)",
                    f.qual,
                    bad.join(", ")
                ),
            )
            .with_help(format!(
                "every path through the function must pair each `{open}` with a \
                 `{close}`; if the imbalance is intentional, justify with \
                 `// {MARKER} <reason>`"
            )),
        );
    }
    out
}

impl super::Pass for ProbeBalance {
    fn id(&self) -> &'static str {
        "probe-balance"
    }

    fn description(&self) -> &'static str {
        "configured attach/detach probe pairs must balance on every control-flow path"
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn explain(&self) -> &'static str {
        "Checks that paired probe events balance on every control-flow path\n\
         through each configured function: the set of possible\n\
         attach−detach imbalances is pushed forward over the function's\n\
         CFG ({0} on entry, branch joins union the possibilities), and any\n\
         nonzero imbalance that can reach the function's exit — `return`\n\
         and `?` paths included — is an error. A function with one attach\n\
         and one detach can still fail: the early-return path leaks the\n\
         probe.\n\
         \n\
         Imbalance magnitudes cap at 9 (reported `9+`), which keeps\n\
         attach-in-a-loop states finite.\n\
         \n\
         Config (`xtask.toml`): qualified function -> [open, close]:\n\
           [probe-balance]\n\
           \"campaign::runner::Runner::run_page_observed\" = [\"attach_probe\", \"detach_probe\"]\n\
         With no entries the pass is inert.\n\
         Justification: `// probe: <reason>` at the function's declaration\n\
         line or in the comment block directly above it."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        cx.files
            .iter()
            .flat_map(|f| file_findings(f, &cx.config))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::from_toml(
            "[probe-balance]\n\"campaign::runner::run\" = [\"attach_probe\", \"detach_probe\"]\n",
        )
        .expect("config parses")
    }

    fn findings(body: &str) -> Vec<Diagnostic> {
        let src = format!("pub fn run(board: &mut Board) {{\n{body}\n}}\n");
        let file = SourceFile::new("crates/campaign/src/runner.rs", src);
        file_findings(&file, &config())
    }

    #[test]
    fn inert_without_config() {
        let file = SourceFile::new(
            "crates/campaign/src/runner.rs",
            "pub fn run(b: &mut Board) { b.attach_probe(); }\n",
        );
        assert!(file_findings(&file, &Config::default()).is_empty());
    }

    #[test]
    fn balanced_pair_is_clean() {
        let d = findings("let id = board.attach_probe();\nboard.run();\nboard.detach_probe(id);");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_detach_is_flagged() {
        let d = findings("board.attach_probe();\nboard.run();");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("+1"), "{}", d[0].message);
        assert_eq!(d[0].span.line, 1);
    }

    #[test]
    fn early_return_leak_is_flagged() {
        let d = findings(
            "board.attach_probe();\n\
             if bad {\n    return;\n}\n\
             board.detach_probe(id);",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("+1"), "{}", d[0].message);
    }

    #[test]
    fn question_mark_leak_is_flagged() {
        let d =
            findings("board.attach_probe();\nlet page = board.load()?;\nboard.detach_probe(id);");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn detach_before_every_exit_is_clean() {
        let d = findings(
            "board.attach_probe();\n\
             if bad {\n    board.detach_probe(id);\n    return;\n}\n\
             board.detach_probe(id);",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn double_detach_branch_is_flagged() {
        let d = findings(
            "board.attach_probe();\n\
             if odd {\n    board.detach_probe(id);\n}\n\
             board.detach_probe(id);",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("-1"), "{}", d[0].message);
    }

    #[test]
    fn attach_in_loop_caps_at_many() {
        let d = findings("for p in pages {\n    board.attach_probe();\n}");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("9+"), "{}", d[0].message);
    }

    #[test]
    fn justified_imbalance_is_dropped() {
        let d = findings("board.attach_probe();");
        assert_eq!(d.len(), 1);
        let src = "// probe: the probe outlives the call on purpose\n\
                   pub fn run(board: &mut Board) {\nboard.attach_probe();\n}\n";
        let file = SourceFile::new("crates/campaign/src/runner.rs", src);
        assert!(file_findings(&file, &config()).is_empty());
    }
}
