//! `sync-hygiene` — synchronization stays behind the model-checked
//! facade, and memory-ordering choices carry their proof obligation.
//!
//! Three rules, all on the lexer-derived stripped + string-blanked views
//! (comments, `#[cfg(test)]` items, and every textual literal — raw
//! strings and char literals included — blanked exactly):
//!
//! 1. **No direct `std::sync` / `std::thread::spawn` / `std::thread::scope`
//!    in library crates.** The campaign executor's concurrency guarantees
//!    are proved by the `interleave` model checker, which can only see
//!    synchronization routed through a facade (`crates/campaign/src/sync.rs`).
//!    A direct `std` import silently opts out of model checking. Facade
//!    implementations themselves are exempted via `[sync-hygiene]
//!    facade_paths` in `xtask.toml`; `xtask/` is tooling and out of scope.
//! 2. **Every non-`SeqCst` atomic ordering needs an `// ordering:`
//!    justification** on the same line or in the comment block directly
//!    above. Relaxed/Acquire/Release orderings are correctness claims
//!    about what the atomic does *not* protect; the comment records the
//!    argument reviewers and the model checker's docs can hold it to.
//! 3. **No `static mut`, anywhere.** Mutable statics are unsynchronized
//!    shared state by construction and deprecated territory in modern
//!    Rust; use interior mutability behind the facade instead.

use crate::diag::{Diagnostic, Span};
use crate::source::{blank_strings, SourceFile};
use crate::Context;

/// The pass. See the module docs.
pub struct SyncHygiene;

/// Byte offsets of `needle` in `line` at identifier boundaries.
fn token_columns(line: &str, needle: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(idx) = line[from..].find(needle) {
        let at = from + idx;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        let end = at + needle.len();
        let after_ok = end >= line.len() || {
            let b = bytes[end];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if before_ok && after_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

/// The non-`SeqCst` orderings that require a written justification.
const JUSTIFIED_ORDERINGS: [&str; 4] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// Whether raw line `line_idx` (0-based) carries an `// ordering:`
/// justification: on the line itself, or in the contiguous run of
/// comment-only lines directly above it.
fn has_ordering_justification(raw_lines: &[&str], line_idx: usize) -> bool {
    let marker = "// ordering:";
    if raw_lines.get(line_idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if raw_lines[i].contains(marker) || trimmed.starts_with("// ordering:") {
            return true;
        }
    }
    false
}

/// Whether rule 1 (the facade ban) applies to this file at all:
/// library crates and the root crate, minus the configured facades.
fn facade_ban_applies(file: &SourceFile, facade_paths: &[String]) -> bool {
    let in_scope = file.rel.starts_with("crates/") || file.rel.starts_with("src/");
    in_scope
        && !facade_paths
            .iter()
            .any(|p| file.rel.starts_with(p.as_str()))
}

impl super::Pass for SyncHygiene {
    fn id(&self) -> &'static str {
        "sync-hygiene"
    }

    fn description(&self) -> &'static str {
        "synchronization goes through the model-checked facade; non-SeqCst orderings are justified"
    }

    fn explain(&self) -> &'static str {
        "Two rules for concurrent code: (1) synchronization primitives\n\
         are used only through the model-checked facade — direct\n\
         `std::sync` use outside the facade paths is an error; (2) every\n\
         non-`SeqCst` atomic memory ordering must say why it suffices.\n\
         \n\
         Config (`xtask.toml`):\n\
           [sync-hygiene]\n\
           facade_paths = [\"crates/sim-core/src/sync/\"]  # the facade impl\n\
         Justification: `// ordering: <reason>` on the flagged line or in\n\
         the comment block directly above it (for rule 2; rule 1 has no\n\
         inline escape — go through the facade)."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let banned_sync = ["std::sync", "std::thread::spawn", "std::thread::scope"];
        let mut out = Vec::new();
        for file in &cx.files {
            let blanked = blank_strings(&file.stripped);
            let raw_lines: Vec<&str> = file.text.lines().collect();
            let ban_here = facade_ban_applies(file, &cx.config.sync_facade_paths);
            for (i, line) in blanked.lines().enumerate() {
                if ban_here {
                    for needle in banned_sync {
                        for col in token_columns(line, needle) {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    Span::at(&file.rel, i + 1, col + 1),
                                    format!(
                                        "direct `{needle}` in library code bypasses the \
                                         model-checked sync facade"
                                    ),
                                )
                                .with_help(
                                    "route synchronization through the crate's sync facade \
                                     (see crates/campaign/src/sync.rs), or list a new facade \
                                     under [sync-hygiene] facade_paths in xtask.toml",
                                ),
                            );
                        }
                    }
                }
                for needle in JUSTIFIED_ORDERINGS {
                    for col in token_columns(line, needle) {
                        if !has_ordering_justification(&raw_lines, i) {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    Span::at(&file.rel, i + 1, col + 1),
                                    format!("`{needle}` without an `// ordering:` justification"),
                                )
                                .with_help(
                                    "state why this ordering suffices in an `// ordering:` \
                                     comment on the same line or directly above, or use SeqCst",
                                ),
                            );
                        }
                    }
                }
                for col in token_columns(line, "static mut") {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            Span::at(&file.rel, i + 1, col + 1),
                            "`static mut` is unsynchronized shared mutable state".to_string(),
                        )
                        .with_help("use an atomic, a Mutex behind the sync facade, or OnceLock"),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::Config;

    fn context(rel: &str, text: &str) -> Context {
        Context {
            files: vec![SourceFile::new(rel, text)],
            config: Config::from_toml(
                "[sync-hygiene]\nfacade_paths = [\"crates/campaign/src/sync.rs\", \"crates/interleave/\"]\n",
            )
            .expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn direct_std_sync_is_flagged_outside_the_facade() {
        let cx = context(
            "crates/soc/src/board.rs",
            "use std::sync::Mutex;\nfn go() { std::thread::spawn(|| {}); }\n",
        );
        let diags = SyncHygiene.run(&cx);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].span, Span::at("crates/soc/src/board.rs", 1, 5));
        assert!(diags[0].message.contains("std::sync"));
        assert!(diags[1].message.contains("std::thread::spawn"));
    }

    #[test]
    fn facade_files_and_tooling_are_exempt_from_the_ban() {
        for rel in [
            "crates/campaign/src/sync.rs",
            "crates/interleave/src/sync.rs",
            "xtask/src/lib.rs",
        ] {
            let cx = context(rel, "use std::sync::Mutex;\n");
            assert!(SyncHygiene.run(&cx).is_empty(), "{rel} must be exempt");
        }
    }

    #[test]
    fn tests_comments_and_strings_do_not_trip_the_ban() {
        let cx = context(
            "crates/soc/src/board.rs",
            "// std::sync is banned here\nconst X: &str = \"std::sync\";\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n",
        );
        assert!(SyncHygiene.run(&cx).is_empty());
    }

    #[test]
    fn relaxed_ordering_requires_a_justification() {
        let unjustified = context(
            "crates/campaign/src/executor.rs",
            "fn f(c: &AtomicUsize) -> usize {\n    c.fetch_add(1, Ordering::Relaxed)\n}\n",
        );
        let diags = SyncHygiene.run(&unjustified);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Ordering::Relaxed"));
        assert_eq!(diags[0].span.line, 2);

        let same_line = context(
            "crates/campaign/src/executor.rs",
            "fn f(c: &AtomicUsize) -> usize {\n    c.fetch_add(1, Ordering::Relaxed) // ordering: pure ticket\n}\n",
        );
        assert!(SyncHygiene.run(&same_line).is_empty());

        let block_above = context(
            "crates/campaign/src/executor.rs",
            "fn f(c: &AtomicUsize) -> usize {\n    // ordering: the counter is a pure claim ticket;\n    // no other memory is published through it.\n    c.fetch_add(1, Ordering::Relaxed)\n}\n",
        );
        assert!(SyncHygiene.run(&block_above).is_empty());
    }

    #[test]
    fn unrelated_comment_above_does_not_justify() {
        let cx = context(
            "crates/campaign/src/executor.rs",
            "fn f(c: &AtomicUsize) -> usize {\n    // claims the next item\n    c.fetch_add(1, Ordering::Acquire)\n}\n",
        );
        let diags = SyncHygiene.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Ordering::Acquire"));
    }

    #[test]
    fn seqcst_needs_no_justification() {
        let cx = context(
            "crates/campaign/src/executor.rs",
            "fn f(c: &AtomicUsize) -> usize {\n    c.fetch_add(1, Ordering::SeqCst)\n}\n",
        );
        assert!(SyncHygiene.run(&cx).is_empty());
    }

    #[test]
    fn static_mut_is_flagged_everywhere() {
        let cx = context("xtask/src/lib.rs", "static mut COUNTER: usize = 0;\n");
        let diags = SyncHygiene.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("static mut"));
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(token_columns("my_std::sync::x", "std::sync").is_empty());
        assert!(token_columns("xstatic muty", "static mut").is_empty());
        assert_eq!(token_columns("use std::sync::Mutex;", "std::sync"), vec![4]);
    }
}
