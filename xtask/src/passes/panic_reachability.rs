//! `panic-reachability` — every panic-capable site in library code must
//! live in a function sanctioned by `[panic-reachability] allow` in
//! `xtask.toml`, and the diagnostic reports which `pub` entry point
//! reaches it through the call graph.
//!
//! This subsumes the old per-file panic-count ratchet: instead of
//! "file X may contain N sites", the contract is "function `F` is
//! sanctioned to panic" — renames and moves show up in review as
//! allowlist edits, and the *reach* of each site is visible in the
//! finding. Allow entries that no longer match any panicking function
//! are reported as notes so the list only ratchets down.
//!
//! Sites are token-level (`.unwrap(` / `.expect(` method calls and
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!` macro
//! invocations), so strings, comments, and identifiers like
//! `unwrap_or_default` never trip it, and `#[cfg(test)]` code is skipped
//! via item spans rather than brace counting.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Span};
use crate::lex::{LineIndex, TokenKind};
use crate::source::SourceFile;
use crate::Context;
use std::collections::BTreeSet;

/// The pass. See the module docs.
pub struct PanicReachability;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One panic-capable site: `(byte offset, 1-based line, what)`.
pub fn panic_sites(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let index = LineIndex::new(&file.text);
    let src = file.text.as_str();
    let code: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| !file.tokens[i].kind.is_trivia())
        .collect();
    let in_cfg_test = |lo: usize| {
        file.items
            .cfg_test_spans
            .iter()
            .any(|&(a, b)| a <= lo && lo < b)
    };
    let mut out = Vec::new();
    for (pos, &i) in code.iter().enumerate() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident || in_cfg_test(tok.lo) {
            continue;
        }
        let text = tok.text(src);
        let at = |p: usize| code.get(p).map(|&j| &file.tokens[j]);
        let punct = |p: usize, s: &str| {
            at(p).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == s)
        };
        let site = match text {
            "unwrap" | "expect" => pos > 0 && punct(pos - 1, ".") && punct(pos + 1, "("),
            _ => PANIC_MACROS.contains(&text) && punct(pos + 1, "!"),
        };
        if site {
            let what = if text == "unwrap" || text == "expect" {
                format!(".{text}()")
            } else {
                format!("{text}!")
            };
            out.push((tok.lo, index.line(tok.lo), what));
        }
    }
    out
}

impl super::Pass for PanicReachability {
    fn id(&self) -> &'static str {
        "panic-reachability"
    }

    fn description(&self) -> &'static str {
        "panic-capable sites must be in sanctioned functions; findings show the pub call path"
    }

    fn explain(&self) -> &'static str {
        "Finds panic-capable sites (`unwrap`, `expect`, `panic!`, and\n\
         friends) in library code and walks the intra-workspace call graph\n\
         to show the shortest public call path that reaches each one.\n\
         A site is sanctioned only when the function containing it is\n\
         listed in the config allowlist.\n\
         \n\
         Config (`xtask.toml`):\n\
           [panic-reachability]\n\
           allow = [\"campaign::runner::Runner::run\"]   # qualified fns\n\
         Justification: none inline — sanctioning happens in the config so\n\
         every accepted panic entry point is reviewed in one place."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let graph = CallGraph::build(cx);
        let allowed: BTreeSet<&str> = cx.config.panic_allow.iter().map(String::as_str).collect();
        let mut used: BTreeSet<&str> = BTreeSet::new();
        let mut out = Vec::new();
        for (file_idx, file) in cx.files.iter().enumerate() {
            for (lo, line, what) in panic_sites(file) {
                let Some(node) = graph.enclosing_fn(file_idx, lo) else {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            Span::line(&file.rel, line),
                            format!("panic-capable site `{what}` outside any function"),
                        )
                        .with_help(
                            "const/static initializers must not contain panic sites; \
                             compute the value infallibly",
                        ),
                    );
                    continue;
                };
                let fn_node = &graph.nodes[node];
                if fn_node.item.in_test {
                    continue;
                }
                let qual = fn_node.item.qual.as_str();
                if let Some(&hit) = allowed.get(qual) {
                    used.insert(hit);
                    continue;
                }
                let reach = graph
                    .path_from_pub(node)
                    .map(|p| format!("reachable via `{}`", graph.render_path(&p)))
                    .unwrap_or_else(|| {
                        "not reachable from any resolved pub entry point".to_string()
                    });
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&file.rel, line),
                        format!("panic-capable site `{what}` in unsanctioned `{qual}` ({reach})"),
                    )
                    .with_help(format!(
                        "handle the error instead, or for a documented invariant add \
                         `\"{qual}\"` to [panic-reachability] allow in xtask/xtask.toml"
                    )),
                );
            }
        }
        // Ratchet-down: allow entries with no remaining panic sites.
        for stale in allowed.difference(&used) {
            out.push(Diagnostic::note(
                self.id(),
                Span::file("xtask/xtask.toml"),
                format!(
                    "[panic-reachability] allow entry `{stale}` matches no panic site; \
                     remove it"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::diag::Severity;
    use crate::Config;

    const FIXTURE: &str = r#"
pub fn read(path: &str) -> String {
    load(path)
}

fn load(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_is_fine() {
        let x: Option<u8> = None;
        x.unwrap();
        panic!("fine here");
    }
}
"#;

    fn cx(config: &str) -> Context {
        Context {
            files: vec![SourceFile::new("crates/soc/src/io.rs", FIXTURE)],
            config: Config::from_toml(config).expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn sites_are_token_level() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "fn f() {\n    g().expect(\"boom\");\n    h().unwrap_or_default();\n    // .unwrap() in a comment\n    let s = \"panic!\";\n    todo!()\n}\n",
        );
        let whats: Vec<String> = panic_sites(&file).into_iter().map(|s| s.2).collect();
        assert_eq!(whats, vec![".expect()", "todo!"]);
    }

    #[test]
    fn unsanctioned_site_reports_the_pub_call_path() {
        let diags = PanicReachability.run(&cx(""));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.line, 7);
        assert!(diags[0].message.contains("soc::io::load"), "{diags:?}");
        assert!(
            diags[0].message.contains("soc::io::read -> soc::io::load"),
            "{diags:?}"
        );
        assert!(
            diags[0]
                .help
                .as_deref()
                .is_some_and(|h| h.contains("\"soc::io::load\"")),
            "{diags:?}"
        );
    }

    #[test]
    fn sanctioned_function_is_clean_and_stale_entries_note() {
        let diags = PanicReachability.run(&cx(
            "[panic-reachability]\nallow = [\"soc::io::load\", \"soc::io::gone\"]\n",
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].message.contains("soc::io::gone"));
    }

    #[test]
    fn test_code_is_skipped() {
        let file = SourceFile::new(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n",
        );
        assert!(panic_sites(&file).is_empty());
    }
}
