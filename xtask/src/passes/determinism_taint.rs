//! `determinism-taint` — nondeterminism sources must not be reachable
//! from export/golden/sketch-merge code through the call graph.
//!
//! `map-determinism` bans hash collections *inside* the export files
//! themselves; this pass upgrades the guarantee to reachability: a
//! `HashMap` iteration, wall-clock read (`Instant` / `SystemTime`), or a
//! declared unordered-reduction helper (`[determinism-taint]
//! source_fns`) anywhere in the workspace is an error if some function
//! in `[determinism] export_paths` can reach it, and the finding prints
//! the call chain from the sink. Byte-identical goldens (the fleet
//! digest, SARIF snapshots, CSV exports) are the repo's core
//! reproducibility claim — order- or time-dependent values feeding them
//! must be caught before they reach an artifact.
//!
//! Sources are token-level idents, so strings, comments, and
//! `#[cfg(test)]` code never count.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Span};
use crate::lex::{LineIndex, TokenKind};
use crate::Context;

/// The pass. See the module docs.
pub struct DeterminismTaint;

const HASH_SOURCES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_SOURCES: [&str; 2] = ["Instant", "SystemTime"];

impl super::Pass for DeterminismTaint {
    fn id(&self) -> &'static str {
        "determinism-taint"
    }

    fn description(&self) -> &'static str {
        "nondeterminism sources must not be reachable from export/golden code"
    }

    fn explain(&self) -> &'static str {
        "Taint analysis over the intra-workspace call graph: functions\n\
         defined in the determinism export paths are sinks, and any\n\
         nondeterminism source reachable from them — wall-clock reads,\n\
         hash-seeded iteration, thread-id dependence, plus the configured\n\
         extra sources — is an error, with the call path shown.\n\
         \n\
         Config (`xtask.toml`):\n\
           [determinism]\n\
           export_paths = [\"crates/campaign/src/export.rs\"]  # the sinks\n\
           [determinism-taint]\n\
           source_fns = [\"campaign::executor::unordered_reduce\"]\n\
         Justification: none inline — route the sink through a\n\
         deterministic facade instead."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        if cx.config.determinism_paths.is_empty() {
            return Vec::new();
        }
        let graph = CallGraph::build(cx);
        let in_export = |rel: &str| {
            cx.config
                .determinism_paths
                .iter()
                .any(|p| rel.starts_with(p.as_str()))
        };

        // Sinks: every non-test function defined in an export path.
        let sinks: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.item.in_test && in_export(&n.rel))
            .map(|(i, _)| i)
            .collect();
        if sinks.is_empty() {
            return Vec::new();
        }
        let reach = graph.forward(&sinks);

        // Sources: token scan of each reachable body, plus declared
        // source functions.
        let mut out = Vec::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            if node.item.in_test || !reach.contains(idx) {
                continue;
            }
            let chain = reach
                .path_to(idx)
                .map(|p| graph.render_path(&p))
                .unwrap_or_else(|| node.item.qual.clone());
            if cx
                .config
                .taint_source_fns
                .iter()
                .any(|q| q == &node.item.qual)
            {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&node.rel, node.item.line),
                        format!(
                            "declared nondeterminism source `{}` is reachable from export \
                             code (chain: `{chain}`)",
                            node.item.qual
                        ),
                    )
                    .with_help(
                        "make the helper deterministic or cut the call path to the \
                         export sink",
                    ),
                );
            }
            let Some((body_lo, body_hi)) = node.item.body else {
                continue;
            };
            let file = &cx.files[node.file];
            let src = file.text.as_str();
            let index = LineIndex::new(src);
            let mut seen_kinds: Vec<&str> = Vec::new();
            for i in body_lo..body_hi.min(file.tokens.len()) {
                let tok = &file.tokens[i];
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                let text = tok.text(src);
                let is_hash = HASH_SOURCES.contains(&text);
                let is_clock = CLOCK_SOURCES.contains(&text);
                if !is_hash && !is_clock {
                    continue;
                }
                // Hash collections inside an export file are
                // map-determinism's finding; don't double-report.
                if is_hash && in_export(&node.rel) {
                    continue;
                }
                if seen_kinds.contains(&text) {
                    continue;
                }
                seen_kinds.push(text);
                let what = if is_hash {
                    format!("`{text}` iteration order")
                } else {
                    format!("wall clock (`{text}`)")
                };
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&node.rel, index.line(tok.lo)),
                        format!(
                            "{what} in `{}` is reachable from export code \
                             (chain: `{chain}`)",
                            node.item.qual
                        ),
                    )
                    .with_help(if is_hash {
                        "use BTreeMap/BTreeSet (stable iteration order) or sort before \
                         exporting"
                    } else {
                        "exported artifacts must not depend on wall-clock time; thread a \
                         simulated clock through instead"
                    }),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;
    use crate::Config;

    fn config() -> Config {
        Config::from_toml(
            "[determinism]\nexport_paths = [\"crates/campaign/src/export.rs\"]\n\
             [determinism-taint]\nsource_fns = [\"campaign::stats::unordered_sum\"]\n",
        )
        .expect("config")
    }

    #[test]
    fn hash_iteration_reachable_from_export_is_flagged_with_chain() {
        let export = SourceFile::new(
            "crates/campaign/src/export.rs",
            "pub fn write_csv() {\n    crate::stats::summarize();\n}\n",
        );
        let stats = SourceFile::new(
            "crates/campaign/src/stats.rs",
            "use std::collections::HashMap;\n\npub fn summarize() {\n    let m: HashMap<u32, f64> = HashMap::new();\n    let _ = m;\n}\n",
        );
        let cx = Context {
            files: vec![export, stats],
            config: config(),
            ..Context::default()
        };
        let diags = DeterminismTaint.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].span.file, "crates/campaign/src/stats.rs");
        assert_eq!(diags[0].span.line, 4);
        assert!(
            diags[0]
                .message
                .contains("campaign::export::write_csv -> campaign::stats::summarize"),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_sources_and_test_code_are_clean() {
        let export = SourceFile::new("crates/campaign/src/export.rs", "pub fn write_csv() {}\n");
        let stats = SourceFile::new(
            "crates/campaign/src/stats.rs",
            "use std::collections::HashMap;\n\npub fn summarize() {\n    let m: HashMap<u32, f64> = HashMap::new();\n    let _ = m;\n}\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let _ = std::time::Instant::now();\n    }\n}\n",
        );
        let cx = Context {
            files: vec![export, stats],
            config: config(),
            ..Context::default()
        };
        assert!(DeterminismTaint.run(&cx).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged_even_inside_export_files() {
        let export = SourceFile::new(
            "crates/campaign/src/export.rs",
            "pub fn write_csv() {\n    let _t = std::time::Instant::now();\n}\n",
        );
        let cx = Context {
            files: vec![export],
            config: config(),
            ..Context::default()
        };
        let diags = DeterminismTaint.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Instant"), "{diags:?}");
    }

    #[test]
    fn declared_source_fns_taint_their_callers() {
        let export = SourceFile::new(
            "crates/campaign/src/export.rs",
            "pub fn write_csv() {\n    crate::stats::unordered_sum();\n}\n",
        );
        let stats = SourceFile::new(
            "crates/campaign/src/stats.rs",
            "pub fn unordered_sum() {}\n",
        );
        let cx = Context {
            files: vec![export, stats],
            config: config(),
            ..Context::default()
        };
        let diags = DeterminismTaint.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("declared nondeterminism source"));
    }
}
