//! `lint-header` — every crate root must carry the agreed header:
//! `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]`.

use crate::diag::{Diagnostic, Span};
use crate::Context;

/// The pass. See the module docs.
pub struct LintHeader;

/// Whether a crate root carries the agreed lint header.
pub fn has_lint_header(source: &str) -> bool {
    source.contains("#![forbid(unsafe_code)]") && source.contains("#![deny(missing_docs)]")
}

impl super::Pass for LintHeader {
    fn id(&self) -> &'static str {
        "lint-header"
    }

    fn description(&self) -> &'static str {
        "crate roots carry #![forbid(unsafe_code)] + #![deny(missing_docs)]"
    }

    fn explain(&self) -> &'static str {
        "Checks that every crate root (`lib.rs` / `main.rs`) declares both\n\
         `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`. The\n\
         attributes are the workspace's baseline contract — forgetting\n\
         them on a new crate silently relaxes it for the whole crate.\n\
         \n\
         Config: none; the generic `[levels]` / `[allow]` policy applies."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            if file.rel.ends_with("/lib.rs") && !has_lint_header(&file.text) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::file(&file.rel),
                        "crate root is missing the agreed lint header",
                    )
                    .with_help("add #![forbid(unsafe_code)] and #![deny(missing_docs)]"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn header_check() {
        assert!(has_lint_header(
            "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n"
        ));
        assert!(!has_lint_header("#![forbid(unsafe_code)]\n"));
    }

    #[test]
    fn only_crate_roots_are_checked() {
        let cx = Context {
            files: vec![
                SourceFile::new("crates/x/src/lib.rs", "//! Bare.\n"),
                SourceFile::new("crates/x/src/other.rs", "//! Bare.\n"),
            ],
            ..Context::default()
        };
        let diags = LintHeader.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span.file, "crates/x/src/lib.rs");
    }
}
