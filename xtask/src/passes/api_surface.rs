//! `api-surface` — each crate's `pub` surface is snapshotted in
//! `xtask/api/<crate>.txt`; undeclared additions or removals fail the
//! gate.
//!
//! The extraction is textual: every `pub` declaration (functions, types,
//! traits, consts, modules, re-exports, struct fields) is normalized to a
//! single line — signature up to the body/initializer — and the sorted
//! set per crate is compared against the committed snapshot. Refactors
//! that change a public surface must re-bless with
//! `cargo run -p xtask -- bless-api`, which makes the change visible in
//! review instead of silent.

use crate::diag::{Diagnostic, Span};
use crate::source::SourceFile;
use crate::Context;
use std::collections::BTreeMap;

/// The pass. See the module docs.
pub struct ApiSurface;

/// Where a crate's snapshot lives.
pub fn snapshot_path(crate_key: &str) -> String {
    format!("xtask/api/{crate_key}.txt")
}

/// One extracted public declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiItem {
    /// The normalized one-line signature.
    pub signature: String,
    /// File the declaration lives in.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// Extracts the public declarations of one file's stripped source.
///
/// Items carrying a `#[deprecated]` attribute are excluded: deprecated
/// shims are scheduled for removal, and keeping them out of the snapshot
/// means landing the shim and landing its deletion both avoid a bless —
/// the snapshot describes the *supported* surface.
pub fn extract_file(file: &SourceFile) -> Vec<ApiItem> {
    let lines: Vec<&str> = file.stripped.lines().collect();
    let mut items = Vec::new();
    let mut i = 0;
    let mut deprecated = false;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        // Attributes stack up in front of the item they decorate; a
        // wrapped attribute spans lines until its brackets balance.
        if trimmed.starts_with("#[") {
            if trimmed.starts_with("#[deprecated") {
                deprecated = true;
            }
            let mut depth: i64 = 0;
            loop {
                let line = lines.get(i).copied().unwrap_or("");
                depth += line
                    .chars()
                    .map(|c| match c {
                        '[' => 1,
                        ']' => -1,
                        _ => 0,
                    })
                    .sum::<i64>();
                i += 1;
                if depth <= 0 || i >= lines.len() {
                    break;
                }
            }
            continue;
        }
        // `pub(crate)`/`pub(super)` are not public API.
        if !trimmed.starts_with("pub ") {
            deprecated = false;
            i += 1;
            continue;
        }
        let skip = std::mem::take(&mut deprecated);
        let start = i;
        let mut sig = String::new();
        loop {
            let line = lines.get(i).copied().unwrap_or("").trim();
            if !sig.is_empty() {
                sig.push(' ');
            }
            sig.push_str(line);
            i += 1;
            // The declaration ends at its body/initializer (`{` or `=`), at
            // a top-level `;`, or — for struct fields — at a `,` outside
            // any bracket (wrapped fn params also end lines with `,`, but
            // inside still-open parens).
            if let Some(cut) = sig.find(['{', '=']) {
                sig = sig[..cut].trim_end().to_string();
                break;
            }
            let head = sig.trim_end();
            let depth: i64 = head
                .chars()
                .map(|c| match c {
                    '(' | '[' => 1,
                    ')' | ']' => -1,
                    _ => 0,
                })
                .sum();
            if head.ends_with(';') || (depth <= 0 && head.ends_with(',')) {
                sig = head.trim_end_matches([';', ',']).trim_end().to_string();
                break;
            }
            if i >= lines.len() || i - start >= 12 {
                sig = head.to_string();
                break;
            }
        }
        let signature = sig.split_whitespace().collect::<Vec<_>>().join(" ");
        if signature != "pub" && !signature.is_empty() && !skip {
            items.push(ApiItem {
                signature,
                file: file.rel.clone(),
                line: start + 1,
            });
        }
    }
    items
}

/// The sorted public surface of a set of files, grouped by crate key.
pub fn extract_surface(files: &[SourceFile]) -> BTreeMap<String, Vec<ApiItem>> {
    let mut by_crate: BTreeMap<String, Vec<ApiItem>> = BTreeMap::new();
    for file in files {
        by_crate
            .entry(file.crate_key().to_string())
            .or_default()
            .extend(extract_file(file));
    }
    for items in by_crate.values_mut() {
        items.sort_by(|a, b| (&a.signature, &a.file, a.line).cmp(&(&b.signature, &b.file, b.line)));
    }
    by_crate
}

/// Renders one crate's surface as snapshot text (sorted, one per line).
pub fn render_snapshot(items: &[ApiItem]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&item.signature);
        out.push('\n');
    }
    out
}

impl super::Pass for ApiSurface {
    fn id(&self) -> &'static str {
        "api-surface"
    }

    fn description(&self) -> &'static str {
        "public API changes must be blessed into xtask/api/ snapshots"
    }

    fn explain(&self) -> &'static str {
        "Renders each crate's public API surface (pub fns, types, consts,\n\
         re-exports) from the item tree and diffs it against the blessed\n\
         snapshot in `xtask/api/<crate>.txt`. Any drift — additions,\n\
         removals, signature changes, or a missing snapshot — is an\n\
         error, so API changes are explicit, reviewed artifacts.\n\
         \n\
         Config: none; bless intentional changes with\n\
         `cargo run -p xtask -- bless-api` and commit the snapshot diff."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let bless = "review the change, then run `cargo run -p xtask -- bless-api`";
        for (crate_key, items) in extract_surface(&cx.files) {
            let snap_file = snapshot_path(&crate_key);
            let Some(snapshot) = cx.api_snapshots.get(&crate_key) else {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::file(&snap_file),
                        format!("no API snapshot for crate `{crate_key}`"),
                    )
                    .with_help(bless),
                );
                continue;
            };
            // Multiset diff against the snapshot lines.
            let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
            for item in &items {
                *counts.entry(item.signature.as_str()).or_default() += 1;
            }
            for line in snapshot.lines().filter(|l| !l.is_empty()) {
                *counts.entry(line).or_default() -= 1;
            }
            for (sig, n) in counts {
                if n > 0 {
                    let at = items
                        .iter()
                        .find(|i| i.signature == sig)
                        .map_or_else(|| Span::file(&snap_file), |i| Span::line(&i.file, i.line));
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            at,
                            format!("undeclared public API addition in `{crate_key}`: `{sig}`"),
                        )
                        .with_help(bless),
                    );
                } else if n < 0 {
                    let at = snapshot
                        .lines()
                        .position(|l| l == sig)
                        .map_or_else(|| Span::file(&snap_file), |i| Span::line(&snap_file, i + 1));
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            at,
                            format!("undeclared public API removal in `{crate_key}`: `{sig}`"),
                        )
                        .with_help(bless),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;

    const FIXTURE: &str = r#"
/// Docs.
pub struct Row {
    /// A field.
    pub load_time: Seconds,
    private: u8,
}

/// A long signature that rustfmt wrapped.
pub fn evaluate(
    set: &WorkloadSet,
    policies: &[Policy],
) -> Result<Evaluation, EvaluateError> {
    todo!()
}

pub const GOVERNORS: [&str; 2] = ["a", "b"];
pub use crate::policy::Policy;

#[deprecated(note = "use CampaignDriver::evaluate")]
pub fn evaluate_with(set: &WorkloadSet) -> Result<Evaluation, EvaluateError> {
    todo!()
}

#[deprecated(
    note = "a note long enough that rustfmt wrapped the attribute"
)]
#[must_use]
pub fn old_helper() -> u8 {
    0
}

pub(crate) fn internal() {}

#[cfg(test)]
mod tests {
    pub fn not_api() {}
}
"#;

    fn file() -> SourceFile {
        SourceFile::new("crates/campaign/src/evaluate.rs", FIXTURE)
    }

    #[test]
    fn extraction_normalizes_and_filters() {
        let sigs: Vec<String> = extract_file(&file())
            .into_iter()
            .map(|i| i.signature)
            .collect();
        assert_eq!(
            sigs,
            vec![
                "pub struct Row",
                "pub load_time: Seconds",
                "pub fn evaluate( set: &WorkloadSet, policies: &[Policy], ) -> \
                 Result<Evaluation, EvaluateError>",
                "pub const GOVERNORS: [&str; 2]",
                "pub use crate::policy::Policy",
            ]
        );
    }

    #[test]
    fn matching_snapshot_is_clean_and_drift_is_flagged() {
        let files = vec![file()];
        let surface = extract_surface(&files);
        let snapshot = render_snapshot(&surface["campaign"]);
        let mut cx = Context {
            files,
            ..Context::default()
        };
        cx.api_snapshots.insert("campaign".into(), snapshot.clone());
        assert!(ApiSurface.run(&cx).is_empty());

        // Remove a declared symbol from the snapshot → addition finding.
        let pruned: String = snapshot
            .lines()
            .filter(|l| !l.contains("GOVERNORS"))
            .map(|l| format!("{l}\n"))
            .collect();
        cx.api_snapshots.insert("campaign".into(), pruned);
        let diags = ApiSurface.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("addition"), "{diags:?}");
        assert_eq!(diags[0].span.file, "crates/campaign/src/evaluate.rs");

        // Extra snapshot line → removal finding pointing at the snapshot.
        let padded = format!("{snapshot}pub fn gone()\n");
        cx.api_snapshots.insert("campaign".into(), padded);
        let diags = ApiSurface.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("removal"), "{diags:?}");
        assert_eq!(diags[0].span.file, "xtask/api/campaign.txt");
    }

    #[test]
    fn missing_snapshot_is_a_finding() {
        let cx = Context {
            files: vec![file()],
            ..Context::default()
        };
        let diags = ApiSurface.run(&cx);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no API snapshot"));
    }
}
