//! `crate-layering` — the workspace's declared layer order stays intact.
//!
//! `[layering] layers` in `xtask.toml` lists the workspace crates
//! bottom-up. A crate's normal (non-dev) dependencies must sit in its own
//! layer or a lower one: upward edges are rejected, as are dependency
//! cycles (which same-layer edges could otherwise smuggle in) and crates
//! missing from the declaration entirely.

use crate::diag::{Diagnostic, Span};
use crate::workspace::Manifest;
use crate::Context;
use std::collections::BTreeMap;

/// The pass. See the module docs.
pub struct CrateLayering;

fn find_cycle(manifests: &[Manifest]) -> Option<Vec<String>> {
    let names: BTreeMap<&str, &Manifest> = manifests.iter().map(|m| (m.name.as_str(), m)).collect();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut state: BTreeMap<&str, u8> = BTreeMap::new();
    fn dfs<'a>(
        node: &'a str,
        names: &BTreeMap<&'a str, &'a Manifest>,
        state: &mut BTreeMap<&'a str, u8>,
        path: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        state.insert(node, 1);
        path.push(node);
        if let Some(m) = names.get(node) {
            for dep in m.normal_deps() {
                let Some((&dep_name, _)) = names.get_key_value(dep.name.as_str()) else {
                    continue;
                };
                match state.get(dep_name).copied().unwrap_or(0) {
                    1 => {
                        let start = path.iter().position(|&n| n == dep_name).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[start..].iter().map(|s| (*s).to_string()).collect();
                        cycle.push(dep_name.to_string());
                        return Some(cycle);
                    }
                    0 => {
                        if let Some(c) = dfs(dep_name, names, state, path) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
        }
        path.pop();
        state.insert(node, 2);
        None
    }
    let mut keys: Vec<&str> = names.keys().copied().collect();
    keys.sort_unstable();
    for name in keys {
        if state.get(name).copied().unwrap_or(0) == 0 {
            let mut path = Vec::new();
            if let Some(c) = dfs(name, &names, &mut state, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

impl super::Pass for CrateLayering {
    fn id(&self) -> &'static str {
        "crate-layering"
    }

    fn description(&self) -> &'static str {
        "crate dependencies respect the declared layer order: no upward edges, no cycles"
    }

    fn explain(&self) -> &'static str {
        "Checks workspace crate dependencies against the declared layer\n\
         order: a crate may depend only on crates in its own or a lower\n\
         layer, every workspace crate must be assigned to a layer, and\n\
         the dependency graph must be acyclic.\n\
         \n\
         Config (`xtask.toml`):\n\
           [layering]\n\
           layers = [[\"dora-sim-core\", …], [\"dora-soc\"], …]  # bottom-up\n\
         Justification: none inline — fix the dependency or move the\n\
         crate's layer assignment."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        if cx.config.layers.is_empty() {
            return Vec::new();
        }
        let mut layer_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, layer) in cx.config.layers.iter().enumerate() {
            for name in layer {
                layer_of.insert(name.as_str(), i);
            }
        }
        let workspace: BTreeMap<&str, &Manifest> =
            cx.manifests.iter().map(|m| (m.name.as_str(), m)).collect();

        let mut out = Vec::new();
        for m in &cx.manifests {
            let Some(&my_layer) = layer_of.get(m.name.as_str()) else {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::file(&m.path),
                        format!("crate `{}` is not assigned to a layer", m.name),
                    )
                    .with_help("add it to [layering] layers in xtask/xtask.toml"),
                );
                continue;
            };
            for dep in m.normal_deps() {
                if !workspace.contains_key(dep.name.as_str()) {
                    continue; // external dependency: not layered
                }
                let Some(&dep_layer) = layer_of.get(dep.name.as_str()) else {
                    continue; // its own manifest finding covers this
                };
                if dep_layer > my_layer {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            Span::line(&m.path, dep.line),
                            format!(
                                "upward dependency: `{}` (layer {my_layer}) depends on \
                                 `{}` (layer {dep_layer})",
                                m.name, dep.name
                            ),
                        )
                        .with_help(
                            "invert the dependency or move shared code to a lower layer; \
                             the layer order lives in [layering] of xtask/xtask.toml",
                        ),
                    );
                }
            }
        }
        if let Some(cycle) = find_cycle(&cx.manifests) {
            let first = cycle.first().cloned().unwrap_or_default();
            let span = workspace
                .get(first.as_str())
                .map_or_else(|| Span::file("Cargo.toml"), |m| Span::file(&m.path));
            out.push(
                Diagnostic::error(
                    self.id(),
                    span,
                    format!("dependency cycle: {}", cycle.join(" -> ")),
                )
                .with_help("break the cycle; same-layer edges must still form a DAG"),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::workspace::DepEntry;
    use crate::Config;

    fn manifest(name: &str, deps: &[&str]) -> Manifest {
        Manifest {
            name: name.to_string(),
            path: format!("crates/{name}/Cargo.toml"),
            deps: deps
                .iter()
                .enumerate()
                .map(|(i, d)| DepEntry {
                    name: (*d).to_string(),
                    line: i + 10,
                    dev: false,
                })
                .collect(),
        }
    }

    fn config() -> Config {
        Config::from_toml(
            "[layering]\nlayers = [\n  [\"base\"],\n  [\"mid\", \"mid2\"],\n  [\"top\"],\n]\n",
        )
        .expect("config")
    }

    #[test]
    fn conforming_graph_is_clean() {
        let cx = Context {
            manifests: vec![
                manifest("base", &[]),
                manifest("mid", &["base"]),
                manifest("mid2", &["base", "mid"]),
                manifest("top", &["mid", "base"]),
            ],
            config: config(),
            ..Context::default()
        };
        assert!(CrateLayering.run(&cx).is_empty());
    }

    #[test]
    fn upward_edge_is_rejected_at_the_dep_line() {
        let cx = Context {
            manifests: vec![manifest("base", &["top"]), manifest("top", &[])],
            config: config(),
            ..Context::default()
        };
        let diags = CrateLayering.run(&cx);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("upward dependency"), "{diags:?}");
        assert_eq!(diags[0].span, Span::line("crates/base/Cargo.toml", 10));
    }

    #[test]
    fn same_layer_cycle_is_rejected() {
        let cx = Context {
            manifests: vec![manifest("mid", &["mid2"]), manifest("mid2", &["mid"])],
            config: config(),
            ..Context::default()
        };
        let diags = CrateLayering.run(&cx);
        assert!(
            diags.iter().any(|d| d.message.contains("dependency cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn unassigned_crate_is_rejected() {
        let cx = Context {
            manifests: vec![manifest("stray", &[])],
            config: config(),
            ..Context::default()
        };
        let diags = CrateLayering.run(&cx);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not assigned"), "{diags:?}");
    }

    #[test]
    fn no_declared_layers_disables_the_pass() {
        let cx = Context {
            manifests: vec![manifest("anything", &["whatever"])],
            ..Context::default()
        };
        assert!(CrateLayering.run(&cx).is_empty());
    }
}
