//! `state-coverage` — configured (struct, method) contracts: every
//! named field of the struct must be *used* in each method's body.
//!
//! The fleet layer's byte-identical-across-`--jobs` guarantee rests on
//! `snapshot`/`restore`/`merge` implementations transferring every field
//! of their subject struct. Add a field to `BoardSnapshot` and forget it
//! in `Board::restore`, and the golden-digest test may still pass while
//! forked sessions silently leak state between runs. This pass makes
//! the transfer contract static: `[state-coverage]` in `xtask.toml`
//! maps a struct's qualified path to the methods bound by it, and each
//! method body must witness every field — as a dotted projection, a
//! struct-literal key, or a struct-pattern key (see
//! [`crate::fieldindex`]).
//!
//! Intentional gaps are justified *at the field declaration* with
//! `// state: skip(<reason>)` (same line or the comment block directly
//! above), so the exemption is visible where the field lives and is
//! audited in one place. A skip on a field that every bound method
//! accesses anyway is reported as a stale note, so markers ratchet
//! down. Entries whose type or method paths no longer resolve are the
//! `stale-config` pass's job, not this one's.

use crate::diag::{Diagnostic, Span};
use crate::fieldindex::accessed_fields;
use crate::items::{FieldItem, StructItem};
use crate::Context;

/// The pass. See the module docs.
pub struct StateCoverage;

const SKIP_MARKER: &str = "// state: skip(";

/// Whether raw line `line_idx` (0-based) carries a `// state: skip(…)`
/// justification: on the line itself, or in the contiguous run of
/// comment-only lines directly above it.
fn has_skip_justification(raw_lines: &[&str], line_idx: usize) -> bool {
    if raw_lines
        .get(line_idx)
        .is_some_and(|l| l.contains(SKIP_MARKER))
    {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if raw_lines[i].contains(SKIP_MARKER) {
            return true;
        }
    }
    false
}

impl super::Pass for StateCoverage {
    fn id(&self) -> &'static str {
        "state-coverage"
    }

    fn description(&self) -> &'static str {
        "configured snapshot/restore/merge methods must access every field of their struct"
    }

    fn explain(&self) -> &'static str {
        "Checks state-coverage contracts: each configured method must\n\
         access every named field of its struct, so a field added to a\n\
         snapshot/restore/merge type cannot be silently dropped by one\n\
         side of the pair. Also flags stale skips — a `// state: skip`\n\
         on a field that every contract method in fact accesses.\n\
         \n\
         Config (`xtask.toml`):\n\
           [state-coverage]\n\
           \"soc::snapshot::BoardSnapshot\" = [\n\
             \"soc::snapshot::Board::snapshot\",\n\
             \"soc::snapshot::Board::restore\",\n\
           ]\n\
         Justification: `// state: skip(<reason>)` at the field\n\
         declaration (same line or the comment block directly above)."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (ty_qual, method_quals) in &cx.config.state_coverage {
            // Resolve the struct; unresolved entries are stale-config's
            // findings, not ours.
            let Some((ty_file_idx, ty)) = find_struct(cx, ty_qual) else {
                continue;
            };
            let ty_file = &cx.files[ty_file_idx];
            let raw_lines: Vec<&str> = ty_file.text.lines().collect();
            let skipped: Vec<&FieldItem> = ty
                .fields
                .iter()
                .filter(|f| has_skip_justification(&raw_lines, f.line.saturating_sub(1)))
                .collect();
            let mut methods_seen = 0usize;
            // Fields accessed by *every* bound method, for stale-skip
            // detection.
            let mut accessed_by_all: Option<std::collections::BTreeSet<String>> = None;
            for method_qual in method_quals {
                let Some((m_file_idx, item)) = find_fn(cx, method_qual) else {
                    continue;
                };
                methods_seen += 1;
                let accessed = accessed_fields(&cx.files[m_file_idx], &item);
                for field in &ty.fields {
                    if accessed.contains(&field.name)
                        || skipped.iter().any(|s| s.name == field.name)
                    {
                        continue;
                    }
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            Span::line(&cx.files[m_file_idx].rel, item.line),
                            format!(
                                "`{method_qual}` does not access field `{}` of `{ty_qual}`",
                                field.name
                            ),
                        )
                        .with_help(format!(
                            "transfer the field, or add `// state: skip(<reason>)` to its \
                             declaration at {}:{}",
                            ty_file.rel, field.line
                        )),
                    );
                }
                accessed_by_all = Some(match accessed_by_all.take() {
                    None => accessed,
                    Some(prev) => prev.intersection(&accessed).cloned().collect(),
                });
            }
            // Ratchet-down: a skip on a field every bound method accesses
            // anyway is stale.
            if methods_seen > 0 {
                let all = accessed_by_all.unwrap_or_default();
                for field in skipped {
                    if all.contains(&field.name) {
                        out.push(Diagnostic::note(
                            self.id(),
                            Span::line(&ty_file.rel, field.line),
                            format!(
                                "field `{}` of `{ty_qual}` carries `// state: skip` but every \
                                 configured method accesses it; remove the marker",
                                field.name
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// The non-test struct with qualified path `qual`, with its file index.
fn find_struct<'a>(cx: &'a Context, qual: &str) -> Option<(usize, &'a StructItem)> {
    cx.files.iter().enumerate().find_map(|(i, f)| {
        f.items
            .structs
            .iter()
            .find(|s| !s.in_test && s.qual == qual)
            .map(|s| (i, s))
    })
}

/// The non-test function with qualified path `qual`, with its file index.
fn find_fn(cx: &Context, qual: &str) -> Option<(usize, crate::items::FnItem)> {
    cx.files.iter().enumerate().find_map(|(i, f)| {
        f.items
            .fns
            .iter()
            .find(|m| !m.in_test && m.qual == qual)
            .map(|m| (i, m.clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::diag::Severity;
    use crate::source::SourceFile;
    use crate::Config;

    const CONFIG: &str = "[state-coverage]\n\"soc::snap::Snap\" = [\"soc::snap::Board::save\", \"soc::snap::Board::load\"]\n";

    fn cx(src: &str) -> Context {
        Context {
            files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
            config: Config::from_toml(CONFIG).expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn full_transfer_is_clean() {
        let src = "pub struct Snap {\n    pub a: u64,\n    pub b: f64,\n}\npub struct Board;\nimpl Board {\n    pub fn save(&self) -> Snap {\n        Snap { a: 1, b: 2.0 }\n    }\n    pub fn load(&mut self, s: &Snap) {\n        let _ = (s.a, s.b);\n    }\n}\n";
        assert!(StateCoverage.run(&cx(src)).is_empty());
    }

    #[test]
    fn missing_field_is_reported_at_the_method() {
        let src = "pub struct Snap {\n    pub a: u64,\n    pub b: f64,\n}\npub struct Board;\nimpl Board {\n    pub fn save(&self) -> Snap {\n        Snap { a: 1, b: 2.0 }\n    }\n    pub fn load(&mut self, s: &Snap) {\n        let _ = s.a;\n    }\n}\n";
        let diags = StateCoverage.run(&cx(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.line, 10);
        assert!(
            diags[0]
                .message
                .contains("`soc::snap::Board::load` does not access field `b`"),
            "{diags:?}"
        );
        assert!(
            diags[0]
                .help
                .as_deref()
                .is_some_and(|h| h.contains("// state: skip(<reason>)")
                    && h.contains("crates/soc/src/snap.rs:3")),
            "{diags:?}"
        );
    }

    #[test]
    fn skip_justification_covers_the_gap() {
        let src = "pub struct Snap {\n    pub a: u64,\n    // state: skip(derived from a on load)\n    pub b: f64,\n}\npub struct Board;\nimpl Board {\n    pub fn save(&self) -> Snap {\n        Snap { a: 1, b: 2.0 }\n    }\n    pub fn load(&mut self, s: &Snap) {\n        let _ = s.a;\n    }\n}\n";
        assert!(StateCoverage.run(&cx(src)).is_empty());
    }

    #[test]
    fn stale_skip_is_noted() {
        let src = "pub struct Snap {\n    // state: skip(obsolete)\n    pub a: u64,\n}\npub struct Board;\nimpl Board {\n    pub fn save(&self) -> Snap {\n        Snap { a: 1 }\n    }\n    pub fn load(&mut self, s: &Snap) {\n        let _ = s.a;\n    }\n}\n";
        let diags = StateCoverage.run(&cx(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
        assert_eq!(diags[0].span.line, 3);
        assert!(diags[0].message.contains("remove the marker"), "{diags:?}");
    }

    #[test]
    fn unresolved_entries_are_left_to_stale_config() {
        let src = "pub struct Other {\n    pub x: u64,\n}\n";
        assert!(StateCoverage.run(&cx(src)).is_empty());
    }

    #[test]
    fn tuple_struct_positional_fields_are_covered_by_index_projection() {
        let config = "[state-coverage]\n\"soc::snap::Pair\" = [\"soc::snap::Pair::merge\"]\n";
        let src = "pub struct Pair(pub f64, pub f64);\nimpl Pair {\n    pub fn merge(&mut self, o: &Pair) {\n        self.0 += o.0;\n    }\n}\n";
        let cx = Context {
            files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
            config: Config::from_toml(config).expect("config"),
            ..Context::default()
        };
        let diags = StateCoverage.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("does not access field `1`"),
            "{diags:?}"
        );
    }
}
