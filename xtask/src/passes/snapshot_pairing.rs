//! `snapshot-pairing` — every snapshot bound in a configured function
//! must be consumed on every control-flow path.
//!
//! The fork-at-warmup pattern (DESIGN.md §6) snapshots the board once
//! after warmup and restores it before each sweep leg; a path that
//! exits the function with a live, never-used snapshot silently drops
//! the restore and the legs stop being independent. The `state-coverage`
//! lint checks that `snapshot`/`restore` move every field, but nothing
//! checked that the *call sites* stay paired — that is a path property,
//! so it needs the CFG.
//!
//! The analysis is a forward may-analysis over each configured
//! function's [`crate::cfg`] graph. Its state is the set of locals
//! bound from an open call (`let s = board.snapshot();`) that no later
//! statement on the current path has mentioned. Any mention — a
//! `restore(&s)` call, passing it to a helper, returning it — clears
//! the local: the lint is deliberately about snapshots that are bound
//! and then *dead* on some path, which is always a bug, and never
//! about how a live snapshot is consumed. Joins are unions (a snapshot
//! pending on *any* incoming path is pending), and a local still
//! pending at the synthetic exit block — which `return` and `?` edges
//! feed — is reported at its binding line.
//!
//! Config (`xtask.toml`):
//!
//! ```toml
//! [snapshot-pairing]
//! open = "snapshot"     # optional, the default
//! close = "restore"     # optional, named in the message
//! fns = ["campaign::runner::Runner::sweep_frequencies_with"]
//! ```
//!
//! With no `fns` the pass is inert. Intentional leaks carry a
//! `// snapshot: <reason>` justification at the binding line.

use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::dataflow::{self, Analysis};
use crate::diag::{Diagnostic, Span};
use crate::justify::justified;
use crate::lex::{LineIndex, TokenKind};
use crate::source::SourceFile;
use crate::{Config, Context};
use std::collections::BTreeSet;

/// The pass. See the module docs.
pub struct SnapshotPairing;

/// Marker for inline justifications.
const MARKER: &str = "snapshot:";

/// Default open/close method names when the config leaves them empty.
const DEFAULT_OPEN: &str = "snapshot";
const DEFAULT_CLOSE: &str = "restore";

/// Whether the statement is a simple `let name = … .open(…)` binding,
/// returning the bound name.
fn open_binding(file: &SourceFile, cfg: &Cfg, stmt: &Stmt, open: &str) -> Option<String> {
    let toks = cfg.stmt_tokens(stmt);
    if file.tokens[*toks.first()?].text(&file.text) != "let" {
        return None;
    }
    let name = dataflow::assigned_local(&file.text, &file.tokens, cfg, stmt)?;
    // Look for `. open (` anywhere in the statement.
    for w in toks.windows(3) {
        let [a, b, c] = [w[0], w[1], w[2]];
        if file.tokens[a].text(&file.text) == "."
            && file.tokens[b].kind == TokenKind::Ident
            && file.tokens[b].text(&file.text) == open
            && file.tokens[c].text(&file.text) == "("
        {
            return Some(name);
        }
    }
    None
}

/// Identifiers mentioned by a statement (pattern, condition, or body —
/// any mention of a pending snapshot counts as consuming it).
fn mentions(file: &SourceFile, cfg: &Cfg, stmt: &Stmt, pending: &BTreeSet<String>) -> Vec<String> {
    cfg.stmt_tokens(stmt)
        .iter()
        .filter(|&&t| file.tokens[t].kind == TokenKind::Ident)
        .map(|&t| file.tokens[t].text(&file.text))
        .filter(|w| pending.contains(*w))
        .map(str::to_string)
        .collect()
}

struct PairAnalysis<'a> {
    file: &'a SourceFile,
    open: &'a str,
}

impl Analysis for PairAnalysis<'_> {
    /// Locals bound from an open call and not yet mentioned again.
    type State = BTreeSet<String>;

    fn boundary(&self) -> Self::State {
        BTreeSet::new()
    }

    fn transfer(
        &self,
        state: &mut Self::State,
        cfg: &Cfg,
        _block: usize,
        _idx: usize,
        stmt: &Stmt,
    ) {
        if stmt.kind == StmtKind::Struct {
            return;
        }
        for name in mentions(self.file, cfg, stmt, state) {
            state.remove(&name);
        }
        if stmt.kind == StmtKind::Simple {
            if let Some(name) = open_binding(self.file, cfg, stmt, self.open) {
                state.insert(name);
            }
        }
    }

    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool {
        let before = into.len();
        into.extend(other.iter().cloned());
        into.len() != before
    }
}

/// Byte offset of the binding statement for `name`, for anchoring the
/// diagnostic (first matching open binding in the body).
fn binding_lo(file: &SourceFile, cfg: &Cfg, open: &str, name: &str) -> Option<usize> {
    for block in &cfg.blocks {
        for stmt in &block.stmts {
            if open_binding(file, cfg, stmt, open).as_deref() == Some(name) {
                return cfg.stmt_lo(&file.tokens, stmt);
            }
        }
    }
    None
}

/// Runs the analysis over one file, returning finished diagnostics.
pub fn file_findings(file: &SourceFile, config: &Config) -> Vec<Diagnostic> {
    if config.snapshot_fns.is_empty() {
        return Vec::new();
    }
    let open = if config.snapshot_open.is_empty() {
        DEFAULT_OPEN
    } else {
        &config.snapshot_open
    };
    let close = if config.snapshot_close.is_empty() {
        DEFAULT_CLOSE
    } else {
        &config.snapshot_close
    };
    let mut out = Vec::new();
    let index = LineIndex::new(&file.text);
    for (fi, f) in file.items.fns.iter().enumerate() {
        if f.in_test || !config.snapshot_fns.iter().any(|q| q == &f.qual) {
            continue;
        }
        let Some(cfg) = file.cfgs().get(fi).and_then(|c| c.as_ref()) else {
            continue;
        };
        let analysis = PairAnalysis { file, open };
        let states = dataflow::forward(cfg, &analysis);
        let Some(leaked) = states.entry[cfg.exit].as_ref() else {
            continue;
        };
        for name in leaked {
            let lo = binding_lo(file, cfg, open, name);
            let (line, col) = lo.map_or((f.line, 1), |lo| index.line_col(lo));
            if justified(&file.text, line, MARKER) {
                continue;
            }
            out.push(
                Diagnostic::error(
                    "snapshot-pairing",
                    Span::at(&file.rel, line, col),
                    format!(
                        "`{name}` from `{open}()` reaches the end of `{}` unused on some path",
                        f.qual
                    ),
                )
                .with_help(format!(
                    "every path must consume the snapshot (normally via `{close}()`); \
                     if the leak is intentional, justify with `// {MARKER} <reason>`"
                )),
            );
        }
    }
    out
}

impl super::Pass for SnapshotPairing {
    fn id(&self) -> &'static str {
        "snapshot-pairing"
    }

    fn description(&self) -> &'static str {
        "snapshots bound in configured fns must be consumed on every control-flow path"
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn explain(&self) -> &'static str {
        "Checks the fork-at-warmup invariant statically: in each configured\n\
         function, every local bound from an open call\n\
         (`let s = board.snapshot();`) must be mentioned again on every\n\
         control-flow path before the function exits. A snapshot that is\n\
         bound and then dead on some path has silently dropped its\n\
         `restore()` — the sweep legs stop being independent.\n\
         \n\
         The analysis is a forward may-analysis over the function's CFG;\n\
         `return` and `?` edges flow to the synthetic exit, so early exits\n\
         are real paths. Any later mention of the local (a `restore(&s)`,\n\
         a helper call, returning it) consumes it.\n\
         \n\
         Config (`xtask.toml`):\n\
           [snapshot-pairing]\n\
           open = \"snapshot\"    # method opening a pair (default)\n\
           close = \"restore\"    # named in messages (default)\n\
           fns = [\"campaign::runner::Runner::sweep_frequencies_with\"]\n\
         With no `fns` the pass is inert.\n\
         Justification: `// snapshot: <reason>` at the binding line or in\n\
         the comment block directly above it."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        cx.files
            .iter()
            .flat_map(|f| file_findings(f, &cx.config))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(fns: &str) -> Config {
        Config::from_toml(&format!("[snapshot-pairing]\nfns = [{fns}]\n")).expect("config parses")
    }

    fn findings(body: &str) -> Vec<Diagnostic> {
        let src = format!("pub fn sweep(board: &mut Board) {{\n{body}\n}}\n");
        let file = SourceFile::new("crates/campaign/src/runner.rs", src);
        file_findings(&file, &config("\"campaign::runner::sweep\""))
    }

    #[test]
    fn inert_without_configured_fns() {
        let file = SourceFile::new(
            "crates/campaign/src/runner.rs",
            "pub fn sweep(b: &mut Board) { let s = b.snapshot(); }\n",
        );
        assert!(file_findings(&file, &Config::default()).is_empty());
    }

    #[test]
    fn paired_snapshot_is_clean() {
        let d = findings("let snap = board.snapshot();\nboard.restore(&snap);");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn never_restored_snapshot_is_flagged() {
        let d = findings("let snap = board.snapshot();\nboard.step();");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`snap`"), "{}", d[0].message);
        assert_eq!(d[0].span.line, 2);
    }

    #[test]
    fn restore_on_one_branch_only_is_flagged() {
        let d = findings(
            "let snap = board.snapshot();\n\
             if hot {\n    board.restore(&snap);\n}\n\
             board.step();",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("on some path"), "{}", d[0].message);
    }

    #[test]
    fn restore_on_every_branch_is_clean() {
        let d = findings(
            "let snap = board.snapshot();\n\
             if hot {\n    board.restore(&snap);\n} else {\n    consume(snap);\n}\n\
             board.step();",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn early_return_before_restore_is_flagged() {
        let d = findings(
            "let snap = board.snapshot();\n\
             if bad {\n    return;\n}\n\
             board.restore(&snap);",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn restore_inside_loop_body_counts() {
        let d = findings(
            "let snap = board.snapshot();\n\
             for f in freqs {\n    board.restore(&snap);\n    board.run(f);\n}\n\
             finish(snap);",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn justified_leak_is_dropped() {
        let d = findings(
            "// snapshot: kept live for the debugger to inspect\n\
             let snap = board.snapshot();\nboard.step();",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_fns_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn sweep(b: &mut Board) { let s = b.snapshot(); }\n}\n";
        let file = SourceFile::new("crates/campaign/src/runner.rs", src);
        assert!(file_findings(&file, &config("\"campaign::runner::tests::sweep\"")).is_empty());
    }
}
