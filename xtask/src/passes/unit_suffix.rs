//! `unit-suffix` — `pub foo_mhz: f64`-style fields leak raw unit-suffixed
//! scalars through public APIs; typed quantities from
//! `dora_sim_core::units` carry the unit instead.
//!
//! Field extraction comes from the [`crate::items`] item tree, so
//! wrapped declarations, strings, and comments cannot confuse it.
//! Crates still mid-burn-down are allowlisted under `[allow] unit-suffix`
//! in `xtask.toml`. Function *signatures* crossing the units boundary
//! are the `units-escape` pass's job, which shares this pass's suffix
//! list.

use super::units_escape::has_unit_suffix;
use crate::diag::{Diagnostic, Span};
use crate::items::Vis;
use crate::source::SourceFile;
use crate::Context;

/// The pass. See the module docs.
pub struct UnitSuffix;

/// Public `f64` struct fields whose names end in a raw unit suffix, as
/// `(1-based line, field name)`.
///
/// `_per_` compound names (e.g. `resistance_k_per_w`) describe a ratio
/// whose unit is the name, not a disguised scalar quantity, and are
/// exempt.
pub fn suffixed_fields(file: &SourceFile) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for s in file.items.structs.iter().filter(|s| !s.in_test) {
        for field in &s.fields {
            if field.vis == Vis::Pub && field.ty == "f64" && has_unit_suffix(&field.name) {
                found.push((field.line, field.name.clone()));
            }
        }
    }
    found
}

impl super::Pass for UnitSuffix {
    fn id(&self) -> &'static str {
        "unit-suffix"
    }

    fn description(&self) -> &'static str {
        "public f64 fields must not carry raw unit suffixes; use typed quantities"
    }

    fn explain(&self) -> &'static str {
        "Flags public `f64` struct fields whose names carry a raw unit\n\
         suffix (`_s`, `_ms`, `_watts`, `_joules`, …): the unit belongs in\n\
         the type, not the name — use the `dora_sim_core::units` newtypes\n\
         so the compiler enforces what the suffix only documents.\n\
         \n\
         Config: none of its own; use the generic `[allow] unit-suffix`\n\
         path-prefix allowlist for boundary crates (CLI args, exports)\n\
         that must speak raw scalars."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            for (line, name) in suffixed_fields(file) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&file.rel, line),
                        format!("public field `{name}: f64` carries a raw unit suffix"),
                    )
                    .with_help("use a typed quantity from dora_sim_core::units instead"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;

    const FIXTURE: &str = r#"
/// A result row.
pub struct Row {
    /// Core clock in megahertz.
    pub freq_mhz: f64,
    /// A ratio, exempt.
    pub joules_per_s: f64,
    /// Typed, fine.
    pub load_time: Seconds,
}
"#;

    #[test]
    fn public_mhz_field_is_flagged() {
        let found = suffixed_fields(&SourceFile::new("crates/x/src/lib.rs", FIXTURE));
        assert_eq!(found, vec![(5, "freq_mhz".to_string())]);
    }

    #[test]
    fn suffixed_non_f64_and_private_fields_pass() {
        let src = "pub struct S {\n    pub t: Seconds,\n    load_s: f64,\n    pub f_hz: u64,\n}\n";
        assert!(suffixed_fields(&SourceFile::new("crates/x/src/lib.rs", src)).is_empty());
    }

    #[test]
    fn pass_emits_span_carrying_diagnostic() {
        let cx = Context {
            files: vec![SourceFile::new("crates/x/src/lib.rs", FIXTURE)],
            ..Context::default()
        };
        let diags = UnitSuffix.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::line("crates/x/src/lib.rs", 5));
        assert!(diags[0].message.contains("freq_mhz"));
    }
}
