//! `unit-suffix` — `pub foo_mhz: f64`-style fields leak raw unit-suffixed
//! scalars through public APIs; typed quantities from
//! `dora_sim_core::units` carry the unit instead.
//!
//! Crates still mid-burn-down are allowlisted under `[allow] unit-suffix`
//! in `xtask.toml`.

use crate::diag::{Diagnostic, Span};
use crate::Context;

/// The pass. See the module docs.
pub struct UnitSuffix;

const BANNED_SUFFIXES: [&str; 11] = [
    "_mhz", "_ghz", "_khz", "_hz", "_ms", "_s", "_mw", "_w", "_j", "_c", "_mpki",
];

/// Public `f64` struct fields whose names end in a raw unit suffix, as
/// `(1-based line, field name)`.
///
/// `_per_` compound names (e.g. `resistance_k_per_w`) describe a ratio
/// whose unit is the name, not a disguised scalar quantity, and are
/// exempt.
pub fn suffixed_fields(stripped: &str) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let Some((name, ty)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let ty = ty.trim().trim_end_matches(',');
        if ty != "f64" || name.contains('(') || name.contains("_per_") {
            continue;
        }
        if BANNED_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            found.push((i + 1, name.to_string()));
        }
    }
    found
}

impl super::Pass for UnitSuffix {
    fn id(&self) -> &'static str {
        "unit-suffix"
    }

    fn description(&self) -> &'static str {
        "public f64 fields must not carry raw unit suffixes; use typed quantities"
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            for (line, name) in suffixed_fields(&file.stripped) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&file.rel, line),
                        format!("public field `{name}: f64` carries a raw unit suffix"),
                    )
                    .with_help("use a typed quantity from dora_sim_core::units instead"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::{library_code, SourceFile};

    const FIXTURE: &str = r#"
/// A result row.
pub struct Row {
    /// Core clock in megahertz.
    pub freq_mhz: f64,
    /// A ratio, exempt.
    pub joules_per_s: f64,
    /// Typed, fine.
    pub load_time: Seconds,
}
"#;

    #[test]
    fn public_mhz_field_is_flagged() {
        let found = suffixed_fields(&library_code(FIXTURE));
        assert_eq!(found, vec![(5, "freq_mhz".to_string())]);
    }

    #[test]
    fn suffixed_non_f64_and_private_fields_pass() {
        let src = "pub struct S {\n    pub t: Seconds,\n    load_s: f64,\n    pub f_hz: u64,\n}\n";
        assert!(suffixed_fields(&library_code(src)).is_empty());
    }

    #[test]
    fn pass_emits_span_carrying_diagnostic() {
        let cx = Context {
            files: vec![SourceFile::new("crates/x/src/lib.rs", FIXTURE)],
            ..Context::default()
        };
        let diags = UnitSuffix.run(&cx);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span, Span::line("crates/x/src/lib.rs", 5));
        assert!(diags[0].message.contains("freq_mhz"));
    }
}
