//! `merge-associativity` — raw `f64` accumulation in shard-merge code.
//!
//! Fleet aggregation folds shard results in a fixed order so reports
//! are byte-identical across `--jobs 1/N/auto`; the O(shards) streaming
//! story additionally wants each fold step to be associative enough to
//! re-shard. The mergeable sketch types (`FixedHistogram`, `Running`,
//! …) own that property and carry property tests; a raw `f64 +=` or
//! `.sum()` sneaking into merge-reachable code bypasses them and is
//! exactly where a future refactor reintroduces order sensitivity.
//!
//! The pass walks the call graph forward from the configured
//! `[merge-associativity] sink_fns` and inside every reached non-test
//! function flags (a) `recv.field += …` where `field` is declared `f64`
//! on the enclosing impl's struct, and (b) `.sum(` / `.sum::<` iterator
//! folds. Methods of the configured `mergeable_types` are exempt (they
//! *implement* the blessed accumulators), as is accumulation into typed
//! unit fields (`Joules`, …) whose `+` is the newtype's. Deliberate raw
//! accumulation is justified in place with `// merge: <reason>` (same
//! line or the comment block directly above).

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Span};
use crate::lex::{LineIndex, TokenKind};
use crate::Context;
use std::collections::BTreeMap;

/// The pass. See the module docs.
pub struct MergeAssociativity;

const MARKER: &str = "// merge:";

/// Whether raw line `line_idx` (0-based) carries a `// merge:`
/// justification: same line, or the contiguous comment block above.
fn has_merge_justification(raw_lines: &[&str], line_idx: usize) -> bool {
    if raw_lines.get(line_idx).is_some_and(|l| l.contains(MARKER)) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if raw_lines[i].contains(MARKER) {
            return true;
        }
    }
    false
}

impl super::Pass for MergeAssociativity {
    fn id(&self) -> &'static str {
        "merge-associativity"
    }

    fn description(&self) -> &'static str {
        "no raw f64 accumulation in code reachable from shard-merge sinks"
    }

    fn explain(&self) -> &'static str {
        "Walks the call graph from the configured shard-merge sinks and\n\
         flags raw `f64` accumulation (`+=`, `sum()`, fold-style updates)\n\
         reachable from them: float addition is not associative, so\n\
         accumulating in shard-arrival order makes fleet reports depend\n\
         on scheduling. Accumulation through a declared mergeable sketch\n\
         type is trusted.\n\
         \n\
         Config (`xtask.toml`):\n\
           [merge-associativity]\n\
           sink_fns = [\"campaign::fleet::report::FleetReport::merge\"]\n\
           mergeable_types = [\"FixedHistogram\", \"Running\"]\n\
         Justification: `// merge: <reason>` on the flagged line or in\n\
         the comment block directly above it (say why the fold order is\n\
         stable)."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        if cx.config.merge_sink_fns.is_empty() {
            return Vec::new();
        }
        let graph = CallGraph::build(cx);
        let sinks: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| cx.config.merge_sink_fns.iter().any(|s| s == &n.item.qual))
            .map(|(i, _)| i)
            .collect();
        if sinks.is_empty() {
            // Unresolvable sink quals are stale-config findings.
            return Vec::new();
        }
        let reach = graph.forward(&sinks);
        // (struct name, field name) → declared type, for typing `+=`
        // left-hand sides.
        let mut field_ty: BTreeMap<(String, String), String> = BTreeMap::new();
        for file in &cx.files {
            for s in file.items.structs.iter().filter(|s| !s.in_test) {
                for f in &s.fields {
                    field_ty.insert((s.name.clone(), f.name.clone()), f.ty.clone());
                }
            }
        }
        let mut out = Vec::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            if !reach.contains(idx) || node.item.in_test {
                continue;
            }
            if node
                .item
                .self_ty
                .as_deref()
                .is_some_and(|ty| cx.config.merge_mergeable_types.iter().any(|m| m == ty))
            {
                continue;
            }
            let file = &cx.files[node.file];
            let src = file.text.as_str();
            let raw_lines: Vec<&str> = src.lines().collect();
            let index = LineIndex::new(&file.text);
            let Some((body_lo, body_hi)) = node.item.body else {
                continue;
            };
            let code: Vec<usize> = (body_lo..body_hi.min(file.tokens.len()))
                .filter(|&i| !file.tokens[i].kind.is_trivia())
                .collect();
            let text = |p: usize| -> &str { code.get(p).map_or("", |&i| file.tokens[i].text(src)) };
            let kind = |p: usize| code.get(p).map(|&i| file.tokens[i].kind);
            let is_p = |p: usize, s: &str| kind(p) == Some(TokenKind::Punct) && text(p) == s;
            let path = reach
                .path_to(idx)
                .map(|p| graph.render_path(&p))
                .unwrap_or_else(|| node.item.qual.clone());
            let mut flag = |what: String, byte: usize| {
                let line = index.line(byte);
                if has_merge_justification(&raw_lines, line.saturating_sub(1)) {
                    return;
                }
                out.push(
                    Diagnostic::error(
                        self.id(),
                        Span::line(&file.rel, line),
                        format!(
                            "raw f64 accumulation `{what}` in `{}` (merge-reachable via `{path}`)",
                            node.item.qual
                        ),
                    )
                    .with_help(
                        "accumulate through a mergeable sketch type, or justify the fixed \
                         fold order with `// merge: <reason>`",
                    ),
                );
            };
            for p in 0..code.len() {
                // `recv.field += …` with `field` declared `f64` on the
                // enclosing impl's struct.
                if is_p(p, "+")
                    && is_p(p + 1, "=")
                    && p >= 2
                    && kind(p - 1) == Some(TokenKind::Ident)
                    && is_p(p - 2, ".")
                {
                    let field = text(p - 1);
                    let declared = node
                        .item
                        .self_ty
                        .as_deref()
                        .and_then(|ty| field_ty.get(&(ty.to_string(), field.to_string())));
                    if declared.is_some_and(|ty| ty == "f64") {
                        let byte = code.get(p - 1).map_or(0, |&i| file.tokens[i].lo);
                        flag(format!(".{field} +="), byte);
                    }
                }
                // `.sum(` / `.sum::<…>(` iterator folds.
                if kind(p) == Some(TokenKind::Ident)
                    && text(p) == "sum"
                    && p >= 1
                    && is_p(p - 1, ".")
                    && (is_p(p + 1, "(") || (is_p(p + 1, ":") && is_p(p + 2, ":")))
                {
                    let byte = code.get(p).map_or(0, |&i| file.tokens[i].lo);
                    flag(".sum()".to_string(), byte);
                }
            }
        }
        out.sort_by(|a, b| {
            (&a.span.file, a.span.line)
                .cmp(&(&b.span.file, b.span.line))
                .then_with(|| a.message.cmp(&b.message))
        });
        out.dedup_by(|a, b| {
            a.span.file == b.span.file && a.span.line == b.span.line && a.message == b.message
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::diag::Severity;
    use crate::source::SourceFile;
    use crate::Config;

    const CONFIG: &str = "[merge-associativity]\nsink_fns = [\"soc::agg::Report::merge\"]\nmergeable_types = [\"Hist\"]\n";

    fn cx(src: &str) -> Context {
        Context {
            files: vec![SourceFile::new("crates/soc/src/agg.rs", src)],
            config: Config::from_toml(CONFIG).expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn raw_f64_add_assign_in_sink_is_flagged() {
        let src = "pub struct Report {\n    pub total: f64,\n    pub count: u64,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.total += other.total;\n        self.count += other.count;\n    }\n}\n";
        let diags = MergeAssociativity.run(&cx(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.line, 7);
        assert!(
            diags[0]
                .message
                .contains("`.total +=` in `soc::agg::Report::merge`"),
            "{diags:?}"
        );
        assert!(
            diags[0]
                .help
                .as_deref()
                .is_some_and(|h| h.contains("// merge: <reason>")),
            "{diags:?}"
        );
    }

    #[test]
    fn reachable_helper_sum_is_flagged_with_path() {
        let src = "pub struct Report {\n    pub total: f64,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.total = combine(self.total, other.total);\n    }\n}\nfn combine(a: f64, b: f64) -> f64 {\n    [a, b].iter().sum()\n}\n";
        let diags = MergeAssociativity.run(&cx(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].span.line, 10);
        assert!(
            diags[0]
                .message
                .contains("via `soc::agg::Report::merge -> soc::agg::combine`"),
            "{diags:?}"
        );
    }

    #[test]
    fn mergeable_type_methods_and_unreachable_code_are_exempt() {
        let src = "pub struct Hist {\n    pub sum: f64,\n}\nimpl Hist {\n    pub fn absorb(&mut self, other: &Hist) {\n        self.sum += other.sum;\n    }\n}\npub struct Report {\n    pub hist: Hist,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.hist.absorb(&other.hist);\n    }\n}\npub fn elsewhere(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n";
        assert!(MergeAssociativity.run(&cx(src)).is_empty());
    }

    #[test]
    fn merge_justification_is_honored() {
        let src = "pub struct Report {\n    pub total: f64,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        // merge: shards fold in fixed index order; addition order is stable\n        self.total += other.total;\n    }\n}\n";
        assert!(MergeAssociativity.run(&cx(src)).is_empty());
    }

    #[test]
    fn typed_unit_fields_are_not_raw_f64() {
        let src = "pub struct Joules(f64);\npub struct Report {\n    pub energy: Joules,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.energy += other.energy;\n    }\n}\n";
        assert!(MergeAssociativity.run(&cx(src)).is_empty());
    }
}
