//! `probe-purity` — the probe-off stepping hot path stays free of
//! allocation and formatting.
//!
//! The probe bus's whole contract is that observation costs nothing when
//! nobody listens: events are built inside closures that
//! `ProbeBus::emit_with` never calls while no probe is attached. That
//! contract dies quietly the moment someone writes `format!(..)` or
//! `.to_string()` *outside* such a closure on the per-quantum path — the
//! old string trace ring allocated on every quantum retire exactly this
//! way, probes or not.
//!
//! This pass scans the files listed under `[probe-purity] hot_paths` in
//! `xtask.toml` (on the lexer-derived views: comments, `#[cfg(test)]`
//! items, and all textual literals blanked exactly) for
//! allocation/formatting constructs. A site that is
//! genuinely lazy (inside an `emit_with` closure) or one-time (a
//! constructor) carries an `// alloc:` justification on the same line or
//! in the comment block directly above, mirroring sync-hygiene's
//! `// ordering:` convention.

use crate::diag::{Diagnostic, Span};
use crate::source::blank_strings;
use crate::Context;

/// The pass. See the module docs.
pub struct ProbePurity;

/// Allocation/formatting constructs banned on the probe-off hot path.
const ALLOC_NEEDLES: [&str; 9] = [
    "format!",
    "to_string",
    "to_owned",
    "String::from",
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "collect",
];

/// Byte offsets of `needle` in `line` at identifier boundaries.
fn token_columns(line: &str, needle: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(idx) = line[from..].find(needle) {
        let at = from + idx;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        let end = at + needle.len();
        let after_ok = end >= line.len() || {
            let b = bytes[end];
            !b.is_ascii_alphanumeric() && b != b'_' && b != b'!'
        };
        if before_ok && after_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

/// Whether raw line `line_idx` (0-based) carries an `// alloc:`
/// justification: on the line itself, or in the contiguous run of
/// comment-only lines directly above it.
fn has_alloc_justification(raw_lines: &[&str], line_idx: usize) -> bool {
    let marker = "// alloc:";
    if raw_lines.get(line_idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if raw_lines[i].contains(marker) {
            return true;
        }
    }
    false
}

impl super::Pass for ProbePurity {
    fn id(&self) -> &'static str {
        "probe-purity"
    }

    fn description(&self) -> &'static str {
        "probe-off hot-path files allocate/format only at `// alloc:`-justified sites"
    }

    fn explain(&self) -> &'static str {
        "Scans the configured probe-off hot-path files for allocation and\n\
         formatting (`String::new`, `to_string`, `format!`, `Vec::new`,\n\
         collectors, …): the measurement loop must not allocate when\n\
         probes are off, or probe overhead leaks into the measured\n\
         energy. Each intentional site says why it is lazy or one-time.\n\
         \n\
         Config (`xtask.toml`):\n\
           [probe-purity]\n\
           hot_paths = [\"crates/soc/src/probe.rs\"]  # path prefixes\n\
         Justification: `// alloc: <reason>` on the flagged line or in\n\
         the comment block directly above it."
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &cx.files {
            if !cx
                .config
                .probe_hot_paths
                .iter()
                .any(|p| file.rel.starts_with(p.as_str()))
            {
                continue;
            }
            let blanked = blank_strings(&file.stripped);
            let raw_lines: Vec<&str> = file.text.lines().collect();
            for (i, line) in blanked.lines().enumerate() {
                for needle in ALLOC_NEEDLES {
                    for col in token_columns(line, needle) {
                        if !has_alloc_justification(&raw_lines, i) {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    Span::at(&file.rel, i + 1, col + 1),
                                    format!(
                                        "`{needle}` on the probe-off hot path without an \
                                         `// alloc:` justification"
                                    ),
                                )
                                .with_help(
                                    "build the value lazily inside a ProbeBus::emit_with \
                                     closure or a reusable buffer; if the site is genuinely \
                                     lazy or one-time, say why in an `// alloc:` comment on \
                                     the same line or directly above",
                                ),
                            );
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::source::SourceFile;
    use crate::Config;

    fn context(rel: &str, text: &str) -> Context {
        Context {
            files: vec![SourceFile::new(rel, text)],
            config: Config::from_toml(
                "[probe-purity]\nhot_paths = [\"crates/soc/src/board.rs\"]\n",
            )
            .expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn unjustified_allocation_on_a_hot_path_is_flagged() {
        let cx = context(
            "crates/soc/src/board.rs",
            "fn step(&mut self) {\n    self.record(format!(\"dvfs: -> {}\", f));\n}\n",
        );
        let diags = ProbePurity.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("format!"));
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn justified_sites_pass_same_line_and_block_above() {
        let same_line = context(
            "crates/soc/src/board.rs",
            "fn new() -> Vec<u8> {\n    Vec::new() // alloc: one-time construction\n}\n",
        );
        assert!(ProbePurity.run(&same_line).is_empty());

        let block_above = context(
            "crates/soc/src/board.rs",
            "fn assign(&mut self) {\n    // alloc: lazy — only runs while a probe listens.\n    let name = t.name().to_string();\n}\n",
        );
        assert!(ProbePurity.run(&block_above).is_empty());
    }

    #[test]
    fn unrelated_comment_above_does_not_justify() {
        let cx = context(
            "crates/soc/src/board.rs",
            "fn f() {\n    // copies the name\n    let name = t.name().to_string();\n}\n",
        );
        let diags = ProbePurity.run(&cx);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("to_string"));
    }

    #[test]
    fn files_off_the_hot_path_are_out_of_scope() {
        let cx = context(
            "crates/campaign/src/runner.rs",
            "fn f() -> String {\n    format!(\"{}+{}\", a, b)\n}\n",
        );
        assert!(ProbePurity.run(&cx).is_empty());
    }

    #[test]
    fn tests_comments_and_strings_do_not_count() {
        let cx = context(
            "crates/soc/src/board.rs",
            "// format! is banned here\nconst X: &str = \"format!\";\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = format!(\"ok\"); }\n}\n",
        );
        assert!(ProbePurity.run(&cx).is_empty());
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(token_columns("reformat!(x)", "format!").is_empty());
        assert!(token_columns("a.to_string_lossy()", "to_string").is_empty());
        assert_eq!(
            token_columns("let s = x.to_string();", "to_string"),
            vec![10]
        );
        // `collect` matches both bare calls and turbofish forms.
        assert_eq!(token_columns(".collect::<Vec<_>>()", "collect"), vec![1]);
    }
}
