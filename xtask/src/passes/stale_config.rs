//! `stale-config` — every path, function, and type named in
//! `xtask.toml` must still resolve against the loaded tree.
//!
//! Allowlists and scan scopes rot silently: a file rename strips an
//! `[allow]` prefix of its targets, a function rename orphans a
//! `[panic-reachability]` entry, a struct rename turns a
//! `[state-coverage]` contract into a no-op — and every one of those
//! *weakens* the gate without failing it. This pass generalizes PR-7's
//! per-pass stale-entry notes into one sweep: lint ids in `[levels]` /
//! `[allow]` must be registered passes, path prefixes must match at
//! least one loaded file, package names in `[layering]` must exist in a
//! manifest, and qualified function/struct paths must resolve in the
//! item tree. Findings are errors — a config that names ghosts fails
//! the run, so the file can only describe the tree as it is.
//!
//! `[units-escape] unit_types` is exempt: the unit newtypes are
//! macro-generated and invisible to item extraction by design.
//! Contexts without loaded files or manifests (single-file fixtures)
//! skip the checks that need them.

use crate::diag::{Diagnostic, Span};
use crate::Context;
use std::collections::BTreeSet;

/// The pass. See the module docs.
pub struct StaleConfig;

const TOML_SPAN: &str = "xtask/xtask.toml";

impl super::Pass for StaleConfig {
    fn id(&self) -> &'static str {
        "stale-config"
    }

    fn description(&self) -> &'static str {
        "every path, function, and type named in xtask.toml must resolve against the tree"
    }

    fn explain(&self) -> &'static str {
        "The meta-lint: every path prefix, qualified function, type, and\n\
         lint id named in `xtask.toml` must still resolve against the\n\
         tree, so a rename or deletion cannot silently turn a contract\n\
         into a no-op. Also checks the registry itself — every pass must\n\
         ship non-empty `lint --explain` text.\n\
         \n\
         Config: it reads *all* of `xtask.toml`; it has no keys of its\n\
         own. Justification: none — fix or delete the stale entry."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let lint_ids: BTreeSet<&'static str> = super::registry().iter().map(|p| p.id()).collect();
        let fn_quals: BTreeSet<&str> = cx
            .files
            .iter()
            .flat_map(|f| f.items.fns.iter())
            .filter(|m| !m.in_test)
            .map(|m| m.qual.as_str())
            .collect();
        let struct_quals: BTreeSet<&str> = cx
            .files
            .iter()
            .flat_map(|f| f.items.structs.iter())
            .filter(|s| !s.in_test)
            .map(|s| s.qual.as_str())
            .collect();
        let struct_names: BTreeSet<&str> = cx
            .files
            .iter()
            .flat_map(|f| f.items.structs.iter())
            .filter(|s| !s.in_test)
            .map(|s| s.name.as_str())
            .collect();
        let have_files = !cx.files.is_empty();
        let mut err = |msg: String| {
            out.push(
                Diagnostic::error(StaleConfig.id(), Span::file(TOML_SPAN), msg).with_help(
                    "update the entry to match the tree, or delete it if the target is gone",
                ),
            );
        };

        // Lint ids keying [levels] and [allow].
        let level_keys: Vec<(&str, &String)> =
            cx.config.levels.keys().map(|k| ("levels", k)).collect();
        let allow_keys: Vec<(&str, &String)> =
            cx.config.allow.keys().map(|k| ("allow", k)).collect();
        {
            for (table, lint) in level_keys.into_iter().chain(allow_keys) {
                if !lint_ids.contains(lint.as_str()) {
                    err(format!("[{table}] names unknown lint `{lint}`"));
                }
            }
        }
        // Path prefixes must match at least one loaded file.
        if have_files {
            let matches_some = |prefix: &str| cx.files.iter().any(|f| f.rel.starts_with(prefix));
            for (what, prefixes) in [
                (
                    "[allow]",
                    cx.config.allow.values().flatten().collect::<Vec<_>>(),
                ),
                (
                    "[determinism] export_paths",
                    cx.config.determinism_paths.iter().collect(),
                ),
                (
                    "[constants] modules",
                    cx.config.constants_modules.iter().collect(),
                ),
                (
                    "[sync-hygiene] facade_paths",
                    cx.config.sync_facade_paths.iter().collect(),
                ),
                (
                    "[probe-purity] hot_paths",
                    cx.config.probe_hot_paths.iter().collect(),
                ),
                (
                    "[units-escape] boundary_paths",
                    cx.config.units_boundary_paths.iter().collect(),
                ),
            ] {
                for prefix in prefixes {
                    if !matches_some(prefix) {
                        err(format!("{what} prefix `{prefix}` matches no loaded file"));
                    }
                }
            }
        }
        // Layer entries are package names from the workspace manifests.
        if !cx.manifests.is_empty() {
            let packages: BTreeSet<&str> = cx.manifests.iter().map(|m| m.name.as_str()).collect();
            for layer in &cx.config.layers {
                for pkg in layer {
                    if !packages.contains(pkg.as_str()) {
                        err(format!("[layering] names unknown package `{pkg}`"));
                    }
                }
            }
        }
        // Qualified function paths.
        if have_files {
            for (what, quals) in [
                ("[panic-reachability] allow", &cx.config.panic_allow),
                (
                    "[determinism-taint] source_fns",
                    &cx.config.taint_source_fns,
                ),
                ("[merge-associativity] sink_fns", &cx.config.merge_sink_fns),
                ("[snapshot-pairing] fns", &cx.config.snapshot_fns),
            ] {
                for qual in quals {
                    if !fn_quals.contains(qual.as_str()) {
                        err(format!("{what} entry `{qual}` resolves to no function"));
                    }
                }
            }
            for (ty, methods) in &cx.config.state_coverage {
                if !struct_quals.contains(ty.as_str()) {
                    err(format!("[state-coverage] key `{ty}` resolves to no struct"));
                }
                for m in methods {
                    if !fn_quals.contains(m.as_str()) {
                        err(format!(
                            "[state-coverage] \"{ty}\" entry `{m}` resolves to no function"
                        ));
                    }
                }
            }
            for ty in &cx.config.merge_mergeable_types {
                if !struct_names.contains(ty.as_str()) {
                    err(format!(
                        "[merge-associativity] mergeable_types entry `{ty}` resolves to no struct"
                    ));
                }
            }
            for qual in cx.config.probe_balance.keys() {
                if !fn_quals.contains(qual.as_str()) {
                    err(format!(
                        "[probe-balance] key `{qual}` resolves to no function"
                    ));
                }
            }
        }
        // The registry itself: a pass without --explain text is a
        // documentation contract silently dropped.
        for pass in super::registry() {
            if pass.explain().trim().is_empty() {
                err(format!(
                    "pass `{}` ships empty `lint --explain` text",
                    pass.id()
                ));
            }
        }
        out
    }

    /// PR 9: new table validations ([snapshot-pairing] fns,
    /// [probe-balance] keys) and the registry explain-text check.
    fn version(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;
    use crate::diag::Severity;
    use crate::source::SourceFile;
    use crate::Config;

    fn cx(config: &str) -> Context {
        Context {
            files: vec![SourceFile::new(
                "crates/soc/src/agg.rs",
                "pub struct Report {\n    pub total: f64,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        let _ = other.total;\n    }\n}\n",
            )],
            config: Config::from_toml(config).expect("config"),
            ..Context::default()
        }
    }

    #[test]
    fn resolvable_entries_are_clean() {
        let diags = StaleConfig.run(&cx(
            "[allow]\nunit-suffix = [\"crates/soc/\"]\n\n[state-coverage]\n\"soc::agg::Report\" = [\"soc::agg::Report::merge\"]\n\n[merge-associativity]\nsink_fns = [\"soc::agg::Report::merge\"]\nmergeable_types = [\"Report\"]\n",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_lint_id_is_flagged() {
        let diags = StaleConfig.run(&cx("[levels]\nno-such-lint = \"warn\"\n"));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.file, "xtask/xtask.toml");
        assert!(
            diags[0].message.contains("unknown lint `no-such-lint`"),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_path_prefix_is_flagged() {
        let diags = StaleConfig.run(&cx("[allow]\nunit-suffix = [\"crates/gone/\"]\n"));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("prefix `crates/gone/` matches no loaded file"),
            "{diags:?}"
        );
        assert!(
            diags[0]
                .help
                .as_deref()
                .is_some_and(|h| h.contains("delete it if the target is gone")),
            "{diags:?}"
        );
    }

    #[test]
    fn orphaned_function_and_struct_quals_are_flagged() {
        let diags = StaleConfig.run(&cx(
            "[panic-reachability]\nallow = [\"soc::agg::gone\"]\n\n[state-coverage]\n\"soc::agg::Ghost\" = [\"soc::agg::Report::merge\"]\n\n[merge-associativity]\nsink_fns = [\"soc::agg::Report::merge\"]\nmergeable_types = [\"Ghost\"]\n",
        ));
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(msgs
            .iter()
            .any(|m| m.contains("`soc::agg::gone` resolves to no function")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("key `soc::agg::Ghost` resolves to no struct")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("mergeable_types entry `Ghost`")));
    }

    #[test]
    fn orphaned_dataflow_contracts_are_flagged() {
        let diags = StaleConfig.run(&cx(
            "[snapshot-pairing]\nfns = [\"soc::agg::gone\"]\n\n[probe-balance]\n\"soc::agg::ghost\" = [\"attach\", \"detach\"]\n",
        ));
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(msgs
            .iter()
            .any(|m| m.contains("[snapshot-pairing] fns entry `soc::agg::gone`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("[probe-balance] key `soc::agg::ghost`")));
    }

    #[test]
    fn unit_types_are_exempt_and_empty_contexts_skip_tree_checks() {
        let cx = Context {
            config: Config::from_toml(
                "[units-escape]\nboundary_paths = [\"crates/gone/\"]\nunit_types = [\"NotAStruct\"]\n\n[panic-reachability]\nallow = [\"ghost::fn\"]\n",
            )
            .expect("config"),
            ..Context::default()
        };
        assert!(StaleConfig.run(&cx).is_empty());
    }
}
