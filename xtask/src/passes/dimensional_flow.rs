//! `dimensional-flow` — unit dimensions tracked through function
//! bodies; mixed-dimension arithmetic is an error.
//!
//! The typed-units layer (`dora_sim_core::units`) makes signatures
//! dimension-safe, and `units-escape` polices declarations — but a raw
//! `f64` laundered through `.value()` *inside* a body can still cross
//! dimensions silently: seconds added to watts, a raw W·s product
//! stored as "energy" without ever becoming a `Joules`, a raw seconds
//! value fed to `Watts::new`. This pass runs a forward abstract
//! interpretation ([`crate::dataflow`]) over each function's CFG
//! ([`crate::cfg`]), giving every local one of the abstract values
//!
//! - `Unit(d)` — a typed quantity of dimension `d`,
//! - `Raw(d)` — an `f64` known to carry dimension `d` (a `.value()` /
//!   `.0` projection of a typed quantity),
//! - `Plain` — a dimensionless number (literals),
//! - `Unknown` — anything else (joins of different values included),
//!
//! and errors on:
//!
//! - `+`/`-` (or `+=`/`-=`) between raw values of different dimensions;
//! - comparisons (`<`, `>`, `<=`, `>=`, `==`, `!=`, `.min`/`.max`/
//!   `.clamp`) between different known dimensions;
//! - a raw value of one dimension flowing into a *different*
//!   dimension's constructor (`Watts::new(raw_seconds)`);
//! - a Watts×Seconds product where either side is raw — energy must be
//!   rebuilt as `Joules` through the typed `Watts * Seconds` impl.
//!
//! Division follows the units crate's quotient algebra (`J/s → W`,
//! `J/W → s`, `Wh/W → s`, `d/d →` dimensionless) and is never an
//! error on its own. Everything untracked is `Unknown` and silent:
//! the pass only speaks when *both* sides of an operation are known,
//! so it has no false positives on code outside the units vocabulary.
//!
//! The dimension vocabulary is fixed (the eight `quantity!` newtypes);
//! `lint --explain dimensional-flow` documents it. Intentional escapes
//! carry a `// dim: <reason>` justification on the flagged line or in
//! the comment block above it.
//!
//! Conservatism inherited from the CFG layer: control flow embedded in
//! larger expressions and block-bodied closures are opaque
//! (expression-bodied closures *are* evaluated), and `match` scrutinee
//! / `if` condition expressions are checked like any other.

use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::dataflow::{self, Analysis};
use crate::diag::{Diagnostic, Span};
use crate::justify::justified;
use crate::lex::{LineIndex, Token, TokenKind};
use crate::source::SourceFile;
use crate::Context;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// The pass. See the module docs.
pub struct DimensionalFlow;

/// Marker for inline justifications.
const MARKER: &str = "dim:";

/// The eight unit dimensions of `dora_sim_core::units`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dim {
    Seconds,
    Watts,
    Joules,
    Celsius,
    Mpki,
    Ppw,
    Utilization,
    WattHours,
}

impl Dim {
    fn name(self) -> &'static str {
        match self {
            Dim::Seconds => "Seconds",
            Dim::Watts => "Watts",
            Dim::Joules => "Joules",
            Dim::Celsius => "Celsius",
            Dim::Mpki => "Mpki",
            Dim::Ppw => "Ppw",
            Dim::Utilization => "Utilization",
            Dim::WattHours => "WattHours",
        }
    }

    fn from_name(s: &str) -> Option<Dim> {
        // Accept a trailing path segment (`units::Seconds`).
        let last = s.rsplit("::").next().unwrap_or(s);
        match last {
            "Seconds" => Some(Dim::Seconds),
            "Watts" => Some(Dim::Watts),
            "Joules" => Some(Dim::Joules),
            "Celsius" => Some(Dim::Celsius),
            "Mpki" => Some(Dim::Mpki),
            "Ppw" => Some(Dim::Ppw),
            "Utilization" => Some(Dim::Utilization),
            "WattHours" => Some(Dim::WattHours),
            _ => None,
        }
    }

    /// The units crate's quotient algebra: `self / other`.
    fn quotient(self, other: Dim) -> Option<DimOrPlain> {
        if self == other {
            return Some(DimOrPlain::Plain);
        }
        match (self, other) {
            (Dim::Joules, Dim::Seconds) => Some(DimOrPlain::Dim(Dim::Watts)),
            (Dim::Joules, Dim::Watts) => Some(DimOrPlain::Dim(Dim::Seconds)),
            (Dim::WattHours, Dim::Watts) => Some(DimOrPlain::Dim(Dim::Seconds)),
            _ => None,
        }
    }
}

/// A quotient result: a dimension or a dimensionless ratio.
#[derive(Debug, Clone, Copy)]
enum DimOrPlain {
    Dim(Dim),
    Plain,
}

/// Abstract value of an expression or local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abs {
    /// A typed quantity of this dimension.
    Unit(Dim),
    /// A raw `f64` known to carry this dimension.
    Raw(Dim),
    /// A dimensionless number.
    Plain,
    /// Untracked.
    Unknown,
}

impl Abs {
    fn dim(self) -> Option<(Dim, bool)> {
        match self {
            Abs::Unit(d) => Some((d, false)),
            Abs::Raw(d) => Some((d, true)),
            _ => None,
        }
    }
}

/// One error site: anchor byte offset, message, help.
type Finding = (usize, String, String);

/// The expression evaluator: a recursive-descent parser over a code
/// token slice that computes [`Abs`] values and records findings.
struct Eval<'a> {
    src: &'a str,
    toks: &'a [Token],
    code: &'a [usize],
    pos: usize,
    locals: &'a BTreeMap<String, Abs>,
    errors: &'a mut BTreeSet<Finding>,
}

impl<'a> Eval<'a> {
    fn tok(&self, p: usize) -> Option<&'a Token> {
        self.code.get(p).map(|&i| &self.toks[i])
    }

    fn text(&self, p: usize) -> Option<&'a str> {
        self.tok(p).map(|t| t.text(self.src))
    }

    fn kind(&self, p: usize) -> Option<TokenKind> {
        self.tok(p).map(|t| t.kind)
    }

    fn is_p(&self, p: usize, s: &str) -> bool {
        self.tok(p)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == s)
    }

    fn adjacent(&self, p: usize) -> bool {
        match (self.tok(p), self.tok(p + 1)) {
            (Some(a), Some(b)) => a.hi == b.lo,
            _ => false,
        }
    }

    fn lo(&self, p: usize) -> usize {
        self.tok(p).map_or(0, |t| t.lo)
    }

    fn err(&mut self, at: usize, msg: String, help: &str) {
        self.errors.insert((self.lo(at), msg, help.to_owned()));
    }

    /// Skips past the bracket group opening at `pos` (any of `(`,
    /// `[`, `{`).
    fn skip_group(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.code.len() {
            match self.text(self.pos) {
                Some("(") | Some("[") | Some("{") => depth += 1,
                Some(")") | Some("]") | Some("}") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a `::<…>` turbofish (pos at `<`).
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.code.len() {
            if self.is_p(self.pos, "<") {
                depth += 1;
            } else if self.is_p(self.pos, ">") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// The comparison operator starting at `pos` (`<`, `>`, `<=`,
    /// `>=`, `==`, `!=`), with its token length — distinguishing `<`
    /// from `<<` and `=` from `==`/`=>`.
    fn cmp_op(&self) -> Option<(&'static str, usize)> {
        let p = self.pos;
        let two = |a: &str, b: &str| self.is_p(p, a) && self.adjacent(p) && self.is_p(p + 1, b);
        if two("=", "=") {
            return Some(("==", 2));
        }
        if two("!", "=") {
            return Some(("!=", 2));
        }
        if two("<", "=") {
            return Some(("<=", 2));
        }
        if two(">", "=") {
            return Some((">=", 2));
        }
        if two("<", "<") || two(">", ">") {
            return None; // shifts: not comparisons, stop parsing
        }
        if self.is_p(p, "<") {
            return Some(("<", 1));
        }
        if self.is_p(p, ">") {
            return Some((">", 1));
        }
        None
    }

    /// An additive/multiplicative operator at `pos` that is *not* part
    /// of a compound assignment (`+=`) or arrow.
    fn bin_op(&self, ops: &[&'static str]) -> Option<&'static str> {
        let p = self.pos;
        for &op in ops {
            if self.is_p(p, op) {
                // `+=`, `-=`, `*=`, `/=` are assignments; `->` an arrow.
                if self.adjacent(p) && (self.is_p(p + 1, "=") || self.is_p(p + 1, ">")) {
                    return None;
                }
                return Some(op);
            }
        }
        None
    }

    fn expr(&mut self) -> Abs {
        let mut left = self.add();
        while let Some((op, len)) = self.cmp_op() {
            let at = self.pos;
            self.pos += len;
            let right = self.add();
            self.check_cmp(at, op, left, right);
            left = Abs::Plain;
        }
        left
    }

    fn check_cmp(&mut self, at: usize, op: &str, l: Abs, r: Abs) {
        if let (Some((a, _)), Some((b, _))) = (l.dim(), r.dim()) {
            if a != b {
                self.err(
                    at,
                    format!(
                        "comparing {} with {} ({op}): different dimensions",
                        a.name(),
                        b.name()
                    ),
                    "compare quantities of one dimension, or justify with `// dim: <reason>`",
                );
            }
        }
    }

    fn add(&mut self) -> Abs {
        let mut left = self.mul();
        while let Some(op) = self.bin_op(&["+", "-"]) {
            let at = self.pos;
            self.pos += 1;
            let right = self.mul();
            left = self.combine_add(at, op, left, right);
        }
        left
    }

    fn combine_add(&mut self, at: usize, op: &str, l: Abs, r: Abs) -> Abs {
        match (l, r) {
            (Abs::Unit(a), Abs::Unit(b)) if a == b => Abs::Unit(a),
            (Abs::Raw(a), Abs::Raw(b)) => {
                if a == b {
                    Abs::Raw(a)
                } else {
                    self.err(
                        at,
                        format!(
                            "mixed-dimension arithmetic: {} {op} {} on raw values",
                            a.name(),
                            b.name()
                        ),
                        "rebuild both sides as one typed quantity, or justify with `// dim: <reason>`",
                    );
                    Abs::Unknown
                }
            }
            (Abs::Raw(a), Abs::Plain) | (Abs::Plain, Abs::Raw(a)) => Abs::Raw(a),
            (Abs::Plain, Abs::Plain) => Abs::Plain,
            _ => Abs::Unknown,
        }
    }

    fn mul(&mut self) -> Abs {
        let mut left = self.unary();
        while let Some(op) = self.bin_op(&["*", "/", "%"]) {
            let at = self.pos;
            self.pos += 1;
            let right = self.unary();
            left = match op {
                "*" => self.combine_mul(at, left, right),
                "/" => Self::combine_div(left, right),
                _ => Abs::Unknown,
            };
        }
        left
    }

    fn combine_mul(&mut self, at: usize, l: Abs, r: Abs) -> Abs {
        match (l.dim(), r.dim()) {
            (Some((a, ra)), Some((b, rb))) => {
                let ws = (a == Dim::Watts && b == Dim::Seconds)
                    || (a == Dim::Seconds && b == Dim::Watts);
                if ws {
                    if ra || rb {
                        self.err(
                            at,
                            "raw W·s product is not rebuilt as Joules".to_owned(),
                            "multiply the typed values — `Watts * Seconds` is `Joules` — or justify with `// dim: <reason>`",
                        );
                        Abs::Raw(Dim::Joules)
                    } else {
                        Abs::Unit(Dim::Joules)
                    }
                } else {
                    Abs::Unknown
                }
            }
            (Some(_), None) if r == Abs::Plain => l,
            (None, Some(_)) if l == Abs::Plain => r,
            _ if l == Abs::Plain && r == Abs::Plain => Abs::Plain,
            _ => Abs::Unknown,
        }
    }

    fn combine_div(l: Abs, r: Abs) -> Abs {
        match (l.dim(), r.dim()) {
            (Some((a, ra)), Some((b, rb))) => match a.quotient(b) {
                Some(DimOrPlain::Plain) => Abs::Plain,
                Some(DimOrPlain::Dim(q)) => {
                    if ra || rb {
                        Abs::Raw(q)
                    } else {
                        Abs::Unit(q)
                    }
                }
                None => Abs::Unknown,
            },
            (Some(_), None) if r == Abs::Plain => l,
            _ if l == Abs::Plain && r == Abs::Plain => Abs::Plain,
            _ => Abs::Unknown,
        }
    }

    fn unary(&mut self) -> Abs {
        while self.is_p(self.pos, "-") || self.is_p(self.pos, "!") || self.is_p(self.pos, "&") {
            self.pos += 1;
            if self.text(self.pos) == Some("mut") {
                self.pos += 1;
            }
        }
        // A leading `*` is a deref only at expression head; the binary
        // `*` never reaches here.
        while self.is_p(self.pos, "*") {
            self.pos += 1;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Abs {
        let mut value = self.primary();
        loop {
            if self.is_p(self.pos, "?") {
                self.pos += 1;
                continue;
            }
            if self.is_p(self.pos, "(") {
                // Calling an expression: evaluate args, lose tracking.
                self.call_args();
                value = Abs::Unknown;
                continue;
            }
            if self.is_p(self.pos, "[") {
                self.skip_group();
                value = Abs::Unknown;
                continue;
            }
            if self.text(self.pos) == Some("as") {
                // Casts preserve the carried dimension.
                self.pos += 1;
                if self.kind(self.pos) == Some(TokenKind::Ident) {
                    self.pos += 1;
                }
                continue;
            }
            if !self.is_p(self.pos, ".") {
                return value;
            }
            // `.` — field, tuple index, or method; `..` is a range.
            if self.adjacent(self.pos) && self.is_p(self.pos + 1, ".") {
                return value;
            }
            match self.kind(self.pos + 1) {
                Some(TokenKind::Int) => {
                    // `.0` projects the raw value out of a newtype.
                    let projected = match (self.text(self.pos + 1), value) {
                        (Some("0"), Abs::Unit(d)) => Abs::Raw(d),
                        _ => Abs::Unknown,
                    };
                    self.pos += 2;
                    value = projected;
                }
                Some(TokenKind::Ident) => {
                    let name_at = self.pos + 1;
                    self.pos += 2;
                    if self.is_p(self.pos, ":") && self.is_p(self.pos + 1, ":") {
                        self.pos += 2;
                        if self.is_p(self.pos, "<") {
                            self.skip_generics();
                        }
                    }
                    if self.is_p(self.pos, "(") {
                        let args = self.call_args();
                        value = self.method(name_at, value, &args);
                    } else {
                        // Plain field access: untracked.
                        value = Abs::Unknown;
                    }
                }
                _ => return value,
            }
        }
    }

    /// Effect of a method call on the receiver's abstract value.
    fn method(&mut self, name_at: usize, recv: Abs, args: &[Abs]) -> Abs {
        match self.text(name_at) {
            Some("value") => match recv {
                Abs::Unit(d) => Abs::Raw(d),
                _ => Abs::Unknown,
            },
            Some("min" | "max" | "clamp") => {
                for &a in args {
                    self.check_cmp(name_at, "min/max/clamp", recv, a);
                }
                recv
            }
            Some("abs") => recv,
            _ => Abs::Unknown,
        }
    }

    /// Parses a parenthesized argument list at `pos` (`(`), evaluating
    /// each comma-separated argument as an expression.
    fn call_args(&mut self) -> Vec<Abs> {
        let mut out = Vec::new();
        debug_assert!(self.is_p(self.pos, "("));
        self.pos += 1; // past `(`
        loop {
            match self.text(self.pos) {
                None => return out,
                Some(")") => {
                    self.pos += 1;
                    return out;
                }
                Some(",") => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    out.push(self.expr());
                    if self.pos == before {
                        self.pos += 1; // never stall on junk
                    }
                }
            }
        }
    }

    fn primary(&mut self) -> Abs {
        match self.kind(self.pos) {
            Some(TokenKind::Int) | Some(TokenKind::Float) => {
                self.pos += 1;
                Abs::Plain
            }
            Some(TokenKind::Ident) => self.path_or_construct(),
            Some(TokenKind::Lifetime) => {
                self.pos += 1;
                Abs::Unknown
            }
            Some(TokenKind::Punct) => match self.text(self.pos) {
                Some("(") => {
                    // Parenthesized expression (or tuple: stop at `,`).
                    let open = self.pos;
                    self.pos += 1;
                    let inner = self.expr();
                    if self.is_p(self.pos, ")") {
                        self.pos += 1;
                        inner
                    } else {
                        // Tuple or unparsed remainder: skip the rest.
                        self.pos = open;
                        self.skip_group();
                        Abs::Unknown
                    }
                }
                Some("[") | Some("{") => {
                    self.skip_group();
                    Abs::Unknown
                }
                Some("|") => self.closure(),
                _ => Abs::Unknown, // unknown punct: caller advances
            },
            _ => {
                if self.pos < self.code.len() {
                    self.pos += 1;
                }
                Abs::Unknown
            }
        }
    }

    /// A closure at `pos` (`|`). Expression bodies are evaluated (the
    /// enclosing scope's locals are visible); block bodies are opaque.
    fn closure(&mut self) -> Abs {
        self.pos += 1; // past `|`
        if self.is_p(self.pos.wrapping_sub(1), "|") && self.is_p(self.pos, "|") {
            // `||`: empty parameter list as two adjacent pipes.
            self.pos += 1;
        } else {
            while self.pos < self.code.len() && !self.is_p(self.pos, "|") {
                if matches!(self.text(self.pos), Some("(") | Some("[") | Some("{")) {
                    self.skip_group();
                } else {
                    self.pos += 1;
                }
            }
            self.pos += 1; // past closing `|`
        }
        if self.is_p(self.pos, "{") {
            self.skip_group();
        } else {
            let before = self.pos;
            let _ = self.expr();
            if self.pos == before {
                self.pos += 1;
            }
        }
        Abs::Unknown
    }

    /// An identifier head: a control-flow expression (opaque), a
    /// macro invocation (opaque, contents skipped), a path — possibly
    /// a unit constructor — or a local variable.
    fn path_or_construct(&mut self) -> Abs {
        let head = self.pos;
        match self.text(head) {
            Some("if" | "match" | "loop" | "while" | "for" | "unsafe") => {
                // Expression-level control flow: skip through its
                // braced body (else-chains included), stay opaque.
                self.skip_control();
                return Abs::Unknown;
            }
            Some("move") if self.is_p(head + 1, "|") => {
                self.pos += 1;
                return self.closure();
            }
            Some("return" | "break" | "continue") => {
                self.pos += 1;
                return Abs::Unknown;
            }
            _ => {}
        }
        // Collect the path: ident (:: ident | :: <…>)*.
        let mut segments: Vec<usize> = vec![head];
        self.pos += 1;
        while self.is_p(self.pos, ":") && self.adjacent(self.pos) && self.is_p(self.pos + 1, ":") {
            self.pos += 2;
            if self.is_p(self.pos, "<") {
                self.skip_generics();
            }
            if self.kind(self.pos) == Some(TokenKind::Ident) {
                segments.push(self.pos);
                self.pos += 1;
            } else {
                break;
            }
        }
        // Macro invocation: contents are not expression-checked.
        if self.is_p(self.pos, "!") {
            self.pos += 1;
            if matches!(self.text(self.pos), Some("(") | Some("[") | Some("{")) {
                self.skip_group();
            }
            return Abs::Unknown;
        }
        let seg_text = |at: usize| self.text(at).unwrap_or_default();
        let last = *segments.last().unwrap_or(&head);
        let last_text = seg_text(last);
        let last_dim = Dim::from_name(last_text);
        let prev_dim = segments
            .len()
            .checked_sub(2)
            .and_then(|i| Dim::from_name(seg_text(segments[i])));
        if self.is_p(self.pos, "(") {
            let name_at = last;
            let args = self.call_args();
            // `Seconds::new(x)` / `Seconds::clamped(x)` / tuple-ctor
            // `Seconds(x)`: a raw value of another dimension must not
            // flow in.
            let ctor = match (prev_dim, last_text) {
                (Some(d), "new" | "clamped") => Some(d),
                (None, _) if last_dim.is_some() && segments.len() == 1 => last_dim,
                _ => None,
            };
            if let Some(d) = ctor {
                if let Some(Abs::Raw(src_dim)) = args.first().copied() {
                    if src_dim != d {
                        self.err(
                            name_at,
                            format!(
                                "raw {} value flows into {}'s constructor",
                                src_dim.name(),
                                d.name()
                            ),
                            "convert through the typed arithmetic instead, or justify with `// dim: <reason>`",
                        );
                    }
                }
                return Abs::Unit(d);
            }
            // Other `Dim::fn(…)` associated constructors return the
            // dimension (`Ppw::from_time_power`, `Celsius::new`…).
            if let Some(d) = prev_dim {
                return Abs::Unit(d);
            }
            return Abs::Unknown;
        }
        // Struct literal after an uppercase path: opaque.
        if self.is_p(self.pos, "{") && last_text.chars().next().is_some_and(char::is_uppercase) {
            self.skip_group();
            return Abs::Unknown;
        }
        // Associated constant `Seconds::ZERO`.
        if let Some(d) = prev_dim {
            if last_text
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_')
            {
                return Abs::Unit(d);
            }
            return Abs::Unknown;
        }
        // A single-segment lowercase path: a local.
        if segments.len() == 1 {
            return self
                .locals
                .get(seg_text(head))
                .copied()
                .unwrap_or(Abs::Unknown);
        }
        Abs::Unknown
    }

    /// Skips an expression-level control construct (`if`/`match`/
    /// loops): header to the first depth-0 `{`, its braced body, and
    /// any `else` chain.
    fn skip_control(&mut self) {
        loop {
            // Header: to the next depth-0 `{`.
            let mut depth = 0usize;
            while self.pos < self.code.len() {
                match self.text(self.pos) {
                    Some("(") | Some("[") => depth += 1,
                    Some(")") | Some("]") => depth = depth.saturating_sub(1),
                    Some("{") if depth == 0 => break,
                    Some("{") => {
                        self.skip_group();
                        continue;
                    }
                    Some(";") if depth == 0 => return, // malformed: stop
                    _ => {}
                }
                self.pos += 1;
            }
            if self.pos >= self.code.len() {
                return;
            }
            self.skip_group(); // the braced body
            if self.text(self.pos) == Some("else") {
                self.pos += 1;
                if self.text(self.pos) == Some("if") {
                    self.pos += 1;
                    continue;
                }
                if self.is_p(self.pos, "{") {
                    self.skip_group();
                }
            }
            return;
        }
    }
}

/// Evaluates every expression in a code-token region, collecting
/// findings; returns the final expression's abstract value.
fn eval_region(
    src: &str,
    toks: &[Token],
    code: &[usize],
    locals: &BTreeMap<String, Abs>,
    errors: &mut BTreeSet<Finding>,
) -> Abs {
    let mut ev = Eval {
        src,
        toks,
        code,
        pos: 0,
        locals,
        errors,
    };
    let mut last = Abs::Unknown;
    while ev.pos < code.len() {
        let before = ev.pos;
        last = ev.expr();
        if ev.pos == before {
            ev.pos += 1;
            last = Abs::Unknown;
        }
    }
    last
}

/// The dataflow instance: locals → abstract dimension values, errors
/// accumulated (deduplicated by site) across the fixpoint.
struct DimAnalysis<'a> {
    file: &'a SourceFile,
    params: BTreeMap<String, Abs>,
    errors: RefCell<BTreeSet<Finding>>,
}

impl DimAnalysis<'_> {
    /// The region of a header statement that is an expression: the
    /// condition / scrutinee (after a `let` pattern's `=`, after
    /// `for`'s `in`), excluding the trailing `{`.
    fn header_expr<'c>(&self, cfg: &'c Cfg, stmt: &Stmt) -> &'c [usize] {
        let toks = cfg.stmt_tokens(stmt);
        let src = self.file.text.as_str();
        let text = |k: usize| {
            toks.get(k)
                .map(|&i| self.file.tokens[i].text(src))
                .unwrap_or_default()
        };
        let mut start = 1; // past the keyword
        if text(0) == "while" || text(0) == "if" || text(0) == "else" {
            if text(0) == "else" {
                start = 2; // `else if …`
            }
            if text(start) == "let" {
                // Skip the pattern: find the standalone `=`.
                let mut k = start + 1;
                let mut depth = 0usize;
                while k < toks.len() {
                    match text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "=" if depth == 0 && text(k + 1) != "=" && text(k + 1) != ">" => {
                            start = k + 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k >= toks.len() {
                    return &[];
                }
            }
        } else if text(0) == "for" {
            let mut k = 1;
            while k < toks.len() && text(k) != "in" {
                k += 1;
            }
            start = k + 1;
        }
        // Exclude the trailing `{`.
        let end = toks.len().saturating_sub(1);
        if start >= end {
            return &[];
        }
        &toks[start..end]
    }
}

impl Analysis for DimAnalysis<'_> {
    type State = BTreeMap<String, Abs>;

    fn boundary(&self) -> Self::State {
        self.params.clone()
    }

    fn transfer(
        &self,
        state: &mut Self::State,
        cfg: &Cfg,
        _block: usize,
        _idx: usize,
        stmt: &Stmt,
    ) {
        let src = self.file.text.as_str();
        let toks_all = &self.file.tokens;
        let mut guard = self.errors.borrow_mut();
        let errors = &mut *guard;
        match stmt.kind {
            StmtKind::ArmPat | StmtKind::Struct => {}
            StmtKind::IfHead | StmtKind::MatchHead | StmtKind::LoopHead => {
                let region = self.header_expr(cfg, stmt);
                eval_region(src, toks_all, region, state, errors);
            }
            StmtKind::Simple => {
                let toks = cfg.stmt_tokens(stmt);
                let text = |k: usize| {
                    toks.get(k)
                        .map(|&i| toks_all[i].text(src))
                        .unwrap_or_default()
                };
                // Strip a trailing `;`.
                let end = if toks.last().is_some_and(|&i| {
                    toks_all[i].kind == TokenKind::Punct && toks_all[i].text(src) == ";"
                }) {
                    toks.len() - 1
                } else {
                    toks.len()
                };
                let toks = &toks[..end];
                let binding = dataflow::assigned_local(src, toks_all, cfg, stmt);
                if text(0) == "let" {
                    // `let [mut] name [: ty] = expr` — find the
                    // standalone `=` at depth 0.
                    let mut k = 1;
                    let mut depth = 0usize;
                    let mut eq = None;
                    let mut anno: Option<Dim> = None;
                    let mut colon = None;
                    while k < toks.len() {
                        match text(k) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            ":" if depth == 0 && colon.is_none() && text(k + 1) != ":" => {
                                colon = Some(k);
                            }
                            "=" if depth == 0 && text(k + 1) != "=" => {
                                eq = Some(k);
                            }
                            _ => {}
                        }
                        if eq.is_some() {
                            break;
                        }
                        k += 1;
                    }
                    if let (Some(c), Some(e)) = (colon, eq) {
                        // Annotation: the idents between `:` and `=`.
                        let names: Vec<&str> = (c + 1..e)
                            .map(text)
                            .filter(|t| t.chars().next().is_some_and(char::is_alphabetic))
                            .collect();
                        if names.len() == 1 {
                            anno = Dim::from_name(names[0]);
                        }
                    }
                    let value = match eq {
                        Some(e) => eval_region(src, toks_all, &toks[e + 1..], state, errors),
                        None => Abs::Unknown,
                    };
                    if let Some(name) = binding {
                        let bound = match anno {
                            Some(d) => Abs::Unit(d),
                            None => value,
                        };
                        if bound == Abs::Unknown {
                            state.remove(&name);
                        } else {
                            state.insert(name, bound);
                        }
                    }
                    return;
                }
                if let Some(name) = binding {
                    // `name = expr` / `name op= expr`.
                    let (op, rhs_at) = match text(1) {
                        "=" => ("=", 2),
                        plus @ ("+" | "-") if text(2) == "=" => (plus, 3),
                        _ => ("=", 2),
                    };
                    let rhs = eval_region(src, toks_all, &toks[rhs_at..], state, errors);
                    let current = state.get(&name).copied().unwrap_or(Abs::Unknown);
                    let value = if op == "=" {
                        rhs
                    } else {
                        // `+=`/`-=`: same dimension rules as `+`.
                        let mut ev = Eval {
                            src,
                            toks: toks_all,
                            code: toks,
                            pos: 0,
                            locals: state,
                            errors,
                        };
                        ev.combine_add(1, op, current, rhs)
                    };
                    if value == Abs::Unknown {
                        state.remove(&name);
                    } else {
                        state.insert(name, value);
                    }
                    return;
                }
                // Any other statement: evaluate for effects only.
                eval_region(src, toks_all, toks, state, errors);
            }
        }
    }

    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool {
        let mut changed = false;
        // Keys absent from either side, or disagreeing, become
        // Unknown (removed).
        let stale: Vec<String> = into
            .iter()
            .filter(|(k, v)| other.get(*k) != Some(v))
            .map(|(k, _)| k.clone())
            .collect();
        for k in stale {
            into.remove(&k);
            changed = true;
        }
        changed
    }
}

/// Runs the analysis over one file, returning finished diagnostics.
pub fn file_findings(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let index = LineIndex::new(&file.text);
    for (fi, f) in file.items.fns.iter().enumerate() {
        if f.in_test || f.body.is_none() {
            continue;
        }
        let Some(cfg) = file.cfgs().get(fi).and_then(|c| c.as_ref()) else {
            continue;
        };
        let mut params = BTreeMap::new();
        for (name, ty) in &f.params {
            // Accept `&`/`mut` decoration but nothing structural: a
            // `Vec<Seconds>` element is not a `Seconds`.
            let parts: Vec<&str> = ty
                .split(|c: char| c.is_whitespace() || c == '&')
                .filter(|w| !w.is_empty() && *w != "mut")
                .collect();
            if let [only] = parts.as_slice() {
                if let Some(d) = Dim::from_name(only) {
                    params.insert(name.clone(), Abs::Unit(d));
                }
            }
        }
        let analysis = DimAnalysis {
            file,
            params,
            errors: RefCell::new(BTreeSet::new()),
        };
        dataflow::forward(cfg, &analysis);
        for (lo, msg, help) in analysis.errors.into_inner() {
            let (line, col) = index.line_col(lo);
            if justified(&file.text, line, MARKER) {
                continue;
            }
            out.push(
                Diagnostic::error("dimensional-flow", Span::at(&file.rel, line, col), msg)
                    .with_help(&help),
            );
        }
    }
    out
}

impl super::Pass for DimensionalFlow {
    fn id(&self) -> &'static str {
        "dimensional-flow"
    }

    fn description(&self) -> &'static str {
        "unit dimensions must survive body-level arithmetic: no mixed +/-/compare, no raw W·s"
    }

    fn scope(&self) -> super::PassScope {
        super::PassScope::File
    }

    fn explain(&self) -> &'static str {
        "Tracks unit dimensions (Seconds, Watts, Joules, Celsius, Mpki, Ppw,\n\
         Utilization, WattHours) through each function body with a forward\n\
         abstract interpretation over its CFG: typed parameters, `let`\n\
         bindings and annotations, `Dim::new`/`Dim::ZERO` constructors, and\n\
         `.value()`/`.0` projections seed the domain; everything else is\n\
         Unknown and silent.\n\
         \n\
         Errors:\n\
         - `+`/`-`/`+=`/`-=` between raw values of different dimensions;\n\
         - comparisons (`<`, `>`, `==`, …, `.min`/`.max`/`.clamp`) between\n\
           different known dimensions;\n\
         - a raw value of one dimension flowing into another dimension's\n\
           constructor;\n\
         - a Watts×Seconds product with a raw side — energy must be rebuilt\n\
           through the typed `Watts * Seconds -> Joules` impl.\n\
         \n\
         Config: none (the dimension vocabulary is the eight `quantity!`\n\
         newtypes of dora_sim_core::units, fixed at compile time).\n\
         Justification: `// dim: <reason>` on the flagged line or in the\n\
         comment block directly above it."
    }

    fn run(&self, cx: &Context) -> Vec<Diagnostic> {
        cx.files.iter().flat_map(file_findings).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Pass;
    use super::*;

    fn findings(body: &str) -> Vec<Diagnostic> {
        let src = format!(
            "use dora_sim_core::units::*;\npub fn f(t: Seconds, p: Watts, e: Joules) -> f64 {{\n{body}\n}}\n"
        );
        file_findings(&SourceFile::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn raw_ws_product_is_flagged() {
        let d = findings("    let product = t.value() * p.value();\n    product");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("raw W·s product"), "{d:?}");
        assert_eq!(d[0].span.line, 3);
    }

    #[test]
    fn typed_ws_product_is_clean() {
        let d = findings("    let energy = p * t;\n    energy.value()");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn mixed_addition_is_flagged() {
        let d = findings("    t.value() + p.value()");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Seconds + Watts"), "{d:?}");
    }

    #[test]
    fn mixed_comparison_is_flagged_through_bindings() {
        let d = findings(
            "    let raw_t = t.value();\n    let raw_p = p.value();\n    if raw_t > raw_p {\n        return 1.0;\n    }\n    0.0",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("comparing Seconds with Watts"),
            "{d:?}"
        );
    }

    #[test]
    fn cross_dimension_constructor_is_flagged() {
        let d = findings("    let w = Watts::new(t.value());\n    w.value()");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("raw Seconds value flows into Watts"),
            "{d:?}"
        );
    }

    #[test]
    fn same_dimension_round_trip_is_clean() {
        let d = findings("    let w = Watts::new(p.value() * 2.0);\n    w.value()");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn quotient_algebra_is_tracked() {
        // J/s is W; comparing it with a raw Watts value is fine.
        let d = findings("    let w = e.value() / t.value();\n    w - p.value()");
        assert!(d.is_empty(), "{d:?}");
        // …but J/W is s: subtracting raw watts from it is mixed.
        let d = findings("    let s = e.value() / p.value();\n    s - p.value()");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Seconds - Watts"), "{d:?}");
    }

    #[test]
    fn join_of_disagreeing_branches_goes_unknown() {
        let d = findings(
            "    let mut x = t.value();\n    if x > 0.0 {\n        x = p.value();\n    }\n    x + e.value()",
        );
        // After the join x is Unknown; the final addition is silent.
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dim_justification_silences() {
        let d = findings("    t.value() * p.value() // dim: CSV column is documented as raw W*s");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn branches_are_checked_inside_loops_and_arms() {
        let d = findings(
            "    let mut acc = 0.0;\n    for _k in 0..3 {\n        acc += t.value() - p.value();\n    }\n    acc",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Seconds - Watts"), "{d:?}");
    }

    #[test]
    fn tests_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    use dora_sim_core::units::*;\n    fn helper(t: Seconds, p: Watts) -> f64 {\n        t.value() + p.value()\n    }\n}\n";
        let d = file_findings(&SourceFile::new("crates/x/src/lib.rs", src));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pass_is_file_scoped_with_explain_text() {
        assert_eq!(DimensionalFlow.scope(), super::super::PassScope::File);
        assert!(DimensionalFlow.explain().contains("// dim:"));
    }
}
