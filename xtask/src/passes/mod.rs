//! The pass registry: every lint is a plugin implementing [`Pass`].
//!
//! Adding a lint (DESIGN.md §8): create a module here, implement [`Pass`]
//! over the read-only [`Context`], register it in [`registry`], and give
//! it a kebab-case id. Ids are stable — they key `[levels]` / `[allow]`
//! entries in `xtask.toml` and become SARIF rule ids in CI.

use crate::diag::Diagnostic;
use crate::Context;

pub mod api_surface;
pub mod constants;
pub mod determinism;
pub mod determinism_taint;
pub mod dimensional_flow;
pub mod dvfs_guard;
pub mod layering;
pub mod lint_header;
pub mod merge_associativity;
pub mod panic_reachability;
pub mod partial_cmp;
pub mod probe_balance;
pub mod probe_purity;
pub mod snapshot_pairing;
pub mod stale_config;
pub mod state_coverage;
pub mod sync_hygiene;
pub mod unit_suffix;
pub mod units_escape;

/// What input a pass actually reads, declared so the incremental engine
/// ([`crate::engine`]) knows what it may cache and parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassScope {
    /// The pass reads one file at a time and its findings for a file
    /// depend only on that file's text plus the config: the engine runs
    /// it file-parallel over single-file contexts and caches per file.
    File,
    /// The pass reads cross-file state (call graph, manifests, API
    /// snapshots, file-set membership): it always sees the full tree.
    Tree,
}

/// One static-analysis pass. Passes are stateless (`Send + Sync`) so
/// the engine may run them from worker threads.
pub trait Pass: Send + Sync {
    /// Stable kebab-case lint id (`xtask.toml` key, SARIF rule id).
    fn id(&self) -> &'static str;
    /// One-line description, shown by `xtask passes` and in SARIF rules.
    fn description(&self) -> &'static str;
    /// Multi-line reference shown by `lint --explain <id>`: what the
    /// pass checks, its `xtask.toml` config keys, and the
    /// justification-comment syntax it honors. Required — the
    /// `stale-config` pass fails the run if any registered pass ships
    /// an empty explainer.
    fn explain(&self) -> &'static str;
    /// Runs the pass. Diagnostics are emitted at their natural severity;
    /// the driver applies `xtask.toml` levels and allowlists afterwards.
    fn run(&self, cx: &Context) -> Vec<Diagnostic>;
    /// The pass's input scope. Defaults to [`PassScope::Tree`], the
    /// always-correct choice; per-file passes opt in to `File` to become
    /// cacheable and file-parallel.
    fn scope(&self) -> PassScope {
        PassScope::Tree
    }
    /// Behavioral version, folded into the engine's cache key. Bump it
    /// whenever `run`'s semantics change so a rebuilt xtask never
    /// serves per-file cache entries computed by the old logic.
    fn version(&self) -> u32 {
        1
    }
}

/// Every registered pass, in documentation order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic_reachability::PanicReachability),
        Box::new(unit_suffix::UnitSuffix),
        Box::new(units_escape::UnitsEscape),
        Box::new(dimensional_flow::DimensionalFlow),
        Box::new(partial_cmp::PartialCmp),
        Box::new(lint_header::LintHeader),
        Box::new(dvfs_guard::DvfsGuard),
        Box::new(layering::CrateLayering),
        Box::new(determinism::MapDeterminism),
        Box::new(determinism_taint::DeterminismTaint),
        Box::new(state_coverage::StateCoverage),
        Box::new(merge_associativity::MergeAssociativity),
        Box::new(snapshot_pairing::SnapshotPairing),
        Box::new(probe_balance::ProbeBalance),
        Box::new(stale_config::StaleConfig),
        Box::new(sync_hygiene::SyncHygiene),
        Box::new(probe_purity::ProbePurity),
        Box::new(constants::PaperConstants),
        Box::new(api_surface::ApiSurface),
    ]
}

/// A stable fingerprint of a pass list: FNV-1a over `id@version`
/// pairs, length-delimited, order-sensitive. Changing the registry's
/// membership, order, or any pass's [`Pass::version`] changes it.
pub fn fingerprint_of(passes: &[(&str, u32)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (id, version) in passes {
        eat(&(id.len() as u64).to_le_bytes());
        eat(id.as_bytes());
        eat(&version.to_le_bytes());
    }
    hash
}

/// [`fingerprint_of`] the live registry. The engine folds this into
/// its cache key so pass-logic changes invalidate stale entries.
pub fn registry_fingerprint() -> u64 {
    let passes: Vec<(&str, u32)> = registry().iter().map(|p| (p.id(), p.version())).collect();
    fingerprint_of(&passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn pass_ids_are_unique_kebab_case() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id()).collect();
        let set: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(ids.len(), set.len(), "duplicate pass ids: {ids:?}");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "id `{id}` is not kebab-case"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_ids_versions_and_order() {
        let base = fingerprint_of(&[("a", 1), ("b", 1)]);
        assert_ne!(base, fingerprint_of(&[("a", 2), ("b", 1)]), "version bump");
        assert_ne!(base, fingerprint_of(&[("b", 1), ("a", 1)]), "order");
        assert_ne!(base, fingerprint_of(&[("a", 1)]), "membership");
        assert_ne!(base, fingerprint_of(&[("ab", 1), ("", 1)]), "boundaries");
        assert_eq!(base, fingerprint_of(&[("a", 1), ("b", 1)]), "stable");
    }

    #[test]
    fn every_pass_has_explain_text_mentioning_its_id() {
        for pass in registry() {
            let text = pass.explain();
            assert!(
                !text.trim().is_empty(),
                "pass `{}` has no --explain text",
                pass.id()
            );
        }
    }
}
