//! An item tree over the token stream: `fn` / `impl` / `mod` / `use` /
//! `const` / `struct` declarations with visibility, spans, and
//! crate-qualified paths.
//!
//! This is deliberately *not* a full Rust parser: it walks the
//! [`crate::lex`] token stream tracking the module/impl/trait scope
//! stack, records the declarations the passes care about, and skips
//! everything else with balanced-bracket scans. Macro *definitions* are
//! skipped as token soup; macro *invocations* at item position are
//! skipped balanced. Function bodies are recorded as token ranges so the
//! call-graph and taint passes can scan them later.
//!
//! Qualified names (`FnItem::qual`) use the crate *directory* key
//! (`soc`, not `dora-soc`) followed by the `::`-joined module path
//! derived from the file location plus any inline `mod` nesting, then
//! the `impl`/`trait` self type, then the item name — e.g.
//! `soc::thermal::ThermalModel::step`. These strings key the
//! entry-point allowlists in `xtask.toml`.

use crate::lex::{Token, TokenKind};

/// How an item is declared visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Bare `pub`.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One function (free, method, or trait default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// Crate-qualified path (`soc::thermal::ThermalModel::step`).
    pub qual: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Declared visibility.
    pub vis: Vis,
    /// The surrounding `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// Whether the item lives under `#[cfg(test)]` or `#[test]`.
    pub in_test: bool,
    /// Token-index range `[lo, hi)` of the parameter list (inside the
    /// parentheses).
    pub params_span: (usize, usize),
    /// Token-index range `[lo, hi)` of the return type (after `->`).
    pub ret_span: (usize, usize),
    /// Token-index range `[lo, hi)` of the body (inside the braces), or
    /// `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// Parsed `(name, type)` pairs for each parameter (`self` receivers
    /// appear as `("self", …)`).
    pub params: Vec<(String, String)>,
    /// Rendered return type (empty for `()`-returning functions).
    pub ret: String,
}

/// One `const` or `static` item.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Item name (`_` for anonymous const assertions).
    pub name: String,
    /// Crate-qualified path.
    pub qual: String,
    /// 1-based declaration line.
    pub line: usize,
    /// 1-based line of the item's final token.
    pub end_line: usize,
    /// Declared visibility.
    pub vis: Vis,
    /// Whether this is a `static` rather than a `const`.
    pub is_static: bool,
    /// Whether the item lives under `#[cfg(test)]`.
    pub in_test: bool,
    /// Token-index range `[lo, hi)` of the initializer (after `=`).
    pub init: (usize, usize),
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Declared visibility.
    pub vis: Vis,
    /// Rendered type text.
    pub ty: String,
}

/// One struct declaration (named-field structs carry their fields;
/// tuple structs carry positional fields named `0`, `1`, …).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Crate-qualified path (`soc::snapshot::BoardSnapshot`).
    pub qual: String,
    /// 1-based line.
    pub line: usize,
    /// Declared visibility.
    pub vis: Vis,
    /// Whether the item lives under `#[cfg(test)]`.
    pub in_test: bool,
    /// Whether this is a tuple struct (`struct Pair(f64, f64);`).
    pub tuple: bool,
    /// Rendered generic-parameter text (without the angle brackets),
    /// empty for non-generic structs.
    pub generics: String,
    /// Fields, in declaration order.
    pub fields: Vec<FieldItem>,
}

/// One variant of an enum.
#[derive(Debug, Clone)]
pub struct VariantItem {
    /// Variant name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// One enum declaration.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Crate-qualified path.
    pub qual: String,
    /// 1-based line.
    pub line: usize,
    /// Declared visibility.
    pub vis: Vis,
    /// Whether the item lives under `#[cfg(test)]`.
    pub in_test: bool,
    /// Rendered generic-parameter text (without the angle brackets),
    /// empty for non-generic enums.
    pub generics: String,
    /// Variants, in declaration order.
    pub variants: Vec<VariantItem>,
}

/// One leaf of a `use` declaration: `alias` names `path` in `module`.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The name the import binds locally (the `as` alias or the final
    /// path segment).
    pub alias: String,
    /// Full path segments as written (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// Module path (within the file's crate) the import appears in.
    pub module: Vec<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ItemSet {
    /// Functions, in declaration order.
    pub fns: Vec<FnItem>,
    /// `const`/`static` items.
    pub consts: Vec<ConstItem>,
    /// Struct declarations.
    pub structs: Vec<StructItem>,
    /// Enum declarations.
    pub enums: Vec<EnumItem>,
    /// `use` imports.
    pub uses: Vec<UseItem>,
    /// Byte spans of `#[cfg(test)]`-gated regions (attribute through
    /// closing brace or semicolon), for stripping and scoping.
    pub cfg_test_spans: Vec<(usize, usize)>,
}

/// The `(crate key, module path)` a file's items root at:
/// `crates/soc/src/thermal.rs` → `("soc", ["thermal"])`,
/// `crates/campaign/src/fleet/mod.rs` → `("campaign", ["fleet"])`,
/// `src/lib.rs` → `("dora-repro", [])`.
pub fn file_module_path(rel: &str) -> (String, Vec<String>) {
    let (crate_key, rest) = if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let key = parts.next().unwrap_or(rest).to_string();
        (key, parts.next().unwrap_or(""))
    } else if let Some(rest) = rel.strip_prefix("xtask/") {
        ("xtask".to_string(), rest)
    } else {
        ("dora-repro".to_string(), rel)
    };
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let mut modules: Vec<String> = Vec::new();
    for seg in rest.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if seg.is_empty() || seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        modules.push(seg.to_string());
    }
    (crate_key, modules)
}

/// Joins token texts into readable type/signature text: a space is
/// inserted only between two alphanumeric tokens, so `Vec<T>` and
/// `&mut f64` render naturally.
pub fn join_tokens(src: &str, tokens: &[Token], range: (usize, usize)) -> String {
    let mut out = String::new();
    let mut prev_wordy = false;
    for tok in tokens
        .iter()
        .take(range.1)
        .skip(range.0)
        .filter(|t| !t.kind.is_trivia())
    {
        let text = tok.text(src);
        let wordy = matches!(
            tok.kind,
            TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Lifetime
        );
        if prev_wordy && wordy && !out.is_empty() {
            out.push(' ');
        }
        out.push_str(text);
        prev_wordy = wordy;
    }
    out
}

#[derive(Debug, Clone)]
enum Scope {
    Mod { name: Option<String>, test: bool },
    ImplOrTrait { self_ty: String, test: bool },
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    code: Vec<usize>,
    pos: usize,
    line_of: Vec<usize>,
    out: ItemSet,
    crate_key: String,
    root_mods: Vec<String>,
    scopes: Vec<Scope>,
}

impl<'a> Parser<'a> {
    fn tok(&self, code_pos: usize) -> Option<&Token> {
        self.code.get(code_pos).map(|&i| &self.tokens[i])
    }

    fn text(&self, code_pos: usize) -> &str {
        self.tok(code_pos).map_or("", |t| t.text(self.src))
    }

    fn is_p(&self, code_pos: usize, s: &str) -> bool {
        self.tok(code_pos)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == s)
    }

    fn is_ident(&self, code_pos: usize, s: &str) -> bool {
        self.tok(code_pos)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == s)
    }

    fn any_ident(&self, code_pos: usize) -> Option<&str> {
        self.tok(code_pos)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(self.src))
    }

    fn line_at(&self, code_pos: usize) -> usize {
        self.code.get(code_pos).map_or(1, |&i| self.line_of[i])
    }

    fn in_test_scope(&self) -> bool {
        self.scopes.iter().any(|s| match s {
            Scope::Mod { test, .. } | Scope::ImplOrTrait { test, .. } => *test,
        })
    }

    fn module_path(&self) -> Vec<String> {
        let mut path = self.root_mods.clone();
        for s in &self.scopes {
            if let Scope::Mod {
                name: Some(name), ..
            } = s
            {
                path.push(name.clone());
            }
        }
        path
    }

    fn self_ty(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::ImplOrTrait { self_ty, .. } => Some(self_ty.clone()),
            _ => None,
        })
    }

    fn qual(&self, name: &str) -> String {
        let mut parts = vec![self.crate_key.clone()];
        parts.extend(self.module_path());
        if let Some(ty) = self.self_ty() {
            parts.push(ty);
        }
        parts.push(name.to_string());
        parts.join("::")
    }

    /// Skips one balanced bracket group starting at an opening token;
    /// returns the code-pos just past the matching closer.
    ///
    /// Angle brackets participate only when the group itself opens with
    /// `<` (a generics context, where `->`'s `>` is guarded). Groups
    /// opened by `(`/`[`/`{` contain *expressions*, where bare `<` /
    /// `<<` comparisons would desync an angle counter, so only the
    /// bracket kinds are balanced there — any generics inside are
    /// bracket-balanced on their own.
    fn skip_balanced(&self, mut pos: usize) -> usize {
        let angles = self.is_p(pos, "<");
        let mut depth = 0i64;
        let mut prev_minus = false;
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" if angles => depth += 1,
                    ">" if angles && !prev_minus => depth -= 1,
                    _ => {}
                }
                prev_minus = text == "-";
            } else {
                prev_minus = false;
            }
            pos += 1;
            if depth <= 0 {
                break;
            }
        }
        pos
    }

    /// Skips `<…>` generics if present at `pos`.
    fn skip_generics(&self, pos: usize) -> usize {
        if self.is_p(pos, "<") {
            self.skip_balanced(pos)
        } else {
            pos
        }
    }

    /// Consumes attributes at `pos`; returns `(next pos, saw cfg(test)
    /// or #[test], attr start code-pos if any)`.
    fn skip_attrs(&self, mut pos: usize) -> (usize, bool, Option<usize>) {
        let mut test = false;
        let mut start = None;
        loop {
            let bang = usize::from(self.is_p(pos + 1, "!"));
            if self.is_p(pos, "#") && self.is_p(pos + 1 + bang, "[") {
                if start.is_none() {
                    start = Some(pos);
                }
                let end = self.skip_balanced(pos + 1 + bang);
                let mut has_cfg = false;
                let mut has_test_word = false;
                for p in pos..end {
                    if self.is_ident(p, "cfg") {
                        has_cfg = true;
                    }
                    if self.is_ident(p, "test") {
                        has_test_word = true;
                    }
                }
                // `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[test]`.
                if has_test_word && (has_cfg || end - pos == 3 + bang) {
                    test = true;
                }
                pos = end;
            } else {
                return (pos, test, start);
            }
        }
    }

    /// Consumes a visibility marker at `pos`.
    fn skip_vis(&self, pos: usize) -> (usize, Vis) {
        if self.is_ident(pos, "pub") {
            if self.is_p(pos + 1, "(") {
                (self.skip_balanced(pos + 1), Vis::Restricted)
            } else {
                (pos + 1, Vis::Pub)
            }
        } else {
            (pos, Vis::Private)
        }
    }

    /// Splits a parameter list token range into `(name, type)` pairs.
    fn parse_params(&self, span: (usize, usize)) -> Vec<(String, String)> {
        let mut params = Vec::new();
        let mut depth = 0i64;
        let mut prev_minus = false;
        let mut part_start = span.0;
        let mut cuts = Vec::new();
        for pos in span.0..span.1 {
            let Some(tok) = self.tok(pos) else { break };
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !prev_minus => depth -= 1,
                    "," if depth == 0 => cuts.push(pos),
                    _ => {}
                }
                prev_minus = text == "-";
            } else {
                prev_minus = false;
            }
        }
        cuts.push(span.1);
        for cut in cuts {
            let piece = (part_start, cut);
            part_start = cut + 1;
            if piece.1 <= piece.0 {
                continue;
            }
            params.push(self.parse_one_param(piece));
        }
        params
    }

    fn parse_one_param(&self, span: (usize, usize)) -> (String, String) {
        // Self receivers: `self`, `&self`, `&mut self`, `&'a mut self`.
        let mut has_colon_at = None;
        let mut depth = 0i64;
        let mut prev_minus = false;
        for pos in span.0..span.1 {
            let Some(tok) = self.tok(pos) else { break };
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !prev_minus => depth -= 1,
                    ":" if depth == 0
                        && !self.is_p(pos + 1, ":")
                        && !self.is_p(pos.wrapping_sub(1), ":") =>
                    {
                        has_colon_at = Some(pos);
                    }
                    _ => {}
                }
                prev_minus = text == "-";
            } else {
                prev_minus = false;
            }
            if has_colon_at.is_some() {
                break;
            }
        }
        let Some(colon) = has_colon_at else {
            // Receiver shorthand; render the whole thing as the type.
            let ty = self.render(span);
            return ("self".to_string(), ty);
        };
        // Name: strip `mut` / `ref`; non-identifier patterns become `_`.
        let mut name = String::from("_");
        for pos in span.0..colon {
            if let Some(id) = self.any_ident(pos) {
                if id != "mut" && id != "ref" {
                    name = id.to_string();
                }
            } else {
                name = String::from("_");
                break;
            }
        }
        (name, self.render((colon + 1, span.1)))
    }

    fn render(&self, span: (usize, usize)) -> String {
        let idxs: Vec<usize> = (span.0..span.1)
            .filter_map(|p| self.code.get(p).copied())
            .collect();
        let mut out = String::new();
        let mut prev_wordy = false;
        for i in idxs {
            let tok = &self.tokens[i];
            let text = tok.text(self.src);
            let wordy = matches!(
                tok.kind,
                TokenKind::Ident | TokenKind::Int | TokenKind::Float | TokenKind::Lifetime
            );
            if prev_wordy && wordy && !out.is_empty() {
                out.push(' ');
            }
            out.push_str(text);
            prev_wordy = wordy;
        }
        out
    }

    fn record_cfg_test_span(&mut self, attr_start: usize, end_pos: usize) {
        let lo = self.code.get(attr_start).map(|&i| self.tokens[i].lo);
        let hi = end_pos
            .checked_sub(1)
            .and_then(|p| self.code.get(p))
            .map(|&i| self.tokens[i].hi);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            self.out.cfg_test_spans.push((lo, hi));
        }
    }

    /// Parses the `use` tree at `pos` (after the `use` keyword) into
    /// leaf imports; returns the pos past the closing `;`.
    fn parse_use(&mut self, mut pos: usize, prefix: &mut Vec<String>, module: &[String]) -> usize {
        loop {
            match self.any_ident(pos) {
                Some(seg) => {
                    let seg = seg.to_string();
                    if self.is_p(pos + 1, ":") && self.is_p(pos + 2, ":") {
                        prefix.push(seg);
                        pos += 3;
                        if self.is_p(pos, "{") {
                            // Group: recurse per element.
                            pos += 1;
                            loop {
                                if self.is_p(pos, "}") {
                                    pos += 1;
                                    break;
                                }
                                if self.is_p(pos, ",") {
                                    pos += 1;
                                    continue;
                                }
                                if self.tok(pos).is_none() {
                                    break;
                                }
                                pos = self.parse_use_leaf(pos, prefix, module);
                            }
                            prefix.pop();
                            return pos;
                        }
                        if self.is_p(pos, "*") {
                            prefix.pop();
                            return pos + 1;
                        }
                        continue;
                    }
                    // Final segment, maybe `as` alias.
                    let (alias, next) = if self.is_ident(pos + 1, "as") {
                        (self.text(pos + 2).to_string(), pos + 3)
                    } else {
                        (seg.clone(), pos + 1)
                    };
                    let mut path = prefix.clone();
                    if seg != "self" {
                        path.push(seg);
                    }
                    self.out.uses.push(UseItem {
                        alias,
                        path,
                        module: module.to_vec(),
                    });
                    return next;
                }
                None => return pos + 1,
            }
        }
    }

    fn parse_use_leaf(&mut self, pos: usize, prefix: &mut Vec<String>, module: &[String]) -> usize {
        // Inside a `{…}` group an element is itself a use tree (without
        // the trailing `;`).
        self.parse_use(pos, prefix, module)
    }

    fn parse_fn(&mut self, kw_pos: usize, vis: Vis, test: bool) {
        let name_pos = kw_pos + 1;
        let Some(name) = self.any_ident(name_pos).map(str::to_string) else {
            self.pos = kw_pos + 1;
            return;
        };
        let line = self.line_at(kw_pos);
        let mut pos = self.skip_generics(name_pos + 1);
        let mut params_span = (pos, pos);
        if self.is_p(pos, "(") {
            let end = self.skip_balanced(pos);
            params_span = (pos + 1, end.saturating_sub(1));
            pos = end;
        }
        // Return type: after `->`, until `{` / `;` / `where`.
        let mut ret_span = (pos, pos);
        if self.is_p(pos, "-") && self.is_p(pos + 1, ">") {
            let start = pos + 2;
            let mut p = start;
            let mut depth = 0i64;
            let mut prev_minus = false;
            while let Some(tok) = self.tok(p) {
                let text = tok.text(self.src);
                if tok.kind == TokenKind::Punct {
                    match text {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ">" if !prev_minus => depth -= 1,
                        "{" if depth <= 0 => break,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    prev_minus = text == "-";
                } else {
                    prev_minus = false;
                    if depth <= 0 && (text == "where") {
                        break;
                    }
                }
                p += 1;
            }
            ret_span = (start, p);
            pos = p;
        }
        // Skip a `where` clause.
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct && (text == "{" || text == ";") {
                break;
            }
            pos += 1;
        }
        let body = if self.is_p(pos, "{") {
            let end = self.skip_balanced(pos);
            let span = (pos + 1, end.saturating_sub(1));
            pos = end;
            Some(span)
        } else {
            pos += 1; // the `;`
            None
        };
        let params = self.parse_params(params_span);
        let ret = self.render(ret_span);
        let item = FnItem {
            qual: self.qual(&name),
            name,
            line,
            vis,
            self_ty: self.self_ty(),
            in_test: test || self.in_test_scope(),
            params_span: (
                self.code.get(params_span.0).copied().unwrap_or(0),
                self.code.get(params_span.1).copied().unwrap_or(0),
            ),
            ret_span: (
                self.code.get(ret_span.0).copied().unwrap_or(0),
                self.code.get(ret_span.1).copied().unwrap_or(0),
            ),
            body: body.map(|(a, b)| {
                (
                    self.code.get(a).copied().unwrap_or(0),
                    self.code.get(b).copied().unwrap_or(0),
                )
            }),
            params,
            ret,
        };
        self.out.fns.push(item);
        self.pos = pos;
    }

    fn parse_const(&mut self, kw_pos: usize, vis: Vis, test: bool, is_static: bool) {
        // `const NAME: Ty = init;` / `static [mut] NAME: Ty = init;`
        let mut pos = kw_pos + 1;
        if self.is_ident(pos, "mut") {
            pos += 1;
        }
        let name = match self.tok(pos) {
            Some(t) if t.kind == TokenKind::Ident => t.text(self.src).to_string(),
            Some(t) if t.kind == TokenKind::Punct && t.text(self.src) == "_" => "_".to_string(),
            _ => {
                self.pos = pos;
                return;
            }
        };
        let line = self.line_at(kw_pos);
        // Phase 1 — the type, up to the `=` at depth 0. Angle-aware:
        // associated bindings (`dyn Iterator<Item = u32>`) hide their
        // `=` at angle depth > 0.
        let mut depth = 0i64;
        let mut prev_minus = false;
        let mut init_start = None;
        let mut end = pos;
        let mut p = pos + 1;
        while let Some(tok) = self.tok(p) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !prev_minus => depth -= 1,
                    "=" if depth == 0 && !self.is_p(p + 1, "=") => {
                        init_start = Some(p + 1);
                        p += 1;
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                prev_minus = text == "-";
            } else {
                prev_minus = false;
            }
            p += 1;
        }
        // Phase 2 — the initializer *expression*, up to the `;` at
        // bracket depth 0. Brackets only: `1 << 4` or `a < b` would
        // desync an angle counter here.
        let mut depth = 0i64;
        while let Some(tok) = self.tok(p) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => {
                        end = p;
                        break;
                    }
                    _ => {}
                }
            }
            p += 1;
        }
        let init = (init_start.unwrap_or(end), end);
        let item = ConstItem {
            qual: self.qual(&name),
            name,
            line,
            end_line: self.line_at(end),
            vis,
            is_static,
            in_test: test || self.in_test_scope(),
            init: (
                self.code.get(init.0).copied().unwrap_or(0),
                self.code.get(init.1).copied().unwrap_or(0),
            ),
        };
        self.out.consts.push(item);
        self.pos = end + 1;
    }

    /// Renders the generics group at `pos` (without the angle brackets)
    /// and returns `(text, pos past the closing >)`.
    fn capture_generics(&self, pos: usize) -> (String, usize) {
        if self.is_p(pos, "<") {
            let end = self.skip_balanced(pos);
            (self.render((pos + 1, end.saturating_sub(1))), end)
        } else {
            (String::new(), pos)
        }
    }

    fn parse_struct(&mut self, kw_pos: usize, vis: Vis, test: bool) {
        let Some(name) = self.any_ident(kw_pos + 1).map(str::to_string) else {
            self.pos = kw_pos + 1;
            return;
        };
        let line = self.line_at(kw_pos);
        let (generics, mut pos) = self.capture_generics(kw_pos + 2);
        // Skip a `where` clause.
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct && (text == "{" || text == "(" || text == ";") {
                break;
            }
            pos += 1;
        }
        let mut fields = Vec::new();
        let mut tuple = false;
        if self.is_p(pos, "{") {
            let end = self.skip_balanced(pos);
            let mut p = pos + 1;
            while p < end.saturating_sub(1) {
                let (after_attrs, _, _) = self.skip_attrs(p);
                let (after_vis, fvis) = self.skip_vis(after_attrs);
                if let Some(fname) = self.any_ident(after_vis) {
                    if self.is_p(after_vis + 1, ":") {
                        // Type runs to the `,` or `}` at depth 0.
                        let ty_start = after_vis + 2;
                        let mut depth = 0i64;
                        let mut prev_minus = false;
                        let mut q = ty_start;
                        while q < end.saturating_sub(1) {
                            let Some(tok) = self.tok(q) else { break };
                            let text = tok.text(self.src);
                            if tok.kind == TokenKind::Punct {
                                match text {
                                    "(" | "[" | "{" | "<" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    ">" if !prev_minus => depth -= 1,
                                    "," if depth == 0 => break,
                                    _ => {}
                                }
                                prev_minus = text == "-";
                            } else {
                                prev_minus = false;
                            }
                            q += 1;
                        }
                        fields.push(FieldItem {
                            name: fname.to_string(),
                            line: self.line_at(after_vis),
                            vis: fvis,
                            ty: self.render((ty_start, q)),
                        });
                        p = q + 1;
                        continue;
                    }
                }
                p += 1;
            }
            pos = end;
        } else if self.is_p(pos, "(") {
            // Tuple struct: positional fields named `0`, `1`, …
            tuple = true;
            let end = self.skip_balanced(pos);
            let inner = (pos + 1, end.saturating_sub(1));
            let mut part_start = inner.0;
            let mut depth = 0i64;
            let mut cuts = Vec::new();
            for p in inner.0..inner.1 {
                let Some(tok) = self.tok(p) else { break };
                let text = tok.text(self.src);
                if tok.kind == TokenKind::Punct {
                    match text {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth -= 1,
                        "," if depth == 0 => cuts.push(p),
                        _ => {}
                    }
                }
            }
            cuts.push(inner.1);
            for cut in cuts {
                let piece = (part_start, cut);
                part_start = cut + 1;
                if piece.1 <= piece.0 {
                    continue;
                }
                let (after_attrs, _, _) = self.skip_attrs(piece.0);
                let (after_vis, fvis) = self.skip_vis(after_attrs);
                fields.push(FieldItem {
                    name: fields.len().to_string(),
                    line: self.line_at(after_vis),
                    vis: fvis,
                    ty: self.render((after_vis, piece.1)),
                });
            }
            pos = end;
            // Skip any trailing `where` clause up to the `;`.
            while let Some(tok) = self.tok(pos) {
                if tok.kind == TokenKind::Punct && tok.text(self.src) == ";" {
                    pos += 1;
                    break;
                }
                pos += 1;
            }
        } else if self.is_p(pos, ";") {
            pos += 1;
        }
        self.out.structs.push(StructItem {
            qual: self.qual(&name),
            name,
            line,
            vis,
            in_test: test || self.in_test_scope(),
            tuple,
            generics,
            fields,
        });
        self.pos = pos;
    }

    fn parse_enum(&mut self, kw_pos: usize, vis: Vis, test: bool) {
        let Some(name) = self.any_ident(kw_pos + 1).map(str::to_string) else {
            self.pos = kw_pos + 1;
            return;
        };
        let line = self.line_at(kw_pos);
        let (generics, mut pos) = self.capture_generics(kw_pos + 2);
        // Skip a `where` clause.
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct && (text == "{" || text == ";") {
                break;
            }
            pos += 1;
        }
        let mut variants = Vec::new();
        if self.is_p(pos, "{") {
            let end = self.skip_balanced(pos);
            let mut p = pos + 1;
            while p < end.saturating_sub(1) {
                let (after_attrs, _, _) = self.skip_attrs(p);
                let Some(vname) = self.any_ident(after_attrs) else {
                    p = after_attrs + 1;
                    continue;
                };
                variants.push(VariantItem {
                    name: vname.to_string(),
                    line: self.line_at(after_attrs),
                });
                // Skip the payload (`(…)` / `{…}`) and any `= discr`
                // expression up to the `,` at depth 0.
                let mut q = after_attrs + 1;
                let mut depth = 0i64;
                while q < end.saturating_sub(1) {
                    let Some(tok) = self.tok(q) else { break };
                    let text = tok.text(self.src);
                    if tok.kind == TokenKind::Punct {
                        match text {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => {
                                q += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    q += 1;
                }
                p = q;
            }
            pos = end;
        } else if self.is_p(pos, ";") {
            pos += 1;
        }
        self.out.enums.push(EnumItem {
            qual: self.qual(&name),
            name,
            line,
            vis,
            in_test: test || self.in_test_scope(),
            generics,
            variants,
        });
        self.pos = pos;
    }

    fn parse_impl_or_trait(&mut self, kw_pos: usize, test: bool, is_trait: bool) {
        let mut pos = if is_trait {
            // `trait Name …` / `trait Name<…>: Bound {`
            kw_pos + 1
        } else {
            self.skip_generics(kw_pos + 1)
        };
        // Collect the self type: the last depth-0 identifier before
        // `{` / `where`; a `for` resets (trait impl: type follows).
        let mut self_ty = String::new();
        let mut depth = 0i64;
        let mut prev_minus = false;
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct {
                match text {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ">" if !prev_minus => depth -= 1,
                    "{" if depth <= 0 => break,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                prev_minus = text == "-";
            } else {
                prev_minus = false;
                if depth <= 0 {
                    match text {
                        "where" => break,
                        "for" => self_ty.clear(),
                        _ if tok.kind == TokenKind::Ident
                            && !matches!(text, "dyn" | "mut" | "const" | "unsafe") =>
                        {
                            self_ty = text.to_string();
                        }
                        _ => {}
                    }
                }
            }
            pos += 1;
        }
        // Skip any `where` clause to the opening brace.
        while let Some(tok) = self.tok(pos) {
            let text = tok.text(self.src);
            if tok.kind == TokenKind::Punct && (text == "{" || text == ";") {
                break;
            }
            pos += 1;
        }
        if self.is_p(pos, "{") {
            self.scopes.push(Scope::ImplOrTrait { self_ty, test });
            self.pos = pos + 1;
        } else {
            self.pos = pos + 1;
        }
    }

    fn run(&mut self) {
        while self.pos < self.code.len() {
            let (pos, test, attr_start) = self.skip_attrs(self.pos);
            let scope_start = pos;
            let (pos, vis) = self.skip_vis(pos);
            // Item-qualifier keywords that may precede `fn`.
            let mut p = pos;
            let mut qualified_fn = false;
            while matches!(self.any_ident(p), Some("unsafe" | "async" | "extern")) {
                p += 1;
                if self.tok(p).is_some_and(|t| t.kind == TokenKind::Str) {
                    p += 1; // the ABI string of `extern "C"`
                }
                qualified_fn = true;
            }
            if self.is_ident(p, "const") && self.is_ident(p + 1, "fn") {
                p += 1;
                qualified_fn = true;
            }
            match self.any_ident(p) {
                Some("fn") => {
                    let body_known_test = test;
                    self.parse_fn(p, vis, body_known_test);
                    if test {
                        let end = self.pos;
                        self.record_cfg_test_span(attr_start.unwrap_or(scope_start), end);
                    }
                }
                Some("mod") if !qualified_fn => {
                    if let Some(name) = self.any_ident(p + 1).map(str::to_string) {
                        if self.is_p(p + 2, "{") {
                            if test {
                                // Record the whole gated module extent.
                                let end = self.skip_balanced(p + 2);
                                self.record_cfg_test_span(attr_start.unwrap_or(scope_start), end);
                            }
                            self.scopes.push(Scope::Mod {
                                name: Some(name),
                                test,
                            });
                            self.pos = p + 3;
                        } else {
                            self.pos = p + 2; // `mod name;`
                        }
                    } else {
                        self.pos = p + 1;
                    }
                }
                Some("use") if !qualified_fn => {
                    let module = self.module_path();
                    let mut prefix = Vec::new();
                    let next = self.parse_use(p + 1, &mut prefix, &module);
                    // Consume the trailing `;` if present.
                    self.pos = if self.is_p(next, ";") { next + 1 } else { next };
                }
                Some("const") if !qualified_fn => {
                    self.parse_const(p, vis, test, false);
                }
                Some("static") if !qualified_fn => {
                    self.parse_const(p, vis, test, true);
                }
                Some("struct") if !qualified_fn => {
                    self.parse_struct(p, vis, test);
                }
                Some("enum") if !qualified_fn => {
                    if test {
                        // Record the gated item's extent before parsing.
                        let mut q = p + 2;
                        while let Some(tok) = self.tok(q) {
                            let text = tok.text(self.src);
                            if tok.kind == TokenKind::Punct && (text == "{" || text == ";") {
                                break;
                            }
                            q += 1;
                        }
                        let end = if self.is_p(q, "{") {
                            self.skip_balanced(q)
                        } else {
                            q + 1
                        };
                        self.record_cfg_test_span(attr_start.unwrap_or(scope_start), end);
                    }
                    self.parse_enum(p, vis, test);
                }
                Some("union") if !qualified_fn => {
                    // Record nothing, skip the body.
                    let mut q = p + 2;
                    while let Some(tok) = self.tok(q) {
                        let text = tok.text(self.src);
                        if tok.kind == TokenKind::Punct && (text == "{" || text == ";") {
                            break;
                        }
                        q += 1;
                    }
                    if self.is_p(q, "{") {
                        if test {
                            let end = self.skip_balanced(q);
                            self.record_cfg_test_span(attr_start.unwrap_or(scope_start), end);
                        }
                        self.pos = self.skip_balanced(q);
                    } else {
                        self.pos = q + 1;
                    }
                }
                Some("impl") if !qualified_fn => {
                    self.parse_impl_or_trait(p, test, false);
                }
                Some("trait") if !qualified_fn => {
                    self.parse_impl_or_trait(p, test, true);
                }
                Some("macro_rules") => {
                    // `macro_rules! name { … }` — token soup, skip.
                    let mut q = p + 1;
                    while let Some(tok) = self.tok(q) {
                        if tok.kind == TokenKind::Punct && tok.text(self.src) == "{" {
                            break;
                        }
                        q += 1;
                    }
                    self.pos = self.skip_balanced(q);
                }
                Some("type") if !qualified_fn => {
                    let mut q = p + 1;
                    while let Some(tok) = self.tok(q) {
                        if tok.kind == TokenKind::Punct && tok.text(self.src) == ";" {
                            break;
                        }
                        q += 1;
                    }
                    self.pos = q + 1;
                }
                _ => {
                    if self.is_p(p, "}") {
                        self.scopes.pop();
                        self.pos = p + 1;
                    } else if self.is_p(p, "{") {
                        // Unrecognized brace group at item position
                        // (e.g. a macro invocation body): skip balanced.
                        self.pos = self.skip_balanced(p);
                    } else if p >= self.code.len() {
                        break;
                    } else {
                        self.pos = p + 1;
                    }
                }
            }
        }
    }
}

/// Extracts the item tree of one file.
pub fn parse_items(rel: &str, src: &str, tokens: &[Token]) -> ItemSet {
    let (crate_key, root_mods) = file_module_path(rel);
    let index = crate::lex::LineIndex::new(src);
    let line_of: Vec<usize> = tokens.iter().map(|t| index.line(t.lo)).collect();
    let mut parser = Parser {
        src,
        tokens,
        code: crate::lex::code_tokens(tokens),
        pos: 0,
        line_of,
        out: ItemSet::default(),
        crate_key,
        root_mods,
        scopes: Vec::new(),
    };
    parser.run();
    parser.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(rel: &str, src: &str) -> ItemSet {
        parse_items(rel, src, &lex(src))
    }

    const FIXTURE: &str = r#"
//! Docs.

use std::collections::{BTreeMap, HashMap as Map};
use crate::units::Seconds;

pub const K1: f64 = 0.22;

pub struct Board {
    pub freq_mhz: f64,
    cores: Vec<Core>,
}

impl Board {
    /// Steps the board.
    pub fn step(&mut self, dt: Seconds) -> f64 {
        helper(dt)
    }
}

fn helper(dt: Seconds) -> f64 {
    dt.value()
}

mod inner {
    pub fn nested() {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::helper(Seconds::new(1.0));
    }
}
"#;

    #[test]
    fn fns_carry_quals_and_signatures() {
        let set = items("crates/soc/src/board.rs", FIXTURE);
        let quals: Vec<&str> = set
            .fns
            .iter()
            .filter(|f| !f.in_test)
            .map(|f| f.qual.as_str())
            .collect();
        assert_eq!(
            quals,
            vec![
                "soc::board::Board::step",
                "soc::board::helper",
                "soc::board::inner::nested",
            ]
        );
        let step = &set.fns[0];
        assert_eq!(step.vis, Vis::Pub);
        assert_eq!(step.self_ty.as_deref(), Some("Board"));
        assert_eq!(step.ret, "f64");
        assert_eq!(step.params.len(), 2);
        assert_eq!(step.params[0].0, "self");
        assert_eq!(step.params[1], ("dt".to_string(), "Seconds".to_string()));
        assert!(step.body.is_some());
    }

    #[test]
    fn test_items_are_marked_and_spanned() {
        let set = items("crates/soc/src/board.rs", FIXTURE);
        let test_fns: Vec<&FnItem> = set.fns.iter().filter(|f| f.in_test).collect();
        assert_eq!(test_fns.len(), 1);
        assert_eq!(test_fns[0].name, "t");
        assert_eq!(set.cfg_test_spans.len(), 1);
        let (lo, hi) = set.cfg_test_spans[0];
        let span_text = &FIXTURE[lo..hi];
        assert!(span_text.starts_with("#[cfg(test)]"));
        assert!(span_text.contains("fn t()"));
    }

    #[test]
    fn consts_structs_and_uses() {
        let set = items("crates/soc/src/board.rs", FIXTURE);
        assert_eq!(set.consts.len(), 1);
        assert_eq!(set.consts[0].qual, "soc::board::K1");
        assert_eq!(set.consts[0].vis, Vis::Pub);

        assert_eq!(set.structs.len(), 1);
        let board = &set.structs[0];
        assert_eq!(board.name, "Board");
        assert_eq!(board.fields.len(), 2);
        assert_eq!(board.fields[0].name, "freq_mhz");
        assert_eq!(board.fields[0].ty, "f64");
        assert_eq!(board.fields[0].vis, Vis::Pub);
        assert_eq!(board.fields[1].vis, Vis::Private);
        assert_eq!(board.fields[1].ty, "Vec<Core>");

        let aliases: Vec<(&str, Vec<&str>)> = set
            .uses
            .iter()
            .map(|u| {
                (
                    u.alias.as_str(),
                    u.path.iter().map(String::as_str).collect(),
                )
            })
            .collect();
        assert!(aliases.contains(&("BTreeMap", vec!["std", "collections", "BTreeMap"])));
        assert!(aliases.contains(&("Map", vec!["std", "collections", "HashMap"])));
        assert!(aliases.contains(&("Seconds", vec!["crate", "units", "Seconds"])));
    }

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(
            file_module_path("crates/soc/src/thermal.rs"),
            ("soc".to_string(), vec!["thermal".to_string()])
        );
        assert_eq!(
            file_module_path("crates/campaign/src/fleet/mod.rs"),
            ("campaign".to_string(), vec!["fleet".to_string()])
        );
        assert_eq!(
            file_module_path("crates/campaign/src/fleet/report.rs"),
            (
                "campaign".to_string(),
                vec!["fleet".to_string(), "report".to_string()]
            )
        );
        assert_eq!(
            file_module_path("src/lib.rs"),
            ("dora-repro".to_string(), vec![])
        );
        assert_eq!(
            file_module_path("xtask/src/passes/mod.rs"),
            ("xtask".to_string(), vec!["passes".to_string()])
        );
    }

    #[test]
    fn trait_methods_and_const_fn() {
        let src = "pub trait Governor {\n    fn decide(&mut self) -> u64;\n    fn name(&self) -> &str {\n        \"x\"\n    }\n}\npub const fn from_khz(khz: u64) -> u64 {\n    khz\n}\n";
        let set = items("crates/governors/src/lib.rs", src);
        let names: Vec<&str> = set.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["decide", "name", "from_khz"]);
        assert_eq!(set.fns[0].self_ty.as_deref(), Some("Governor"));
        assert!(set.fns[0].body.is_none());
        assert!(set.fns[1].body.is_some());
        assert_eq!(set.fns[2].qual, "governors::from_khz");
        // `const fn` is a fn, not a const item.
        assert!(set.consts.is_empty());
    }

    #[test]
    fn comparison_operators_in_bodies_do_not_desync_the_parser() {
        // `<=` / `<` in expressions must not be mistaken for generics:
        // a desync here would swallow the `#[cfg(test)]` module below.
        let src = "fn contains(spans: &[(usize, usize)], lo: usize) -> bool {\n    spans.iter().any(|&(a, b)| a <= lo && lo < b)\n}\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\n";
        let set = items("crates/soc/src/board.rs", src);
        assert_eq!(set.fns.len(), 2, "{:?}", set.fns);
        assert!(!set.fns[0].in_test);
        assert!(set.fns[1].in_test);
        assert_eq!(set.cfg_test_spans.len(), 1);
        let (lo, _) = set.cfg_test_spans[0];
        assert!(src[lo..].starts_with("#[cfg(test)]"));
    }

    #[test]
    fn shifts_and_comparisons_in_const_initializers_terminate() {
        let src = "pub const MASK: usize = 1 << 4;\npub const NEXT: f64 = 0.5;\n";
        let set = items("crates/soc/src/lib.rs", src);
        let names: Vec<&str> = set.consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["MASK", "NEXT"]);
        assert_eq!(set.consts[0].end_line, 1);
    }

    #[test]
    fn struct_items_carry_quals_generics_and_tuple_flags() {
        let src = "pub struct Plain {\n    pub a: f64,\n}\n\npub struct Sketch<T: Clone, const N: usize> {\n    bins: [T; N],\n}\n\npub struct Pair(pub f64, u64);\n\npub struct Marker;\n";
        let set = items("crates/sim-core/src/sketch.rs", src);
        let names: Vec<&str> = set.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Plain", "Sketch", "Pair", "Marker"]);

        let plain = &set.structs[0];
        assert_eq!(plain.qual, "sim-core::sketch::Plain");
        assert!(plain.generics.is_empty());
        assert!(!plain.tuple);

        let sketch = &set.structs[1];
        assert_eq!(sketch.generics, "T:Clone,const N:usize");
        assert_eq!(sketch.fields.len(), 1);
        assert_eq!(sketch.fields[0].name, "bins");
        assert_eq!(sketch.fields[0].ty, "[T;N]");

        let pair = &set.structs[2];
        assert!(pair.tuple);
        assert_eq!(pair.fields.len(), 2);
        assert_eq!(pair.fields[0].name, "0");
        assert_eq!(pair.fields[0].ty, "f64");
        assert_eq!(pair.fields[0].vis, Vis::Pub);
        assert_eq!(pair.fields[1].name, "1");
        assert_eq!(pair.fields[1].ty, "u64");
        assert_eq!(pair.fields[1].vis, Vis::Private);

        assert!(set.structs[3].fields.is_empty());
    }

    #[test]
    fn struct_where_clauses_do_not_swallow_fields() {
        let src = "pub struct Held<T>\nwhere\n    T: Clone + Send,\n{\n    pub inner: Vec<T>,\n    pub count: u64,\n}\n\npub struct TupleWhere<T>(T)\nwhere\n    T: Copy;\n\nfn after() {}\n";
        let set = items("crates/soc/src/hold.rs", src);
        assert_eq!(set.structs.len(), 2);
        let held = &set.structs[0];
        assert_eq!(held.generics, "T");
        let fields: Vec<&str> = held.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["inner", "count"]);
        assert_eq!(held.fields[0].ty, "Vec<T>");
        assert!(set.structs[1].tuple);
        // The parser resynchronizes after the trailing where clause.
        assert_eq!(set.fns.len(), 1);
        assert_eq!(set.fns[0].name, "after");
    }

    #[test]
    fn cfg_test_gated_fields_are_still_indexed() {
        // A `#[cfg(test)]` attribute on one *field* gates the field, not
        // the struct: the struct is library code and the field is kept
        // in the index (state-coverage treats it like any other field;
        // the justification mechanism handles intentional gaps).
        let src = "pub struct Probe {\n    pub live: u64,\n    #[cfg(test)]\n    pub test_only: u64,\n}\n";
        let set = items("crates/sim-core/src/probe.rs", src);
        assert_eq!(set.structs.len(), 1);
        let probe = &set.structs[0];
        assert!(!probe.in_test);
        let fields: Vec<&str> = probe.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["live", "test_only"]);
        // A struct *under* #[cfg(test)] is marked in_test wholesale.
        let gated = items(
            "crates/sim-core/src/probe.rs",
            "#[cfg(test)]\nmod tests {\n    struct Helper {\n        x: u64,\n    }\n}\n",
        );
        assert!(gated.structs[0].in_test);
    }

    #[test]
    fn enums_carry_variants_and_quals() {
        let src = "pub enum Policy {\n    Conservative,\n    Ondemand { sample_ms: u64 },\n    Fixed(u64),\n}\n\n#[derive(Debug)]\npub enum Verdict<T>\nwhere\n    T: Clone,\n{\n    Pass(T),\n    Fail = 2,\n}\n\nfn after() {}\n";
        let set = items("crates/governors/src/policy.rs", src);
        assert_eq!(set.enums.len(), 2);
        let policy = &set.enums[0];
        assert_eq!(policy.qual, "governors::policy::Policy");
        let variants: Vec<&str> = policy.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(variants, vec!["Conservative", "Ondemand", "Fixed"]);
        let verdict = &set.enums[1];
        assert_eq!(verdict.generics, "T");
        let variants: Vec<&str> = verdict.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(variants, vec!["Pass", "Fail"]);
        // Payload field names (`sample_ms`) are not variants, and the
        // parser resynchronizes after the enums.
        assert_eq!(set.fns.len(), 1);
        assert_eq!(set.fns[0].name, "after");
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let src = "impl fmt::Display for Span {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n        todo!()\n    }\n}\n";
        let set = items("crates/soc/src/lib.rs", src);
        assert_eq!(set.fns.len(), 1);
        assert_eq!(set.fns[0].qual, "soc::Span::fmt");
    }
}
