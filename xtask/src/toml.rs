//! A dependency-free parser for the TOML subset `xtask.toml` uses.
//!
//! Supported: `[table]` headers, bare and quoted keys, string / integer /
//! float / boolean values, and (nested, multi-line) arrays. Unsupported on
//! purpose: dotted keys, arrays of tables, datetimes, multi-line strings.
//! The goal is a config file humans edit, not TOML conformance; anything
//! outside the subset is a parse error, never a silent misread.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values (possibly nested).
    Array(Vec<Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload, accepting either float or integer syntax.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A document: table name → (key → value). Keys defined before any
/// `[table]` header land in the `""` table.
pub type Document = BTreeMap<String, BTreeMap<String, Value>>;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("xtask.toml:{}: {msg}", self.line)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips whitespace, newlines and `#` comments.
    fn skip_trivia(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips spaces and tabs only (not newlines).
    fn skip_inline(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            // Peek before bumping so the reported line is the one the
            // string started on, not the line after the stray newline.
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.bump();
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.err("unsupported escape in string")),
                    }
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    fn parse_bare(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'+') {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn parse_key(&mut self) -> Result<String, String> {
        if self.peek() == Some(b'"') {
            self.parse_string()
        } else {
            let key = self.parse_bare();
            if key.is_empty() {
                Err(self.err("expected a key"))
            } else {
                Ok(key)
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Value::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(_) => {
                let tok = self.parse_bare();
                if tok == "true" {
                    Ok(Value::Bool(true))
                } else if tok == "false" {
                    Ok(Value::Bool(false))
                } else if let Ok(i) = tok.replace('_', "").parse::<i64>() {
                    Ok(Value::Int(i))
                } else if let Ok(f) = tok.parse::<f64>() {
                    Ok(Value::Float(f))
                } else {
                    Err(self.err(&format!("unrecognized value `{tok}`")))
                }
            }
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_document(&mut self) -> Result<Document, String> {
        let mut doc: Document = BTreeMap::new();
        let mut table = String::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Ok(doc),
                Some(b'[') => {
                    self.bump();
                    self.skip_inline();
                    table = self.parse_key()?;
                    self.skip_inline();
                    if self.bump() != Some(b']') {
                        return Err(self.err("expected `]` after table name"));
                    }
                    doc.entry(table.clone()).or_default();
                }
                Some(_) => {
                    let key = self.parse_key()?;
                    self.skip_inline();
                    if self.bump() != Some(b'=') {
                        return Err(self.err(&format!("expected `=` after key `{key}`")));
                    }
                    self.skip_inline();
                    let value = self.parse_value()?;
                    let entries = doc.entry(table.clone()).or_default();
                    if entries.insert(key.clone(), value).is_some() {
                        return Err(self.err(&format!("duplicate key `{key}` in `[{table}]`")));
                    }
                }
            }
        }
    }
}

/// Parses a document; errors carry a `xtask.toml:<line>` prefix.
pub fn parse(src: &str) -> Result<Document, String> {
    Parser::new(src).parse_document()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_keys_and_scalars() {
        let doc =
            parse("top = 1\n[levels]\nfoo-bar = \"warn\"\nn = 3\nf = 2.5\nok = true\n# comment\n")
                .expect("parses");
        assert_eq!(doc[""]["top"], Value::Int(1));
        assert_eq!(doc["levels"]["foo-bar"].as_str(), Some("warn"));
        assert_eq!(doc["levels"]["f"].as_float(), Some(2.5));
        assert_eq!(doc["levels"]["ok"], Value::Bool(true));
    }

    #[test]
    fn quoted_keys_hold_paths() {
        let doc = parse("[budget]\n\"crates/soc/src/board.rs\" = 6\n").expect("parses");
        assert_eq!(doc["budget"]["crates/soc/src/board.rs"].as_int(), Some(6));
    }

    #[test]
    fn nested_multiline_arrays() {
        let doc = parse("[layering]\nlayers = [\n  [\"a\", \"b\"], # layer 0\n  [\"c\"],\n]\n")
            .expect("parses");
        let layers = doc["layering"]["layers"].as_array().expect("array");
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].as_array().expect("inner")[1].as_str(), Some("b"));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("a = 1\na = 2\n").expect_err("duplicate");
        assert!(err.contains("duplicate key `a`"), "{err}");
    }

    #[test]
    fn unterminated_string_is_an_error_with_line() {
        let err = parse("a = \"oops\n").expect_err("unterminated");
        assert!(err.starts_with("xtask.toml:1:"), "{err}");
    }
}
