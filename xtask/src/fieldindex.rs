//! Per-function field-access index over the token stream.
//!
//! For a function body this extracts every token position that *uses* a
//! struct field: dotted projections (`self.energy`, `other.count`,
//! `snapshot.seed`), struct-literal keys (`BoardSnapshot { seed: …, now }`
//! — including the shorthand form and struct *patterns*, which
//! destructure fields and therefore count as access), and dotted method
//! calls (recorded separately so `self.merge(…)` is never mistaken for a
//! field named `merge`).
//!
//! The extractor is a deliberate over-approximation in the same spirit
//! as [`crate::callgraph`]: it does not resolve types, so `a.count` and
//! `b.count` both witness a field named `count` regardless of what `a`
//! and `b` are. For the state-coverage pass this is the conservative
//! direction — a method that truly transfers every field always passes,
//! and a false "covered" verdict requires another struct in the same
//! body to share the missing field's name, which review catches. It
//! never produces false *positives* for that pass.
//!
//! Disambiguation rules (token-level, single-character `Punct`s):
//! - `a..b` range endpoints are not projections: an ident after `.` is
//!   only a projection when the token before the `.` is not another `.`.
//! - `x.collect::<V>()` is a method call, not a projection: a `(` or a
//!   `::` turbofish after the ident reclassifies it.
//! - struct-literal keys are only collected inside brace groups opened
//!   by a type-like path head (`Ident` starting uppercase, or `Self`),
//!   so closure parameters and plain blocks never contribute keys.

use crate::items::FnItem;
use crate::lex::{LineIndex, TokenKind};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// How a field name was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Dotted projection: `recv.field`.
    Projection,
    /// Struct-literal or struct-pattern key: `Ty { field: … }` /
    /// `Ty { field }` / `let Ty { field } = …`.
    LiteralKey,
    /// Dotted method call: `recv.method(…)` (not a field access; kept so
    /// callers can distinguish deliberately).
    MethodCall,
}

/// One field-name use inside a function body.
#[derive(Debug, Clone)]
pub struct FieldAccess {
    /// The field (or method) name; tuple projections are `"0"`, `"1"`, …
    pub name: String,
    /// 1-based line of the use.
    pub line: usize,
    /// The receiver ident immediately before the dot (`self`, `other`,
    /// …), when there is a single-ident receiver; `None` for chained or
    /// parenthesised receivers and for literal keys.
    pub base: Option<String>,
    /// What kind of use this is.
    pub kind: AccessKind,
}

/// Extract every field-name use in `item`'s body. Returns an empty list
/// for bodyless trait methods.
pub fn body_accesses(file: &SourceFile, item: &FnItem) -> Vec<FieldAccess> {
    let Some((lo, hi)) = item.body else {
        return Vec::new();
    };
    let src = file.text.as_str();
    let index = LineIndex::new(&file.text);
    // Code tokens of the whole file; `start` is the first at/after `lo`.
    let code: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| !file.tokens[i].kind.is_trivia())
        .collect();
    let start = code.partition_point(|&i| i < lo);
    let end = code.partition_point(|&i| i < hi);
    let tok = |p: usize| code.get(p).map(|&j| &file.tokens[j]);
    let is_punct =
        |p: usize, s: &str| tok(p).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == s);
    // Stack of brace groups open at the cursor; `true` = struct-literal-
    // like (opened by an uppercase path head or `Self`).
    let mut braces: Vec<bool> = Vec::new();
    let mut out = Vec::new();
    for pos in start..end {
        let Some(t) = tok(pos) else {
            break;
        };
        let word = t.text(src);
        if t.kind == TokenKind::Punct {
            match word {
                "{" => {
                    let literal_like = pos > 0
                        && tok(pos - 1).is_some_and(|p| {
                            let s = p.text(src);
                            p.kind == TokenKind::Ident
                                && (s == "Self" || s.chars().next().is_some_and(char::is_uppercase))
                        });
                    braces.push(literal_like);
                }
                "}" => {
                    braces.pop();
                }
                _ => {}
            }
            continue;
        }
        let numeric = t.kind == TokenKind::Int;
        if t.kind != TokenKind::Ident && !numeric {
            continue;
        }
        let line = index.line(t.lo);
        // Dotted forms: ident/int preceded by a single `.`.
        if pos > start && is_punct(pos - 1, ".") && !(pos > start + 1 && is_punct(pos - 2, ".")) {
            if word == "await" {
                continue;
            }
            let base = (pos >= start + 2)
                .then(|| tok(pos - 2))
                .flatten()
                .filter(|b| b.kind == TokenKind::Ident)
                .map(|b| b.text(src).to_string());
            let kind =
                if is_punct(pos + 1, "(") || (is_punct(pos + 1, ":") && is_punct(pos + 2, ":")) {
                    AccessKind::MethodCall
                } else {
                    AccessKind::Projection
                };
            out.push(FieldAccess {
                name: word.to_string(),
                line,
                base,
                kind,
            });
            continue;
        }
        // Struct-literal / struct-pattern keys, only in literal-like
        // brace groups and only for idents.
        if numeric || braces.last() != Some(&true) {
            continue;
        }
        let after_open_or_comma = pos > start && (is_punct(pos - 1, "{") || is_punct(pos - 1, ","));
        if !after_open_or_comma {
            continue;
        }
        let keyed = is_punct(pos + 1, ":") && !is_punct(pos + 2, ":");
        let shorthand = is_punct(pos + 1, ",") || is_punct(pos + 1, "}");
        if keyed || shorthand {
            out.push(FieldAccess {
                name: word.to_string(),
                line,
                base: None,
                kind: AccessKind::LiteralKey,
            });
        }
    }
    out
}

/// The set of field names `item`'s body accesses (projections and
/// literal keys; method calls excluded).
pub fn accessed_fields(file: &SourceFile, item: &FnItem) -> BTreeSet<String> {
    body_accesses(file, item)
        .into_iter()
        .filter(|a| a.kind != AccessKind::MethodCall)
        .map(|a| a.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_accesses(body: &str) -> Vec<FieldAccess> {
        let src = format!("struct S;\nimpl S {{\n    fn m(&self) {{\n{body}\n    }}\n}}\n");
        let file = SourceFile::new("crates/x/src/lib.rs", &src);
        let item = file
            .items
            .fns
            .iter()
            .find(|f| f.name == "m")
            .expect("fn m")
            .clone();
        body_accesses(&file, &item)
    }

    fn names(accs: &[FieldAccess], kind: AccessKind) -> Vec<&str> {
        accs.iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.name.as_str())
            .collect()
    }

    #[test]
    fn projections_carry_base_and_skip_ranges() {
        let accs = fn_accesses(
            "        let x = self.energy;\n        let y = other.count + snapshot.seed;\n        for i in 0..n { let _ = i; }\n",
        );
        let proj = names(&accs, AccessKind::Projection);
        assert_eq!(proj, vec!["energy", "count", "seed"]);
        assert_eq!(accs[0].base.as_deref(), Some("self"));
        assert_eq!(accs[1].base.as_deref(), Some("other"));
    }

    #[test]
    fn method_calls_and_turbofish_are_not_projections() {
        let accs = fn_accesses(
            "        self.merge(other);\n        let v = xs.iter().collect::<Vec<_>>();\n        self.load_time.merge(&other.load_time);\n",
        );
        assert_eq!(
            names(&accs, AccessKind::MethodCall),
            vec!["merge", "iter", "collect", "merge"]
        );
        assert_eq!(
            names(&accs, AccessKind::Projection),
            vec!["load_time", "load_time"]
        );
    }

    #[test]
    fn tuple_projections_are_indexed_by_position() {
        let accs = fn_accesses("        let a = self.0;\n        let b = pair.1;\n");
        assert_eq!(names(&accs, AccessKind::Projection), vec!["0", "1"]);
    }

    #[test]
    fn literal_keys_require_a_type_like_head() {
        let accs = fn_accesses(
            "        let s = Snapshot { seed: 1, now, thermal: t };\n        let f = |x: u64| { x };\n        let b = { seed };\n",
        );
        assert_eq!(
            names(&accs, AccessKind::LiteralKey),
            vec!["seed", "now", "thermal"]
        );
    }

    #[test]
    fn struct_patterns_count_as_access() {
        let accs = fn_accesses("        let Self { count, mean } = self;\n");
        assert_eq!(names(&accs, AccessKind::LiteralKey), vec!["count", "mean"]);
    }

    #[test]
    fn struct_update_base_and_paths_do_not_leak_keys() {
        let accs = fn_accesses(
            "        let s = Snapshot { seed: 2, ..base };\n        let m = Mode::Fast;\n",
        );
        assert_eq!(names(&accs, AccessKind::LiteralKey), vec!["seed"]);
        assert!(names(&accs, AccessKind::Projection).is_empty());
    }

    #[test]
    fn accessed_fields_unions_projections_and_keys() {
        let src = "struct S;\nimpl S {\n    fn m(&self, o: &S) {\n        let _ = self.a;\n        let _ = S { b: 1, c };\n        self.d();\n    }\n}\n";
        let file = SourceFile::new("crates/x/src/lib.rs", src);
        let item = file.items.fns[0].clone();
        let got: Vec<String> = accessed_fields(&file, &item).into_iter().collect();
        assert_eq!(got, vec!["a", "b", "c"]);
    }

    #[test]
    fn bodyless_trait_methods_are_empty() {
        let file = SourceFile::new("crates/x/src/lib.rs", "trait T {\n    fn m(&self);\n}\n");
        let item = file.items.fns[0].clone();
        assert!(body_accesses(&file, &item).is_empty());
    }
}
