//! Shared justification-comment detection.
//!
//! Every dataflow pass accepts the same escape idiom the older passes
//! use: a `// <marker> <reason>` comment either trailing on the
//! flagged line or anywhere in the contiguous comment/attribute block
//! immediately above it. Markers are namespaced per lint (`dim:`,
//! `snapshot:`, `probe:`, `units:`, `merge:`, …) so a justification
//! silences exactly one pass.

/// Whether the 1-based `line` of `text` carries a `// <marker>`
/// justification — trailing on the line itself, or in the contiguous
/// `//`-comment / `#[…]`-attribute block directly above it.
pub fn justified(text: &str, line: usize, marker: &str) -> bool {
    let lines: Vec<&str> = text.lines().collect();
    let i = line.saturating_sub(1);
    if lines
        .get(i)
        .and_then(|l| l.find("//").map(|idx| &l[idx..]))
        .is_some_and(|c| c.contains(marker))
    {
        return true;
    }
    let mut i = i;
    while i > 0 {
        let above = lines.get(i - 1).map_or("", |l| l.trim_start());
        if above.starts_with("//") || above.starts_with("#[") {
            if above.contains(marker) {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::justified;

    #[test]
    fn trailing_marker_on_the_line_counts() {
        let text = "let a = 1;\nlet b = t.value() * p.value(); // dim: intentional\n";
        assert!(justified(text, 2, "dim:"));
        assert!(!justified(text, 1, "dim:"));
    }

    #[test]
    fn comment_block_above_counts_through_attributes() {
        let text =
            "// dim: raw product feeds the CSV column\n#[allow(dead_code)]\nlet b = t * p;\n";
        assert!(justified(text, 3, "dim:"));
    }

    #[test]
    fn non_contiguous_comment_does_not_count() {
        let text = "// dim: for the other line\n\nlet b = t * p;\n";
        assert!(!justified(text, 3, "dim:"));
    }

    #[test]
    fn markers_are_namespaced() {
        let text = "let b = t * p; // snapshot: not a dim escape\n";
        assert!(justified(text, 1, "snapshot:"));
        assert!(!justified(text, 1, "dim:"));
    }
}
