//! Statement-level control-flow graphs over the token stream.
//!
//! [`Cfg::build`] partitions a function body's code tokens (the
//! non-trivia tokens between its braces, as recorded in
//! [`crate::items::FnItem::body`]) into [`Stmt`] ranges grouped into
//! [`Block`]s, with edges for `if`/`else if`/`else` chains, `match`
//! arms, `while`/`while let`/`for`/`loop` back edges, `break`/
//! `continue`, and early exits (`return`, `?`). Two invariants hold by
//! construction and are pinned by `xtask/tests/cfg_properties.rs`:
//!
//! 1. every body code token belongs to exactly one statement of
//!    exactly one block (the builder walks the token list once,
//!    front to back, and never skips or revisits a position);
//! 2. every edge targets a block the graph owns.
//!
//! The graph is deliberately conservative rather than exact:
//!
//! - control keywords are recognized only in *statement* position.
//!   An `if`/`match` embedded in a larger expression (`let x = if …`)
//!   is swallowed into one [`StmtKind::Simple`] statement by
//!   bracket-balanced scanning, so its branches are invisible —
//!   clients see the statement's effects as a whole;
//! - a `?`, `return`, `break`, or `continue` *inside* a consumed
//!   statement (e.g. under `let … else`, or in a closure body) adds a
//!   may-edge after the statement. Closures cannot actually return
//!   from the enclosing function, so these edges over-approximate the
//!   paths; forward may-analyses stay sound, must-analyses stay
//!   conservative;
//! - labeled `break`/`continue` target the innermost loop, ignoring
//!   the label.
//!
//! Block 0 is the entry, block 1 the synthetic exit (no statements,
//! no successors). `return` and `?` edges point at the exit block, so
//! "state on function exit" is exactly the dataflow state joined at
//! block 1's entry.

use crate::lex::{Token, TokenKind};

/// How the builder classified a statement's token range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// A plain statement or tail expression, consumed bracket-balanced
    /// up to a depth-0 `;` (inclusive) or the region's end.
    Simple,
    /// An `if` / `else if` header: keyword through the branch's `{`.
    IfHead,
    /// A `match` header: keyword through the body's `{`.
    MatchHead,
    /// A loop header (`while`, `while let`, `for`, `loop`), label
    /// included, through the body's `{`.
    LoopHead,
    /// A match arm's pattern (and guard) through its `=>`.
    ArmPat,
    /// Structural punctuation owned by the graph, not an expression:
    /// branch braces, `else {`, arm commas.
    Struct,
}

impl StmtKind {
    /// Short lowercase word used by [`Cfg::dump`].
    pub fn word(self) -> &'static str {
        match self {
            StmtKind::Simple => "stmt",
            StmtKind::IfHead => "if",
            StmtKind::MatchHead => "match",
            StmtKind::LoopHead => "loop",
            StmtKind::ArmPat => "arm",
            StmtKind::Struct => "punct",
        }
    }
}

/// A contiguous run of body code tokens: positions `lo..hi` into
/// [`Cfg::code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stmt {
    /// First code-token position (into [`Cfg::code`]).
    pub lo: usize,
    /// One past the last code-token position.
    pub hi: usize,
    /// Classification assigned by the builder.
    pub kind: StmtKind,
}

/// A basic block: statements executed in order, then a jump to one of
/// `succs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices (deduplicated, in insertion order).
    pub succs: Vec<usize>,
}

/// A function body's control-flow graph. See the module docs for the
/// invariants and the approximation contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Raw token indices (into the file's token list) of the body's
    /// code tokens, in source order. [`Stmt`] ranges index this list.
    pub code: Vec<usize>,
    /// All blocks; indices are stable, unreachable blocks possible.
    pub blocks: Vec<Block>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Synthetic exit block index (always 1); never has statements or
    /// successors.
    pub exit: usize,
}

const ENTRY: usize = 0;
const EXIT: usize = 1;

impl Cfg {
    /// Builds the graph for a body token range (`FnItem::body`
    /// convention: first inside token inclusive, closing brace
    /// exclusive, raw token indices).
    pub fn build(src: &str, tokens: &[Token], body: (usize, usize)) -> Cfg {
        let code: Vec<usize> = (body.0..body.1.min(tokens.len()))
            .filter(|&i| !tokens[i].kind.is_trivia())
            .collect();
        let n = code.len();
        let mut b = Builder {
            src,
            toks: tokens,
            code,
            blocks: vec![Block::default(), Block::default()],
            loops: Vec::new(),
        };
        let (last, terminated) = b.walk(0, n, ENTRY);
        if !terminated {
            b.edge(last, EXIT);
        }
        Cfg {
            code: b.code,
            blocks: b.blocks,
            entry: ENTRY,
            exit: EXIT,
        }
    }

    /// The code-token positions of `s` as raw token indices.
    pub fn stmt_tokens(&self, s: &Stmt) -> &[usize] {
        &self.code[s.lo..s.hi.min(self.code.len())]
    }

    /// Byte offset of the statement's first token (for spans), if any.
    pub fn stmt_lo(&self, tokens: &[Token], s: &Stmt) -> Option<usize> {
        self.code.get(s.lo).map(|&i| tokens[i].lo)
    }

    /// Stable textual rendering for golden tests: one section per
    /// block, statements as `[kind] token text`, then the successor
    /// list.
    pub fn dump(&self, src: &str, tokens: &[Token]) -> String {
        let mut out = String::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let tag = if i == self.entry {
                " (entry)"
            } else if i == self.exit {
                " (exit)"
            } else {
                ""
            };
            out.push_str(&format!("b{i}{tag}:\n"));
            for s in &b.stmts {
                let text: Vec<&str> = self
                    .stmt_tokens(s)
                    .iter()
                    .map(|&t| tokens[t].text(src))
                    .collect();
                out.push_str(&format!("  [{}] {}\n", s.kind.word(), text.join(" ")));
            }
            if b.succs.is_empty() {
                out.push_str("  -> (none)\n");
            } else {
                let targets: Vec<String> = b.succs.iter().map(|t| format!("b{t}")).collect();
                out.push_str(&format!("  -> {}\n", targets.join(", ")));
            }
        }
        out
    }
}

/// Statement-position control keywords the walker dispatches on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kw {
    If,
    Match,
    While,
    For,
    Loop,
    Return,
    Break,
    Continue,
}

/// What terminates the pattern region of a conditional header before
/// the body brace may legally appear.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PatternEnd {
    /// Plain condition: the first depth-0 `{` is the body.
    None,
    /// `if let` / `while let`: skip braces until the binding `=`.
    Eq,
    /// `for pat in expr`: skip braces until the depth-0 `in`.
    In,
}

struct Builder<'a> {
    src: &'a str,
    toks: &'a [Token],
    code: Vec<usize>,
    blocks: Vec<Block>,
    /// Innermost-last `(continue_target, break_target)`.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn tok(&self, p: usize) -> Option<&Token> {
        self.code.get(p).map(|&i| &self.toks[i])
    }

    fn text(&self, p: usize) -> Option<&str> {
        self.tok(p).map(|t| t.text(self.src))
    }

    fn is_p(&self, p: usize, s: &str) -> bool {
        self.tok(p)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == s)
    }

    fn is_kw(&self, p: usize, s: &str) -> bool {
        self.tok(p)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == s)
    }

    /// The statement-position keyword at `p`, if any.
    fn kw(&self, p: usize) -> Option<Kw> {
        let t = self.tok(p)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        match t.text(self.src) {
            "if" => Some(Kw::If),
            "match" => Some(Kw::Match),
            "while" => Some(Kw::While),
            "for" => Some(Kw::For),
            "loop" => Some(Kw::Loop),
            "return" => Some(Kw::Return),
            "break" => Some(Kw::Break),
            "continue" => Some(Kw::Continue),
            _ => None,
        }
    }

    /// Whether tokens `p` and `p + 1` touch (no trivia in the source
    /// between them) — used to tell `=>`/`==` from a bare `=`.
    fn adjacent(&self, p: usize) -> bool {
        match (self.tok(p), self.tok(p + 1)) {
            (Some(a), Some(b)) => a.hi == b.lo,
            _ => false,
        }
    }

    /// A `=` that is an assignment/binding, not part of `==`, `=>`,
    /// `<=`, `+=`, …
    fn standalone_eq(&self, p: usize) -> bool {
        if !self.is_p(p, "=") {
            return false;
        }
        if self.adjacent(p) && (self.is_p(p + 1, "=") || self.is_p(p + 1, ">")) {
            return false;
        }
        if p > 0 && self.adjacent(p - 1) {
            let compound = ["=", "!", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^"]
                .iter()
                .any(|op| self.is_p(p - 1, op));
            if compound {
                return false;
            }
        }
        true
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, block: usize, lo: usize, hi: usize, kind: StmtKind) {
        if lo < hi {
            self.blocks[block].stmts.push(Stmt { lo, hi, kind });
        }
    }

    /// Position just past the `}` matching the `{` at `open`, or
    /// `limit` if unbalanced.
    fn close_of(&self, open: usize, limit: usize) -> usize {
        let mut depth = 0usize;
        let mut p = open;
        while p < limit {
            if self.is_p(p, "{") {
                depth += 1;
            } else if self.is_p(p, "}") {
                depth -= 1;
                if depth == 0 {
                    return p;
                }
            }
            p += 1;
        }
        limit
    }

    /// The body `{` of a conditional/loop header whose condition
    /// starts at `p`. Braces inside parens/brackets and (for the
    /// `let`/`for` pattern region) struct-pattern braces are skipped.
    fn find_body_brace(
        &self,
        mut p: usize,
        limit: usize,
        mut pattern: PatternEnd,
    ) -> Option<usize> {
        let mut depth = 0usize;
        while p < limit {
            if self.is_p(p, "(") || self.is_p(p, "[") {
                depth += 1;
            } else if self.is_p(p, ")") || self.is_p(p, "]") {
                depth = depth.saturating_sub(1);
            } else if self.is_p(p, "{") {
                if depth == 0 && pattern == PatternEnd::None {
                    return Some(p);
                }
                // Struct-pattern brace (or a brace inside brackets):
                // part of the header, not the body.
                let close = self.close_of(p, limit);
                if close >= limit {
                    return None;
                }
                p = close;
            } else if depth == 0 {
                match pattern {
                    PatternEnd::Eq if self.standalone_eq(p) => pattern = PatternEnd::None,
                    PatternEnd::In if self.is_kw(p, "in") => pattern = PatternEnd::None,
                    _ => {}
                }
            }
            p += 1;
        }
        None
    }

    /// End (exclusive, past any trailing `;`) of a plain statement
    /// starting at `p`: bracket-balanced scan to a depth-0 `;`.
    fn stmt_end(&self, mut p: usize, limit: usize) -> usize {
        let mut depth = 0usize;
        while p < limit {
            if self.is_p(p, "(") || self.is_p(p, "[") || self.is_p(p, "{") {
                depth += 1;
            } else if self.is_p(p, ")") || self.is_p(p, "]") || self.is_p(p, "}") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_p(p, ";") {
                return p + 1;
            }
            p += 1;
        }
        limit
    }

    /// After consuming a plain statement `lo..hi` into `cur`, add
    /// may-edges for any `?` / `return` / `break` / `continue` buried
    /// inside it and cut the block so those edges carry the
    /// statement's effects. Returns the block further statements land
    /// in.
    fn finish_simple(&mut self, cur: usize, lo: usize, hi: usize) -> usize {
        let mut exits = false;
        let mut br = None;
        let mut cont = None;
        for p in lo..hi {
            if self.is_p(p, "?") || self.is_kw(p, "return") {
                exits = true;
            } else if self.is_kw(p, "break") {
                br = self.loops.last().map(|&(_, after)| after);
            } else if self.is_kw(p, "continue") {
                cont = self.loops.last().map(|&(head, _)| head);
            }
        }
        if exits {
            self.edge(cur, EXIT);
        }
        if let Some(t) = br {
            self.edge(cur, t);
        }
        if let Some(t) = cont {
            self.edge(cur, t);
        }
        if exits || br.is_some() || cont.is_some() {
            let next = self.new_block();
            self.edge(cur, next);
            next
        } else {
            cur
        }
    }

    /// Consumes code positions `lo..hi` starting in block `cur`.
    /// Returns the block that is open at the end and whether control
    /// definitely left it (depth-0 `return`/`break`/`continue`).
    fn walk(&mut self, lo: usize, hi: usize, mut cur: usize) -> (usize, bool) {
        let mut i = lo;
        let mut terminated = false;
        while i < hi {
            terminated = false;
            // A label before a loop keyword: fold it into the header.
            let (kw_at, label_lo) = if self.tok(i).is_some_and(|t| t.kind == TokenKind::Lifetime)
                && self.is_p(i + 1, ":")
                && matches!(self.text(i + 2), Some("loop") | Some("while") | Some("for"))
            {
                (i + 2, i)
            } else {
                (i, i)
            };
            match self.kw(kw_at) {
                Some(Kw::If) if kw_at == i => {
                    let (next, join) = self.parse_if(i, hi, cur);
                    i = next;
                    cur = join;
                }
                Some(Kw::Match) if kw_at == i => {
                    let (next, join) = self.parse_match(i, hi, cur);
                    i = next;
                    cur = join;
                }
                Some(Kw::While | Kw::For | Kw::Loop) => {
                    let (next, after) = self.parse_loop(label_lo, kw_at, hi, cur);
                    i = next;
                    cur = after;
                }
                Some(Kw::Return) if kw_at == i => {
                    let end = self.stmt_end(i, hi);
                    self.push(cur, i, end, StmtKind::Simple);
                    self.edge(cur, EXIT);
                    i = end;
                    cur = self.new_block();
                    terminated = true;
                }
                Some(k @ (Kw::Break | Kw::Continue)) if kw_at == i && !self.loops.is_empty() => {
                    let end = self.stmt_end(i, hi);
                    self.push(cur, i, end, StmtKind::Simple);
                    if let Some(&(head, after)) = self.loops.last() {
                        self.edge(cur, if k == Kw::Break { after } else { head });
                    }
                    i = end;
                    cur = self.new_block();
                    terminated = true;
                }
                _ if self.is_p(i, "{") => {
                    // A bare block: structurally transparent.
                    let close = self.close_of(i, hi);
                    self.push(cur, i, i + 1, StmtKind::Struct);
                    let (last, term) = self.walk(i + 1, close, cur);
                    if close < hi {
                        self.push(last, close, close + 1, StmtKind::Struct);
                    }
                    i = close + 1;
                    cur = if term { self.new_block() } else { last };
                    terminated = term;
                }
                _ => {
                    let end = self.stmt_end(i, hi);
                    self.push(cur, i, end, StmtKind::Simple);
                    cur = self.finish_simple(cur, i, end);
                    i = end;
                }
            }
        }
        (cur, terminated)
    }

    /// An `if` / `else if` / `else` chain starting at the `if` token.
    /// Returns (position past the chain, join block).
    fn parse_if(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let mut cond_block = cur;
        let mut ends: Vec<(usize, bool)> = Vec::new();
        let mut has_else = false;
        let mut header_lo = i;
        let mut p = i; // position of the current `if`
        loop {
            let pattern = if self.is_kw(p + 1, "let") {
                PatternEnd::Eq
            } else {
                PatternEnd::None
            };
            let Some(open) = self.find_body_brace(p + 1, hi, pattern) else {
                // Malformed header: consume as one plain statement.
                let end = self.stmt_end(header_lo, hi);
                self.push(cond_block, header_lo, end, StmtKind::Simple);
                let join = self.new_block();
                self.edge(cond_block, join);
                return (end, join);
            };
            self.push(cond_block, header_lo, open + 1, StmtKind::IfHead);
            let close = self.close_of(open, hi);
            let then_block = self.new_block();
            self.edge(cond_block, then_block);
            let (last, term) = self.walk(open + 1, close, then_block);
            if close < hi {
                self.push(last, close, close + 1, StmtKind::Struct);
            }
            ends.push((last, term));
            p = close + 1;
            if p < hi && self.is_kw(p, "else") {
                if self.is_kw(p + 1, "if") {
                    let next_cond = self.new_block();
                    self.edge(cond_block, next_cond);
                    cond_block = next_cond;
                    header_lo = p; // `else if …` header
                    p += 1;
                    continue;
                }
                if self.is_p(p + 1, "{") {
                    has_else = true;
                    let else_block = self.new_block();
                    self.edge(cond_block, else_block);
                    let eopen = p + 1;
                    let eclose = self.close_of(eopen, hi);
                    self.push(else_block, p, eopen + 1, StmtKind::Struct);
                    let (elast, eterm) = self.walk(eopen + 1, eclose, else_block);
                    if eclose < hi {
                        self.push(elast, eclose, eclose + 1, StmtKind::Struct);
                    }
                    ends.push((elast, eterm));
                    p = eclose + 1;
                }
            }
            break;
        }
        let join = self.new_block();
        if !has_else {
            self.edge(cond_block, join);
        }
        for (block, term) in ends {
            if !term {
                self.edge(block, join);
            }
        }
        (p, join)
    }

    /// A statement-position `match`. Returns (position past it, join
    /// block). The match's closing `}` lives in the join block.
    fn parse_match(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi, PatternEnd::None) else {
            let end = self.stmt_end(i, hi);
            self.push(cur, i, end, StmtKind::Simple);
            let join = self.new_block();
            self.edge(cur, join);
            return (end, join);
        };
        let close = self.close_of(open, hi);
        self.push(cur, i, open + 1, StmtKind::MatchHead);
        let join = self.new_block();
        let mut p = open + 1;
        let mut any_arm = false;
        while p < close {
            // Pattern (and optional guard) up to the depth-0 `=>`.
            let pat_lo = p;
            let mut depth = 0usize;
            let mut arrow = None;
            let mut q = p;
            while q < close {
                if self.is_p(q, "(") || self.is_p(q, "[") || self.is_p(q, "{") {
                    depth += 1;
                } else if self.is_p(q, ")") || self.is_p(q, "]") || self.is_p(q, "}") {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && self.is_p(q, "=")
                    && self.adjacent(q)
                    && self.is_p(q + 1, ">")
                {
                    arrow = Some(q);
                    break;
                }
                q += 1;
            }
            let Some(arrow) = arrow else {
                // No arrow: consume the remainder as one statement.
                let arm = self.new_block();
                self.edge(cur, arm);
                self.push(arm, p, close, StmtKind::Simple);
                self.edge(arm, join);
                any_arm = true;
                break;
            };
            let arm = self.new_block();
            self.edge(cur, arm);
            self.push(arm, pat_lo, arrow + 2, StmtKind::ArmPat);
            any_arm = true;
            let body_lo = arrow + 2;
            let (last, term, next) = if self.is_p(body_lo, "{") {
                let bclose = self.close_of(body_lo, close);
                self.push(arm, body_lo, body_lo + 1, StmtKind::Struct);
                let (last, term) = self.walk(body_lo + 1, bclose, arm);
                if bclose < close {
                    self.push(last, bclose, bclose + 1, StmtKind::Struct);
                }
                (last, term, bclose + 1)
            } else {
                // Expression body up to a depth-0 `,` (or the match's
                // closing brace).
                let mut depth = 0usize;
                let mut q = body_lo;
                while q < close {
                    if self.is_p(q, "(") || self.is_p(q, "[") || self.is_p(q, "{") {
                        depth += 1;
                    } else if self.is_p(q, ")") || self.is_p(q, "]") || self.is_p(q, "}") {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && self.is_p(q, ",") {
                        break;
                    }
                    q += 1;
                }
                let (last, term) = self.walk(body_lo, q, arm);
                (last, term, q)
            };
            let mut p2 = next;
            if p2 < close && self.is_p(p2, ",") {
                // The arm's trailing comma: structural, owned by the
                // arm's final block.
                self.push(last, p2, p2 + 1, StmtKind::Struct);
                p2 += 1;
            }
            if !term {
                self.edge(last, join);
            }
            p = p2;
        }
        if close < hi {
            self.push(join, close, close + 1, StmtKind::Struct);
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (close + 1, join)
    }

    /// A loop (`while`, `while let`, `for`, `loop`) whose keyword is
    /// at `kw` (label, if any, at `label_lo`). Returns (position past
    /// it, after block).
    fn parse_loop(&mut self, label_lo: usize, kw: usize, hi: usize, cur: usize) -> (usize, usize) {
        let word = self.kw(kw);
        let open = match word {
            Some(Kw::Loop) => self.is_p(kw + 1, "{").then_some(kw + 1),
            Some(Kw::While) => {
                let pattern = if self.is_kw(kw + 1, "let") {
                    PatternEnd::Eq
                } else {
                    PatternEnd::None
                };
                self.find_body_brace(kw + 1, hi, pattern)
            }
            Some(Kw::For) => self.find_body_brace(kw + 1, hi, PatternEnd::In),
            _ => None,
        };
        let Some(open) = open else {
            let end = self.stmt_end(label_lo, hi);
            self.push(cur, label_lo, end, StmtKind::Simple);
            return (end, self.finish_simple(cur, label_lo, end));
        };
        let head = self.new_block();
        self.edge(cur, head);
        self.push(head, label_lo, open + 1, StmtKind::LoopHead);
        let close = self.close_of(open, hi);
        let body = self.new_block();
        self.edge(head, body);
        let after = self.new_block();
        // A bare `loop` only exits through `break`/`return`.
        if word != Some(Kw::Loop) {
            self.edge(head, after);
        }
        self.loops.push((head, after));
        let (last, term) = self.walk(open + 1, close, body);
        self.loops.pop();
        if close < hi {
            self.push(last, close, close + 1, StmtKind::Struct);
        }
        if !term {
            self.edge(last, head);
        }
        (close + 1, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn cfg_of(body_src: &str) -> (String, Cfg, Vec<Token>) {
        let src = format!("fn f() {{ {body_src} }}");
        let tokens = lex(&src);
        let items = crate::items::parse_items("test.rs", &src, &tokens);
        let body = items.fns[0].body.expect("body");
        let cfg = Cfg::build(&src, &tokens, body);
        (src, cfg, tokens)
    }

    /// Every code position belongs to exactly one statement.
    fn assert_partition(cfg: &Cfg) {
        let mut seen = vec![0usize; cfg.code.len()];
        for b in &cfg.blocks {
            for s in &b.stmts {
                for slot in seen.iter_mut().take(s.hi).skip(s.lo) {
                    *slot += 1;
                }
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "coverage counts per position: {seen:?}"
        );
    }

    #[test]
    fn straight_line_is_one_block_into_exit() {
        let (_, cfg, _) = cfg_of("let a = 1; let b = a + 2; b");
        assert_partition(&cfg);
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (_, cfg, _) = cfg_of("let a = 1; if a > 0 { a; } else { a; } let b = 2;");
        assert_partition(&cfg);
        // entry has two successors: then, else.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let (_, cfg, _) = cfg_of("let a = parse()?; let b = a;");
        assert_partition(&cfg);
        assert!(
            cfg.blocks[cfg.entry].succs.contains(&cfg.exit),
            "{:?}",
            cfg.blocks
        );
    }

    #[test]
    fn return_terminates_the_block() {
        let (_, cfg, _) = cfg_of("if x { return 1; } let b = 2;");
        assert_partition(&cfg);
        let returning = cfg
            .blocks
            .iter()
            .find(|b| b.succs == vec![cfg.exit] && !b.stmts.is_empty())
            .expect("a block that only returns");
        assert_eq!(
            returning.stmts.last().map(|s| s.kind),
            Some(StmtKind::Simple)
        );
    }

    #[test]
    fn loop_has_back_edge() {
        let (_, cfg, _) = cfg_of("let mut i = 0; while i < 3 { i += 1; } i");
        assert_partition(&cfg);
        let head = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| s.kind == StmtKind::LoopHead))
            .expect("loop head");
        assert!(
            cfg.blocks.iter().any(|b| b.succs.contains(&head)
                && !std::ptr::eq(b, &cfg.blocks[cfg.entry])
                && b.stmts.iter().all(|s| s.kind != StmtKind::LoopHead)),
            "no back edge to head {head}: {:?}",
            cfg.blocks
        );
    }

    #[test]
    fn match_arms_fan_out_and_join() {
        let (_, cfg, _) = cfg_of("match x { Some(v) => v, None => 0, }");
        assert_partition(&cfg);
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| s.kind == StmtKind::MatchHead))
            .expect("match head");
        assert_eq!(cfg.blocks[header].succs.len(), 2, "{:?}", cfg.blocks);
    }

    #[test]
    fn edges_target_live_blocks() {
        let (_, cfg, _) = cfg_of(
            "if a { return 1; } else if b { loop { break; } } for x in xs { x?; } match y { _ => {} }",
        );
        assert_partition(&cfg);
        for b in &cfg.blocks {
            for &s in &b.succs {
                assert!(s < cfg.blocks.len());
            }
        }
        assert!(cfg.blocks[cfg.exit].succs.is_empty());
    }
}
