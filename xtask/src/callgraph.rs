//! A name-resolution-lite intra-workspace call graph over the
//! [`crate::items`] item tree.
//!
//! Resolution is deliberately conservative (an *under*-approximation):
//! an edge is added only when a call site resolves unambiguously —
//! same-module names, `use`-imported paths, explicit `crate::` /
//! `self::` / `super::` / workspace-crate paths, `Self::` and
//! `Type::assoc` lookups, and method calls whose bare name is unique
//! across the workspace *and* whose defining crate is a dependency of
//! the caller's crate (the manifest graph filters junk edges).
//! Unresolved calls simply add no edge, which the reachability passes
//! treat as "unknown", never as proof of absence.
//!
//! Everything is ordered by file-load order, so traversals and reported
//! paths are deterministic.

use crate::items::{FnItem, Vis};
use crate::lex::TokenKind;
use crate::Context;
use std::collections::BTreeMap;

/// One function in the workspace-wide graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the file in `Context::files`.
    pub file: usize,
    /// Repo-relative path of that file.
    pub rel: String,
    /// The crate directory key (`soc`, `xtask`, …).
    pub crate_key: String,
    /// The extracted item.
    pub item: FnItem,
    /// Byte span of the body (inside the braces), if any.
    pub body_bytes: Option<(usize, usize)>,
}

/// Forward/backward reachability with parent links for path reporting.
#[derive(Debug)]
pub struct Reach {
    visited: Vec<bool>,
    parent: Vec<usize>,
}

impl Reach {
    /// Whether `node` was reached.
    pub fn contains(&self, node: usize) -> bool {
        self.visited.get(node).copied().unwrap_or(false)
    }

    /// The path from a start node to `node` (inclusive), following
    /// parent links; `None` if unreached.
    pub fn path_to(&self, node: usize) -> Option<Vec<usize>> {
        if !self.contains(node) {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while self.parent[cur] != cur {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// The call graph: nodes plus forward (`callees`) and reverse
/// (`callers`) adjacency, both sorted and deduplicated.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, in file-load then declaration order.
    pub nodes: Vec<FnNode>,
    /// `callees[i]` — indices of functions `i`'s body calls.
    pub callees: Vec<Vec<usize>>,
    /// `callers[i]` — indices of functions whose bodies call `i`.
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for a loaded [`Context`].
    pub fn build(cx: &Context) -> CallGraph {
        Builder::new(cx).build()
    }

    /// The innermost function whose body byte-span contains `byte` in
    /// file index `file`.
    pub fn enclosing_fn(&self, file: usize, byte: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.file == file && n.body_bytes.is_some_and(|(lo, hi)| lo <= byte && byte < hi)
            })
            .min_by_key(|(_, n)| n.body_bytes.map(|(lo, hi)| hi - lo))
            .map(|(i, _)| i)
    }

    /// Breadth-first forward reachability (caller → callee) from
    /// `starts`.
    pub fn forward(&self, starts: &[usize]) -> Reach {
        self.bfs(starts, &self.callees)
    }

    /// Breadth-first reverse reachability (callee → caller) from
    /// `starts`.
    pub fn backward(&self, starts: &[usize]) -> Reach {
        self.bfs(starts, &self.callers)
    }

    fn bfs(&self, starts: &[usize], adj: &[Vec<usize>]) -> Reach {
        let mut reach = Reach {
            visited: vec![false; self.nodes.len()],
            parent: (0..self.nodes.len()).collect(),
        };
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &s in starts {
            if s < self.nodes.len() && !reach.visited[s] {
                reach.visited[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &next in &adj[cur] {
                if !reach.visited[next] {
                    reach.visited[next] = true;
                    reach.parent[next] = cur;
                    queue.push_back(next);
                }
            }
        }
        reach
    }

    /// Shortest call path from any non-test `pub` function down to
    /// `target` (inclusive at both ends), as node indices. A `pub`
    /// target returns `[target]`.
    pub fn path_from_pub(&self, target: usize) -> Option<Vec<usize>> {
        let pubs: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.item.vis == Vis::Pub && !n.item.in_test)
            .map(|(i, _)| i)
            .collect();
        if pubs.contains(&target) {
            return Some(vec![target]);
        }
        // Walk callers from the target; the first pub hit ends the
        // shortest chain, then reverse it into caller→…→target order.
        let reach = self.backward(&[target]);
        let hit = pubs.into_iter().find(|&p| reach.contains(p))?;
        let mut path = reach.path_to(hit)?;
        path.reverse();
        Some(path)
    }

    /// Renders a node path as `a::b -> c::d`.
    pub fn render_path(&self, path: &[usize]) -> String {
        path.iter()
            .map(|&i| self.nodes[i].item.qual.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

struct Builder<'a> {
    cx: &'a Context,
    nodes: Vec<FnNode>,
    /// bare name → node indices (non-test only).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (self type, name) → node indices.
    by_assoc: BTreeMap<(String, String), Vec<usize>>,
    /// (crate key, module path, name) → node indices (free fns).
    by_module: BTreeMap<(String, String, String), Vec<usize>>,
    /// (file index, alias) → full use path.
    use_map: BTreeMap<(usize, String), Vec<String>>,
    /// (struct name, field name) → `(crate key, rendered field type)`
    /// candidates, for typed receiver resolution of `self.field.method()`.
    field_types: BTreeMap<(String, String), Vec<(String, String)>>,
    /// crate ident (`dora_soc`) → crate key (`soc`).
    crate_idents: BTreeMap<String, String>,
    /// crate key → dependency crate keys (including itself).
    deps: BTreeMap<String, Vec<String>>,
}

fn manifest_key(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(rest).to_string()
    } else if path.starts_with("xtask/") {
        "xtask".to_string()
    } else {
        "dora-repro".to_string()
    }
}

impl<'a> Builder<'a> {
    fn new(cx: &'a Context) -> Self {
        Builder {
            cx,
            nodes: Vec::new(),
            by_name: BTreeMap::new(),
            by_assoc: BTreeMap::new(),
            by_module: BTreeMap::new(),
            use_map: BTreeMap::new(),
            field_types: BTreeMap::new(),
            crate_idents: BTreeMap::new(),
            deps: BTreeMap::new(),
        }
    }

    fn build(mut self) -> CallGraph {
        // Manifest-derived crate identity and dependency filter.
        let mut pkg_to_key: BTreeMap<&str, String> = BTreeMap::new();
        for m in &self.cx.manifests {
            pkg_to_key.insert(m.name.as_str(), manifest_key(&m.path));
        }
        for m in &self.cx.manifests {
            let key = manifest_key(&m.path);
            self.crate_idents
                .insert(m.name.replace('-', "_"), key.clone());
            let mut dep_keys = vec![key.clone()];
            for d in &m.deps {
                if let Some(k) = pkg_to_key.get(d.name.as_str()) {
                    dep_keys.push(k.clone());
                }
            }
            dep_keys.sort();
            dep_keys.dedup();
            self.deps.insert(key, dep_keys);
        }

        // Nodes and lookup maps.
        for (file_idx, file) in self.cx.files.iter().enumerate() {
            let crate_key = file.crate_key().to_string();
            for item in &file.items.fns {
                let body_bytes = item.body.and_then(|(lo, hi)| {
                    if hi > lo {
                        Some((file.tokens[lo].lo, file.tokens[hi - 1].hi))
                    } else {
                        None
                    }
                });
                let idx = self.nodes.len();
                if !item.in_test {
                    self.by_name.entry(item.name.clone()).or_default().push(idx);
                    if let Some(ty) = &item.self_ty {
                        self.by_assoc
                            .entry((ty.clone(), item.name.clone()))
                            .or_default()
                            .push(idx);
                    } else {
                        // Module path is everything in the qual between
                        // the crate key and the name.
                        let module = qual_module(&item.qual);
                        self.by_module
                            .entry((crate_key.clone(), module, item.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                }
                self.nodes.push(FnNode {
                    file: file_idx,
                    rel: file.rel.clone(),
                    crate_key: crate_key.clone(),
                    item: item.clone(),
                    body_bytes,
                });
            }
            for u in &file.items.uses {
                self.use_map
                    .insert((file_idx, u.alias.clone()), u.path.clone());
            }
            for s in &file.items.structs {
                if s.in_test {
                    continue;
                }
                for f in &s.fields {
                    self.field_types
                        .entry((s.name.clone(), f.name.clone()))
                        .or_default()
                        .push((crate_key.clone(), f.ty.clone()));
                }
            }
        }

        // Edges.
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (caller, callee_list) in callees.iter_mut().enumerate() {
            for callee in self.scan_body(caller) {
                callee_list.push(callee);
                callers[callee].push(caller);
            }
        }
        for list in callees.iter_mut().chain(callers.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        CallGraph {
            nodes: self.nodes,
            callees,
            callers,
        }
    }

    /// Extracts resolved call edges from one function body.
    fn scan_body(&self, caller: usize) -> Vec<usize> {
        let node = &self.nodes[caller];
        let Some((body_lo, body_hi)) = node.item.body else {
            return Vec::new();
        };
        let file = &self.cx.files[node.file];
        let src = file.text.as_str();
        let code: Vec<usize> = (body_lo..body_hi.min(file.tokens.len()))
            .filter(|&i| !file.tokens[i].kind.is_trivia())
            .collect();
        let text = |p: usize| -> &str { code.get(p).map_or("", |&i| file.tokens[i].text(src)) };
        let kind = |p: usize| -> Option<TokenKind> { code.get(p).map(|&i| file.tokens[i].kind) };
        let is_p = |p: usize, s: &str| kind(p) == Some(TokenKind::Punct) && text(p) == s;

        let mut out = Vec::new();
        let mut j = 0;
        while j < code.len() {
            if kind(j) != Some(TokenKind::Ident) {
                j += 1;
                continue;
            }
            // Macro invocation: `name!(…)` — no edge, skip the bang.
            if is_p(j + 1, "!") {
                j += 2;
                continue;
            }
            let is_method = j > 0 && is_p(j - 1, ".");
            // Collect `seg(::seg)*`.
            let mut segs = vec![text(j).to_string()];
            let mut k = j;
            loop {
                if is_p(k + 1, ":") && is_p(k + 2, ":") {
                    if kind(k + 3) == Some(TokenKind::Ident) {
                        segs.push(text(k + 3).to_string());
                        k += 3;
                        continue;
                    }
                    // Turbofish `::<…>` — segments end here.
                    if is_p(k + 3, "<") {
                        let mut depth = 0i64;
                        let mut q = k + 3;
                        while q < code.len() {
                            match text(q) {
                                "<" => depth += 1,
                                ">" => depth -= 1,
                                _ => {}
                            }
                            q += 1;
                            if depth <= 0 {
                                break;
                            }
                        }
                        k = q - 1;
                    }
                }
                break;
            }
            // A call site is a path followed by `(`.
            if is_p(k + 1, "(") {
                // For bare method calls, try to type the receiver from
                // the tokens just before the dot: `self.m(…)` uses the
                // impl self type, `self.field.m(…)` the field's declared
                // type, `param.m(…)` the parameter's type. Chains through
                // locals or call results stay untyped (`None`).
                let recv_ty: Option<String> = if is_method && segs.len() == 1 {
                    let ident_at = |p: usize| p < j && kind(p) == Some(TokenKind::Ident);
                    if j >= 2 && ident_at(j - 2) && text(j - 2) == "self" {
                        node.item.self_ty.clone()
                    } else if j >= 4
                        && ident_at(j - 2)
                        && is_p(j - 3, ".")
                        && ident_at(j - 4)
                        && text(j - 4) == "self"
                        && !(j >= 5 && is_p(j - 5, "."))
                    {
                        node.item
                            .self_ty
                            .as_deref()
                            .and_then(|st| self.field_type(node, st, text(j - 2)))
                    } else if j >= 2
                        && ident_at(j - 2)
                        && !(j >= 3 && (is_p(j - 3, ".") || is_p(j - 3, ":")))
                    {
                        let name = text(j - 2);
                        node.item
                            .params
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, ty)| ty.clone())
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(callee) = self.resolve(
                    caller,
                    &segs,
                    is_method && segs.len() == 1,
                    recv_ty.as_deref(),
                ) {
                    out.push(callee);
                }
            }
            j = k + 1;
        }
        out
    }

    fn allowed(&self, caller_key: &str, callee_key: &str) -> bool {
        match self.deps.get(caller_key) {
            Some(keys) => keys.iter().any(|k| k == callee_key),
            // Synthetic fixture contexts carry no manifests: permissive.
            None => true,
        }
    }

    fn resolve(
        &self,
        caller: usize,
        segs: &[String],
        is_method: bool,
        recv_ty: Option<&str>,
    ) -> Option<usize> {
        let node = &self.nodes[caller];
        if is_method {
            // Typed receiver: look the method up on the receiver type's
            // impls directly, which disambiguates names like `merge`
            // that several sketch types share.
            if let Some(head) = recv_ty.and_then(type_head) {
                if let Some(found) = self.resolve_assoc(node, &head, &segs[0]) {
                    return Some(found);
                }
            }
            // Bare method name: resolve only when globally unique among
            // workspace methods and the defining crate is a dependency.
            let candidates = self.by_name.get(&segs[0])?;
            let viable: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| {
                    self.nodes[i].item.self_ty.is_some()
                        && self.allowed(&node.crate_key, &self.nodes[i].crate_key)
                })
                .collect();
            return match viable.as_slice() {
                [one] => Some(*one),
                _ => None,
            };
        }

        // Expand a leading `use` alias for this file.
        let mut segs: Vec<String> = segs.to_vec();
        if let Some(path) = self.use_map.get(&(node.file, segs[0].clone())) {
            let mut expanded = path.clone();
            expanded.extend(segs.into_iter().skip(1));
            segs = expanded;
        }

        let caller_mods = qual_module_vec(&node.item.qual);
        let (crate_key, mods): (String, Vec<String>) = match segs[0].as_str() {
            "crate" => (node.crate_key.clone(), segs[1..].to_vec()),
            "self" => {
                let mut m = caller_mods.clone();
                m.extend(segs[1..].iter().cloned());
                (node.crate_key.clone(), m)
            }
            "super" => {
                let mut m = caller_mods.clone();
                m.pop();
                m.extend(segs[1..].iter().cloned());
                (node.crate_key.clone(), m)
            }
            "Self" => {
                let ty = node.item.self_ty.clone()?;
                let name = segs.last()?.clone();
                return self.resolve_assoc(node, &ty, &name);
            }
            first => {
                if let Some(key) = self.crate_idents.get(first) {
                    (key.clone(), segs[1..].to_vec())
                } else if segs.len() == 1 {
                    // Bare name: same module, then unique free fn.
                    let name = &segs[0];
                    if let Some(found) =
                        self.lookup_module(&node.crate_key, &caller_mods.join("::"), name)
                    {
                        return Some(found);
                    }
                    let viable: Vec<usize> = self
                        .by_name
                        .get(name)?
                        .iter()
                        .copied()
                        .filter(|&i| {
                            self.nodes[i].item.self_ty.is_none()
                                && self.allowed(&node.crate_key, &self.nodes[i].crate_key)
                        })
                        .collect();
                    return match viable.as_slice() {
                        [one] => Some(*one),
                        _ => None,
                    };
                } else {
                    // Relative path: resolve against the current module
                    // first, then the crate root.
                    let name = segs.last()?.clone();
                    let rel_mods = &segs[..segs.len() - 1];
                    let mut with_cur = caller_mods.clone();
                    with_cur.extend(rel_mods.iter().cloned());
                    let target = (node.crate_key.clone(), with_cur);
                    let (ck, m) = target;
                    if let Some(found) = self.lookup_path(node, &ck, &m, &name) {
                        return Some(found);
                    }
                    (node.crate_key.clone(), rel_mods.to_vec())
                }
            }
        };
        // The match arms keep the final (name) segment in `mods`; split
        // it back off.
        let name = segs.last()?.clone();
        let mods = if mods.last() == Some(&name) {
            mods[..mods.len() - 1].to_vec()
        } else {
            mods
        };
        self.lookup_path(node, &crate_key, &mods, &name)
    }

    /// Module-map then associated-fn lookup for a canonicalized path.
    fn lookup_path(
        &self,
        node: &FnNode,
        crate_key: &str,
        mods: &[String],
        name: &str,
    ) -> Option<usize> {
        if !self.allowed(&node.crate_key, crate_key) {
            return None;
        }
        if let Some(found) = self.lookup_module(crate_key, &mods.join("::"), name) {
            return Some(found);
        }
        // `path::Type::assoc` — the last segment before the name is a
        // type if it starts uppercase.
        if let Some(ty) = mods.last() {
            if ty.chars().next().is_some_and(char::is_uppercase) {
                return self.resolve_assoc(node, ty, name);
            }
        }
        None
    }

    fn lookup_module(&self, crate_key: &str, module: &str, name: &str) -> Option<usize> {
        self.by_module
            .get(&(crate_key.to_string(), module.to_string(), name.to_string()))
            .and_then(|v| v.first().copied())
    }

    /// The declared type of `field` on the struct named `self_ty`, when
    /// exactly one visible candidate exists.
    fn field_type(&self, node: &FnNode, self_ty: &str, field: &str) -> Option<String> {
        let cands = self
            .field_types
            .get(&(self_ty.to_string(), field.to_string()))?;
        let viable: Vec<&(String, String)> = cands
            .iter()
            .filter(|(ck, _)| self.allowed(&node.crate_key, ck))
            .collect();
        match viable.as_slice() {
            [one] => Some(one.1.clone()),
            _ => None,
        }
    }

    fn resolve_assoc(&self, node: &FnNode, ty: &str, name: &str) -> Option<usize> {
        let candidates = self.by_assoc.get(&(ty.to_string(), name.to_string()))?;
        let viable: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.allowed(&node.crate_key, &self.nodes[i].crate_key))
            .collect();
        viable.first().copied()
    }
}

/// The head type name of a rendered type: strips reference sigils,
/// lifetimes, and `mut`/`dyn`/`impl` qualifiers, then takes the leading
/// ident (`&'a mut Running` → `Running`, `Vec<T>` → `Vec`). `None` for
/// tuples, slices, and fn-pointer shapes.
fn type_head(ty: &str) -> Option<String> {
    let mut s = ty.trim_start_matches('&').trim_start();
    loop {
        if s.starts_with('\'') {
            s = s.split_once(' ').map_or("", |(_, rest)| rest).trim_start();
            continue;
        }
        let mut stripped = false;
        for kw in ["mut ", "dyn ", "impl "] {
            if let Some(rest) = s.strip_prefix(kw) {
                s = rest.trim_start();
                stripped = true;
            }
        }
        if !stripped {
            break;
        }
    }
    let head: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!head.is_empty() && !head.chars().next().is_some_and(|c| c.is_ascii_digit())).then_some(head)
}

/// The `::`-joined module path inside a qual (between crate key and
/// name), excluding any `Type` segment is *not* attempted — quals for
/// free functions only.
fn qual_module(qual: &str) -> String {
    qual_module_vec(qual).join("::")
}

fn qual_module_vec(qual: &str) -> Vec<String> {
    let parts: Vec<&str> = qual.split("::").collect();
    if parts.len() <= 2 {
        return Vec::new();
    }
    parts[1..parts.len() - 1]
        .iter()
        .filter(|s| !s.chars().next().is_some_and(char::is_uppercase))
        .map(|s| (*s).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn graph(files: Vec<SourceFile>) -> CallGraph {
        let cx = Context {
            files,
            ..Context::default()
        };
        CallGraph::build(&cx)
    }

    fn idx(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.item.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn same_module_and_cross_crate_calls_resolve() {
        let soc = SourceFile::new(
            "crates/soc/src/power.rs",
            "pub fn dynamic(util: f64) -> f64 {\n    leak(util)\n}\nfn leak(u: f64) -> f64 {\n    u\n}\n",
        );
        let gov = SourceFile::new(
            "crates/governors/src/lib.rs",
            "use dora_soc::power;\n\npub fn decide() -> f64 {\n    dora_soc::power::dynamic(0.5)\n}\n",
        );
        let g = graph(vec![soc, gov]);
        let dynamic = idx(&g, "soc::power::dynamic");
        let leak = idx(&g, "soc::power::leak");
        assert!(g.callees[dynamic].contains(&leak));
        // Cross-crate path calls need the crate ident registered via a
        // manifest; without manifests the `dora_soc` head is unknown and
        // conservatively unresolved.
        let decide = idx(&g, "governors::decide");
        assert!(g.callees[decide].is_empty());
    }

    #[test]
    fn crate_and_super_paths_resolve() {
        let f1 = SourceFile::new(
            "crates/soc/src/board.rs",
            "pub fn step() {\n    crate::thermal::advance();\n}\n",
        );
        let f2 = SourceFile::new(
            "crates/soc/src/thermal.rs",
            "pub fn advance() {}\n\nmod inner {\n    fn helper() {\n        super::advance();\n    }\n}\n",
        );
        let g = graph(vec![f1, f2]);
        let step = idx(&g, "soc::board::step");
        let advance = idx(&g, "soc::thermal::advance");
        let helper = idx(&g, "soc::thermal::inner::helper");
        assert!(g.callees[step].contains(&advance));
        assert!(g.callees[helper].contains(&advance));
        assert!(g.callers[advance].contains(&step));
    }

    #[test]
    fn use_alias_and_assoc_fn_resolve() {
        let lib = SourceFile::new(
            "crates/modeling/src/linalg.rs",
            "pub struct Solver;\nimpl Solver {\n    pub fn solve() {}\n}\npub fn entry() {\n    Solver::solve();\n}\n",
        );
        let user = SourceFile::new(
            "crates/campaign/src/run.rs",
            "use crate::other::stage as run_stage;\n\npub fn go() {\n    run_stage();\n}\n",
        );
        let other = SourceFile::new("crates/campaign/src/other.rs", "pub fn stage() {}\n");
        let g = graph(vec![lib, user, other]);
        let entry = idx(&g, "modeling::linalg::entry");
        let solve = idx(&g, "modeling::linalg::Solver::solve");
        assert!(g.callees[entry].contains(&solve));
        let go = idx(&g, "campaign::run::go");
        let stage = idx(&g, "campaign::other::stage");
        assert!(g.callees[go].contains(&stage));
    }

    #[test]
    fn unique_method_calls_resolve_but_ambiguous_do_not() {
        let a = SourceFile::new(
            "crates/soc/src/a.rs",
            "pub struct T;\nimpl T {\n    pub fn unique_step(&self) {}\n    pub fn new() -> T {\n        T\n    }\n}\npub fn run(t: &T) {\n    t.unique_step();\n}\n",
        );
        let b = SourceFile::new(
            "crates/governors/src/lib.rs",
            "pub struct U;\nimpl U {\n    pub fn new() -> U {\n        U\n    }\n}\n",
        );
        let g = graph(vec![a, b]);
        let run = idx(&g, "soc::a::run");
        let step = idx(&g, "soc::a::T::unique_step");
        assert!(g.callees[run].contains(&step));
        // `new` exists on two types: the bare method form would be
        // ambiguous; neither is linked from `run`.
        assert_eq!(g.callees[run].len(), 1);
    }

    #[test]
    fn typed_receivers_disambiguate_shared_method_names() {
        let f = SourceFile::new(
            "crates/soc/src/m.rs",
            "pub struct Hist {\n    pub n: u64,\n}\nimpl Hist {\n    pub fn merge(&mut self, other: &Hist) {\n        let _ = other;\n    }\n}\npub struct Sheet {\n    pub hist: Hist,\n}\nimpl Sheet {\n    pub fn merge(&mut self, other: &Sheet) {\n        self.hist.merge(&other.hist);\n    }\n}\npub fn fold(acc: &mut Sheet, next: &Sheet) {\n    acc.merge(next);\n}\n",
        );
        let g = graph(vec![f]);
        let sheet_merge = idx(&g, "soc::m::Sheet::merge");
        let hist_merge = idx(&g, "soc::m::Hist::merge");
        let fold = idx(&g, "soc::m::fold");
        // `self.hist.merge(…)` types the receiver through the field
        // index; `acc.merge(…)` through the parameter list. Both names
        // are ambiguous under the bare unique-name rule.
        assert!(g.callees[sheet_merge].contains(&hist_merge));
        assert!(g.callees[fold].contains(&sheet_merge));
        assert!(!g.callees[fold].contains(&hist_merge));
    }

    #[test]
    fn type_head_strips_sigils() {
        assert_eq!(type_head("&'a mut Running").as_deref(), Some("Running"));
        assert_eq!(
            type_head("&FixedHistogram").as_deref(),
            Some("FixedHistogram")
        );
        assert_eq!(type_head("Vec<T>").as_deref(), Some("Vec"));
        assert_eq!(type_head("(f64,f64)"), None);
        assert_eq!(type_head("[u64;4]"), None);
    }

    #[test]
    fn path_from_pub_reports_shortest_chain() {
        let f = SourceFile::new(
            "crates/soc/src/chain.rs",
            "pub fn top() {\n    mid();\n}\nfn mid() {\n    bottom();\n}\nfn bottom() {}\n",
        );
        let g = graph(vec![f]);
        let bottom = idx(&g, "soc::chain::bottom");
        let path = g.path_from_pub(bottom).expect("reachable");
        assert_eq!(
            g.render_path(&path),
            "soc::chain::top -> soc::chain::mid -> soc::chain::bottom"
        );
    }

    #[test]
    fn enclosing_fn_finds_innermost_body() {
        let src = "pub fn outer() {\n    let c = || inner_marker();\n    c();\n}\n";
        let f = SourceFile::new("crates/soc/src/e.rs", src);
        let g = graph(vec![f]);
        let byte = src.find("inner_marker").unwrap();
        let at = g.enclosing_fn(0, byte).expect("inside outer");
        assert_eq!(g.nodes[at].item.qual, "soc::e::outer");
    }

    #[test]
    fn test_functions_do_not_pollute_resolution() {
        let f = SourceFile::new(
            "crates/soc/src/t.rs",
            "pub fn only_caller() {\n    helper();\n}\nfn helper() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        let g = graph(vec![f]);
        let caller = idx(&g, "soc::t::only_caller");
        let helper = idx(&g, "soc::t::helper");
        assert!(g.callees[caller].contains(&helper));
    }
}
