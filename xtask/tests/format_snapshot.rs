//! Snapshot tests pinning the JSON and SARIF output shapes.
//!
//! CI consumers (the SARIF artifact upload, any jq-based tooling) parse
//! these documents; a field rename or reordering is a breaking change and
//! must show up as a reviewed diff here.

use xtask::diag::{Diagnostic, Span};
use xtask::render;

fn sample() -> Vec<Diagnostic> {
    vec![
        Diagnostic::error(
            "map-determinism",
            Span::at("crates/campaign/src/export.rs", 12, 5),
            "`HashMap` in export-reachable code: iteration order is nondeterministic",
        )
        .with_help("use BTreeMap/BTreeSet, or collect and sort before serializing"),
        Diagnostic::note(
            "panic-reachability",
            Span::file("xtask/xtask.toml"),
            "[panic-reachability] allow entry `soc::gone` matches no panic site; remove it",
        ),
    ]
}

#[test]
fn json_shape_is_stable() {
    let expected = r#"{
  "version": 1,
  "diagnostics": [
    {"lint": "map-determinism", "severity": "error", "file": "crates/campaign/src/export.rs", "line": 12, "column": 5, "message": "`HashMap` in export-reachable code: iteration order is nondeterministic", "help": "use BTreeMap/BTreeSet, or collect and sort before serializing"},
    {"lint": "panic-reachability", "severity": "note", "file": "xtask/xtask.toml", "line": 0, "column": 0, "message": "[panic-reachability] allow entry `soc::gone` matches no panic site; remove it", "help": null}
  ]
}
"#;
    assert_eq!(render::json(&sample()), expected);
}

#[test]
fn sarif_shape_is_stable() {
    let rules = [
        ("map-determinism", "no hash-seeded iteration in export code"),
        (
            "panic-reachability",
            "panic sites must be in sanctioned functions",
        ),
    ];
    let text = render::sarif(&sample(), &rules);

    // Document skeleton.
    assert!(text.starts_with("{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\""));
    assert!(text.contains("\"version\": \"2.1.0\""));
    assert!(text.contains("\"name\": \"xtask-lint\""));

    // The full rules table is present, in registry order.
    let r0 = text.find("\"id\": \"map-determinism\"").expect("rule 0");
    let r1 = text.find("\"id\": \"panic-reachability\"").expect("rule 1");
    assert!(r0 < r1);

    // Results carry ruleId, ruleIndex, level and a span-bearing location.
    assert!(text.contains("\"ruleId\": \"map-determinism\""));
    assert!(text.contains("\"ruleIndex\": 0"));
    assert!(text.contains("\"level\": \"error\""));
    assert!(text.contains("\"uri\": \"crates/campaign/src/export.rs\""));
    assert!(text.contains("\"region\": {\"startLine\": 12, \"startColumn\": 5}"));

    // File-scoped findings omit the region entirely and map note → note.
    assert!(text.contains("\"uri\": \"xtask/xtask.toml\"}\n"));
    assert!(text.contains("\"level\": \"note\""));
}

#[test]
fn both_formats_are_valid_when_empty() {
    assert_eq!(
        render::json(&[]),
        "{\n  \"version\": 1,\n  \"diagnostics\": [\n  ]\n}\n"
    );
    let text = render::sarif(&[], &[("panic-reachability", "d")]);
    assert!(text.contains("\"results\": [\n      ]"));
}

/// `lint --explain <id>` output: the one-line header (`id — description`)
/// followed by the pass's long-form explanation. Pinned in full for one
/// pass so the rendering contract can't drift silently.
#[test]
fn explain_output_is_stable() {
    let expected = "probe-balance — configured attach/detach probe pairs must balance on every control-flow path\n\n\
Checks that paired probe events balance on every control-flow path\n\
through each configured function: the set of possible\n\
attach−detach imbalances is pushed forward over the function's\n\
CFG ({0} on entry, branch joins union the possibilities), and any\n\
nonzero imbalance that can reach the function's exit — `return`\n\
and `?` paths included — is an error. A function with one attach\n\
and one detach can still fail: the early-return path leaks the\n\
probe.\n\
\n\
Imbalance magnitudes cap at 9 (reported `9+`), which keeps\n\
attach-in-a-loop states finite.\n\
\n\
Config (`xtask.toml`): qualified function -> [open, close]:\n\
[probe-balance]\n\
\"campaign::runner::Runner::run_page_observed\" = [\"attach_probe\", \"detach_probe\"]\n\
With no entries the pass is inert.\n\
Justification: `// probe: <reason>` at the function's declaration\n\
line or in the comment block directly above it.\n";
    assert_eq!(
        render::explain("probe-balance").expect("known id"),
        expected
    );
}

/// Every registered pass explains itself, and the text names its own
/// lint id's justification marker or config table where one exists —
/// `--explain` must never print an empty or placeholder page.
#[test]
fn every_pass_has_substantive_explain_text() {
    for pass in xtask::passes::registry() {
        let page = render::explain(pass.id()).expect("registered id");
        assert!(
            page.starts_with(&format!("{} — ", pass.id())),
            "header missing for {}: {page:?}",
            pass.id()
        );
        assert!(
            page.trim().lines().count() >= 3,
            "explain page for {} is too thin:\n{page}",
            pass.id()
        );
    }
}

/// Unknown ids produce an error that lists every known id, so a typo'd
/// `--explain` invocation is self-correcting.
#[test]
fn explain_rejects_unknown_ids_listing_known_ones() {
    let err = render::explain("no-such-lint").expect_err("must reject");
    assert!(err.contains("unknown lint id `no-such-lint`"), "{err}");
    for id in ["dimensional-flow", "snapshot-pairing", "probe-balance"] {
        assert!(err.contains(id), "known-id list missing {id}: {err}");
    }
}
