//! Snapshot tests pinning the JSON and SARIF output shapes.
//!
//! CI consumers (the SARIF artifact upload, any jq-based tooling) parse
//! these documents; a field rename or reordering is a breaking change and
//! must show up as a reviewed diff here.

use xtask::diag::{Diagnostic, Span};
use xtask::render;

fn sample() -> Vec<Diagnostic> {
    vec![
        Diagnostic::error(
            "map-determinism",
            Span::at("crates/campaign/src/export.rs", 12, 5),
            "`HashMap` in export-reachable code: iteration order is nondeterministic",
        )
        .with_help("use BTreeMap/BTreeSet, or collect and sort before serializing"),
        Diagnostic::note(
            "panic-reachability",
            Span::file("xtask/xtask.toml"),
            "[panic-reachability] allow entry `soc::gone` matches no panic site; remove it",
        ),
    ]
}

#[test]
fn json_shape_is_stable() {
    let expected = r#"{
  "version": 1,
  "diagnostics": [
    {"lint": "map-determinism", "severity": "error", "file": "crates/campaign/src/export.rs", "line": 12, "column": 5, "message": "`HashMap` in export-reachable code: iteration order is nondeterministic", "help": "use BTreeMap/BTreeSet, or collect and sort before serializing"},
    {"lint": "panic-reachability", "severity": "note", "file": "xtask/xtask.toml", "line": 0, "column": 0, "message": "[panic-reachability] allow entry `soc::gone` matches no panic site; remove it", "help": null}
  ]
}
"#;
    assert_eq!(render::json(&sample()), expected);
}

#[test]
fn sarif_shape_is_stable() {
    let rules = [
        ("map-determinism", "no hash-seeded iteration in export code"),
        (
            "panic-reachability",
            "panic sites must be in sanctioned functions",
        ),
    ];
    let text = render::sarif(&sample(), &rules);

    // Document skeleton.
    assert!(text.starts_with("{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\""));
    assert!(text.contains("\"version\": \"2.1.0\""));
    assert!(text.contains("\"name\": \"xtask-lint\""));

    // The full rules table is present, in registry order.
    let r0 = text.find("\"id\": \"map-determinism\"").expect("rule 0");
    let r1 = text.find("\"id\": \"panic-reachability\"").expect("rule 1");
    assert!(r0 < r1);

    // Results carry ruleId, ruleIndex, level and a span-bearing location.
    assert!(text.contains("\"ruleId\": \"map-determinism\""));
    assert!(text.contains("\"ruleIndex\": 0"));
    assert!(text.contains("\"level\": \"error\""));
    assert!(text.contains("\"uri\": \"crates/campaign/src/export.rs\""));
    assert!(text.contains("\"region\": {\"startLine\": 12, \"startColumn\": 5}"));

    // File-scoped findings omit the region entirely and map note → note.
    assert!(text.contains("\"uri\": \"xtask/xtask.toml\"}\n"));
    assert!(text.contains("\"level\": \"note\""));
}

#[test]
fn both_formats_are_valid_when_empty() {
    assert_eq!(
        render::json(&[]),
        "{\n  \"version\": 1,\n  \"diagnostics\": [\n  ]\n}\n"
    );
    let text = render::sarif(&[], &[("panic-reachability", "d")]);
    assert!(text.contains("\"results\": [\n      ]"));
}
