//! End-to-end fixture tests: each semantic pass must turn a synthetic
//! violating tree into a non-zero exit (error-severity diagnostics
//! surviving `run_passes` policy), and the same tree repaired must come
//! back clean. The call-graph passes (panic-reachability, units-escape,
//! determinism-taint) additionally pin the expected span and help text.

use xtask::source::SourceFile;
use xtask::workspace::parse_manifest;
use xtask::{render, run_passes, Config, Context};

fn exit_code(cx: &Context) -> i32 {
    let (errors, _, _) = render::tally(&run_passes(cx));
    i32::from(errors > 0)
}

/// Whether `lint` reports any error on this context. The clean-side
/// assertions scope to the lint under test: the synthetic fixtures are
/// deliberately minimal, so unrelated whole-tree passes (e.g. dvfs-guard
/// noticing the missing dvfs.rs) still fire on them.
fn lint_fires(cx: &Context, lint: &str) -> bool {
    run_passes(cx).iter().any(|d| d.lint == lint)
}

#[test]
fn layering_violation_fails_and_repaired_tree_passes() {
    let config = Config::from_toml("[layering]\nlayers = [[\"dora-soc\"], [\"dora-campaign\"]]\n")
        .expect("config");
    let manifests = |soc_deps: &str| {
        vec![
            parse_manifest(
                "crates/soc/Cargo.toml",
                &format!("[package]\nname = \"dora-soc\"\n[dependencies]\n{soc_deps}"),
            )
            .expect("manifest"),
            parse_manifest(
                "crates/campaign/Cargo.toml",
                "[package]\nname = \"dora-campaign\"\n[dependencies]\ndora-soc = { path = \"../soc\" }\n",
            )
            .expect("manifest"),
        ]
    };

    // An upward edge: the substrate crate depending on the orchestrator.
    let cx = Context {
        manifests: manifests("dora-campaign = { path = \"../campaign\" }\n"),
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "crate-layering" && d.message.contains("dora-campaign")),
        "{diags:?}"
    );

    // Same workspace without the upward edge is clean.
    let cx = Context {
        manifests: manifests(""),
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "crate-layering"));
}

#[test]
fn determinism_violation_fails_and_btreemap_passes() {
    let config =
        Config::from_toml("[determinism]\nexport_paths = [\"crates/campaign/src/export.rs\"]\n")
            .expect("config");
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/campaign/src/export.rs",
            "use std::collections::HashMap;\npub fn rows() -> HashMap<String, f64> { todo!() }\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);

    let cx = Context {
        files: vec![SourceFile::new(
            "crates/campaign/src/export.rs",
            "use std::collections::BTreeMap;\npub fn rows() -> BTreeMap<String, f64> { todo!() }\n",
        )],
        config,
        ..Context::default()
    };
    // No api-surface snapshot is configured, so restrict to the lint under
    // test by checking the surviving lints directly.
    assert!(
        run_passes(&cx).iter().all(|d| d.lint != "map-determinism"),
        "BTreeMap must not trip map-determinism"
    );
}

#[test]
fn uncited_constant_fails_and_cited_passes() {
    let config = Config::from_toml(
        "[constants]\nmodules = [\"crates/soc/src/power.rs\"]\ntrivial = [0.0, 1.0]\n",
    )
    .expect("config");
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/power.rs",
            "pub const K1: f64 = 0.22;\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);

    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/power.rs",
            "pub const K1: f64 = 0.22; // paper: Eq. 5\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert!(run_passes(&cx).iter().all(|d| d.lint != "paper-constants"));

    // A magic float const outside any designated module also fails.
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/governors/src/interactive.rs",
            "const UP_THRESHOLD: f64 = 0.85;\n",
        )],
        config,
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
}

#[test]
fn uncited_biglittle_profile_constant_fails_and_cited_passes() {
    // The heterogeneous SoC registry is a designated constants module:
    // new OPP tables and power coefficients must cite their sources.
    let config = Config::from_toml(
        "[constants]\nmodules = [\"crates/soc/src/profile.rs\"]\ntrivial = [0.0, 1.0]\n",
    )
    .expect("config");
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/profile.rs",
            "pub const A7_CEFF_CORE_F: f64 = 0.12e-9;\n\
             const A15_KHZ_MV: [(u64, u32); 2] = [(200_000, 900), (2_000_000, 1_250)];\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "paper-constants" && d.message.contains("A7_CEFF_CORE_F")),
        "{diags:?}"
    );

    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/profile.rs",
            "pub const A7_CEFF_CORE_F: f64 = 0.12e-9; // paper: 1906.08689 Sec. 2.1\n\
             // paper: 1710.03559 Sec. 3 — Exynos 5422 A15 OPP endpoints\n\
             const A15_KHZ_MV: [(u64, u32); 2] = [(200_000, 900), (2_000_000, 1_250)];\n",
        )],
        config,
        ..Context::default()
    };
    assert!(run_passes(&cx).iter().all(|d| d.lint != "paper-constants"));
}

#[test]
fn sync_hygiene_violations_fail_and_facade_code_passes() {
    let config =
        Config::from_toml("[sync-hygiene]\nfacade_paths = [\"crates/campaign/src/sync.rs\"]\n")
            .expect("config");

    // All three rules at once: a direct std::sync import, an unjustified
    // Relaxed ordering, and a static mut.
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/board.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             static mut HITS: usize = 0;\n\
             pub fn bump(c: &AtomicUsize) -> usize {\n\
                 c.fetch_add(1, Ordering::Relaxed)\n\
             }\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    for needle in ["std::sync", "static mut", "Ordering::Relaxed"] {
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "sync-hygiene" && d.message.contains(needle)),
            "sync-hygiene must flag {needle}: {diags:?}"
        );
    }

    // The facade file itself, plus justified orderings, are clean.
    let cx = Context {
        files: vec![
            SourceFile::new(
                "crates/campaign/src/sync.rs",
                "pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};\n",
            ),
            SourceFile::new(
                "crates/campaign/src/executor.rs",
                "pub fn bump(c: &AtomicUsize) -> usize {\n\
                     // ordering: pure claim ticket; nothing is published through it.\n\
                     c.fetch_add(1, Ordering::Relaxed)\n\
                 }\n",
            ),
        ],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "sync-hygiene"));
}

#[test]
fn api_drift_fails_and_blessed_snapshot_passes() {
    let file = SourceFile::new(
        "crates/soc/src/lib.rs",
        "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn frequency() -> u64 {\n    0\n}\n",
    );
    // Snapshot missing the symbol → drift → non-zero.
    let mut cx = Context {
        files: vec![file.clone()],
        ..Context::default()
    };
    cx.api_snapshots.insert("soc".into(), String::new());
    assert_eq!(exit_code(&cx), 1);

    // Blessed snapshot → clean.
    cx.api_snapshots
        .insert("soc".into(), "pub fn frequency() -> u64\n".into());
    assert!(!lint_fires(&cx, "api-surface"));
}

#[test]
fn reachable_panic_fails_with_call_path_and_allow_entry_passes() {
    // A pub entry point reaching a helper's `.unwrap()` two hops down.
    let src = "pub fn summarize(path: &str) -> usize {\n    parse(path)\n}\n\nfn parse(path: &str) -> usize {\n    read(path).len()\n}\n\nfn read(path: &str) -> String {\n    std::fs::read_to_string(path).unwrap()\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/io.rs", src)],
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "panic-reachability")
        .expect("panic-reachability must fire");
    assert_eq!(hit.span.file, "crates/soc/src/io.rs");
    assert_eq!(hit.span.line, 10, "{hit:?}");
    assert!(
        hit.message
            .contains("soc::io::summarize -> soc::io::parse -> soc::io::read"),
        "finding must show the pub call path: {hit:?}"
    );
    assert!(
        hit.help
            .as_deref()
            .is_some_and(|h| h.contains("add `\"soc::io::read\"` to [panic-reachability] allow")),
        "{hit:?}"
    );

    // Sanctioning exactly that function repairs the tree.
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/io.rs", src)],
        config: Config::from_toml("[panic-reachability]\nallow = [\"soc::io::read\"]\n")
            .expect("config"),
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "panic-reachability"));
}

#[test]
fn escaping_f64_fails_and_typed_signature_passes() {
    let config = Config::from_toml(
        "[units-escape]\nboundary_paths = [\"crates/soc/\"]\nunit_types = [\"Seconds\"]\n",
    )
    .expect("config");
    // A unit-suffixed raw f64 crossing a pub signature inside the boundary.
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/dvfs.rs",
            "pub fn settle(&self, dwell_ms: f64) -> bool {\n    dwell_ms > 0.0\n}\n",
        )],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "units-escape")
        .expect("units-escape must fire");
    assert_eq!(hit.span.file, "crates/soc/src/dvfs.rs");
    assert_eq!(hit.span.line, 1, "{hit:?}");
    assert!(
        hit.message
            .contains("takes raw `dwell_ms: f64` across the typed-units boundary"),
        "{hit:?}"
    );
    assert!(
        hit.help
            .as_deref()
            .is_some_and(|h| h.contains("dora_sim_core::units newtype")),
        "{hit:?}"
    );

    // The typed signature passes.
    let cx = Context {
        files: vec![SourceFile::new(
            "crates/soc/src/dvfs.rs",
            "pub fn settle(&self, dwell: Seconds) -> bool {\n    dwell > Seconds::ZERO\n}\n",
        )],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "units-escape"));
}

#[test]
fn hash_map_taint_reaching_export_fails_and_btreemap_passes() {
    let config =
        Config::from_toml("[determinism]\nexport_paths = [\"crates/campaign/src/export.rs\"]\n")
            .expect("config");
    let export = "use crate::rows::collect_rows;\n\npub fn write_csv() -> String {\n    collect_rows().join(\"\\n\")\n}\n";
    // The helper lives OUTSIDE the export path, so only the call-graph
    // taint pass can see it from the sink.
    let tainted = "use std::collections::HashMap;\n\npub fn collect_rows() -> Vec<String> {\n    let m: HashMap<String, f64> = HashMap::new();\n    m.keys().cloned().collect()\n}\n";
    let cx = Context {
        files: vec![
            SourceFile::new("crates/campaign/src/export.rs", export),
            SourceFile::new("crates/campaign/src/rows.rs", tainted),
        ],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "determinism-taint")
        .expect("determinism-taint must fire");
    assert_eq!(hit.span.file, "crates/campaign/src/rows.rs");
    assert_eq!(hit.span.line, 4, "{hit:?}");
    assert!(
        hit.message.contains("`HashMap` iteration order")
            && hit.message.contains("campaign::export::write_csv"),
        "finding must name the source and the sink chain: {hit:?}"
    );
    assert!(
        hit.help
            .as_deref()
            .is_some_and(|h| h.contains("BTreeMap/BTreeSet")),
        "{hit:?}"
    );

    let repaired = tainted.replace("HashMap", "BTreeMap");
    let cx = Context {
        files: vec![
            SourceFile::new("crates/campaign/src/export.rs", export),
            SourceFile::new("crates/campaign/src/rows.rs", repaired),
        ],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "determinism-taint"));
}

#[test]
fn uncovered_snapshot_field_fails_and_skip_marker_passes() {
    let config = Config::from_toml(
        "[state-coverage]\n\"soc::snap::Snap\" = [\"soc::snap::Board::restore\"]\n",
    )
    .expect("config");
    // `restore` transfers `seed` but forgets `energy`.
    let src = "pub struct Snap {\n    pub seed: u64,\n    pub energy: f64,\n}\npub struct Board;\nimpl Board {\n    pub fn restore(&mut self, s: &Snap) {\n        let _ = s.seed;\n    }\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "state-coverage")
        .expect("state-coverage must fire");
    assert_eq!(hit.span.file, "crates/soc/src/snap.rs");
    assert_eq!(hit.span.line, 7, "{hit:?}");
    assert!(
        hit.message.contains(
            "`soc::snap::Board::restore` does not access field `energy` of `soc::snap::Snap`"
        ),
        "{hit:?}"
    );
    assert!(
        hit.help.as_deref().is_some_and(|h| {
            h.contains("transfer the field, or add `// state: skip(<reason>)`")
                && h.contains("crates/soc/src/snap.rs:3")
        }),
        "{hit:?}"
    );

    // A justified skip on the field's declaration repairs the tree.
    let repaired = src.replace(
        "    pub energy: f64,",
        "    // state: skip(recomputed from seed on restore)\n    pub energy: f64,",
    );
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/snap.rs", repaired)],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "state-coverage"));
}

#[test]
fn raw_f64_fold_under_merge_sink_fails_and_sketch_type_passes() {
    let config = Config::from_toml(
        "[merge-associativity]\nsink_fns = [\"soc::agg::Report::merge\"]\nmergeable_types = [\"Hist\"]\n",
    )
    .expect("config");
    // The sink reaches a helper whose `.sum()` reassociates under resharding.
    let src = "pub struct Report {\n    pub total: f64,\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.total = combine(self.total, other.total);\n    }\n}\nfn combine(a: f64, b: f64) -> f64 {\n    [a, b].iter().sum()\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/agg.rs", src)],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "merge-associativity")
        .expect("merge-associativity must fire");
    assert_eq!(hit.span.file, "crates/soc/src/agg.rs");
    assert_eq!(hit.span.line, 10, "{hit:?}");
    assert!(
        hit.message.contains(
            "raw f64 accumulation `.sum()` in `soc::agg::combine` \
             (merge-reachable via `soc::agg::Report::merge -> soc::agg::combine`)"
        ),
        "{hit:?}"
    );
    assert!(
        hit.help.as_deref().is_some_and(|h| {
            h.contains("accumulate through a mergeable sketch type")
                && h.contains("// merge: <reason>")
        }),
        "{hit:?}"
    );

    // Folding through a declared-mergeable sketch type passes.
    let repaired = "pub struct Report {\n    pub total: Hist,\n}\npub struct Hist;\nimpl Hist {\n    pub fn merge(&mut self, _other: &Hist) {}\n}\nimpl Report {\n    pub fn merge(&mut self, other: &Report) {\n        self.total.merge(&other.total);\n    }\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/agg.rs", repaired)],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "merge-associativity"));
}

#[test]
fn stale_config_entry_fails_and_resolving_entry_passes() {
    let src = "pub struct Snap {\n    pub seed: u64,\n}\npub struct Board;\nimpl Board {\n    pub fn restore(&mut self, s: &Snap) {\n        let _ = s.seed;\n    }\n}\n";
    // The config points state-coverage at a struct that no longer exists.
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
        config: Config::from_toml(
            "[state-coverage]\n\"soc::snap::Gone\" = [\"soc::snap::Board::restore\"]\n",
        )
        .expect("config"),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "stale-config")
        .expect("stale-config must fire");
    assert_eq!(hit.span.file, "xtask/xtask.toml");
    assert!(
        hit.message
            .contains("[state-coverage] key `soc::snap::Gone` resolves to no struct"),
        "{hit:?}"
    );
    assert!(
        hit.help
            .as_deref()
            .is_some_and(|h| h.contains("update the entry to match the tree")),
        "{hit:?}"
    );

    // The same entry pointed at the live struct passes.
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
        config: Config::from_toml(
            "[state-coverage]\n\"soc::snap::Snap\" = [\"soc::snap::Board::restore\"]\n",
        )
        .expect("config"),
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "stale-config"));

    // A dangling path prefix is caught the same way.
    let cx = Context {
        files: vec![SourceFile::new("crates/soc/src/snap.rs", src)],
        config: Config::from_toml("[allow]\n\"partial-cmp\" = [\"crates/gone/src/\"]\n")
            .expect("config"),
        ..Context::default()
    };
    assert!(lint_fires(&cx, "stale-config"));
    let diags = run_passes(&cx);
    assert!(
        diags.iter().any(|d| d.lint == "stale-config"
            && d.message
                .contains("prefix `crates/gone/src/` matches no loaded file")),
        "{diags:?}"
    );
}

#[test]
fn leaked_snapshot_fails_and_all_paths_restored_passes() {
    let config = Config::from_toml("[snapshot-pairing]\nfns = [\"campaign::runner::sweep\"]\n")
        .expect("config");
    // The early return leaks `snap`: nothing consumed it on that path.
    let src = "pub fn sweep(board: &mut Board) {\n    let snap = board.snapshot();\n    if bail() {\n        return;\n    }\n    board.restore(snap);\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/campaign/src/runner.rs", src)],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "snapshot-pairing")
        .expect("snapshot-pairing must fire");
    assert_eq!(hit.span.file, "crates/campaign/src/runner.rs");
    assert_eq!(hit.span.line, 2, "anchored at the binding: {hit:?}");
    assert!(
        hit.message.contains(
            "`snap` from `snapshot()` reaches the end of `campaign::runner::sweep` \
             unused on some path"
        ),
        "{hit:?}"
    );
    assert!(
        hit.help.as_deref().is_some_and(|h| {
            h.contains("every path must consume the snapshot (normally via `restore()`)")
                && h.contains("// snapshot: <reason>")
        }),
        "{hit:?}"
    );

    // Restoring before the early return repairs the tree.
    let repaired = src.replace(
        "    if bail() {\n        return;\n    }\n",
        "    if bail() {\n        board.restore(snap);\n        return;\n    }\n",
    );
    let cx = Context {
        files: vec![SourceFile::new("crates/campaign/src/runner.rs", repaired)],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "snapshot-pairing"));
}

#[test]
fn unbalanced_probe_fails_and_detach_on_every_path_passes() {
    let config = Config::from_toml(
        "[probe-balance]\n\"campaign::runner::observe\" = [\"attach_probe\", \"detach_probe\"]\n",
    )
    .expect("config");
    // The `?` exit escapes with the probe still attached.
    let src = "pub fn observe(board: &mut Board) -> Result<f64, Error> {\n    let id = board.attach_probe(probe());\n    let sample = board.measure()?;\n    board.detach_probe(id);\n    Ok(sample)\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/campaign/src/runner.rs", src)],
        config: config.clone(),
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "probe-balance")
        .expect("probe-balance must fire");
    assert_eq!(hit.span.file, "crates/campaign/src/runner.rs");
    assert_eq!(hit.span.line, 1, "anchored at the function: {hit:?}");
    assert!(
        hit.message.contains(
            "`attach_probe`/`detach_probe` can exit `campaign::runner::observe` \
             unbalanced (+1 on some path)"
        ),
        "{hit:?}"
    );
    assert!(
        hit.help.as_deref().is_some_and(|h| {
            h.contains("must pair each `attach_probe` with a `detach_probe`")
                && h.contains("// probe: <reason>")
        }),
        "{hit:?}"
    );

    // Detaching before the fallible call repairs the tree.
    let repaired = "pub fn observe(board: &mut Board) -> Result<f64, Error> {\n    let id = board.attach_probe(probe());\n    let sample = board.measure();\n    board.detach_probe(id);\n    let sample = sample?;\n    Ok(sample)\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/campaign/src/runner.rs", repaired)],
        config,
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "probe-balance"));
}

#[test]
fn raw_dimension_mix_fails_and_typed_arithmetic_passes() {
    // No config: the dimension vocabulary is fixed at compile time.
    let src = "use dora_sim_core::units::*;\npub fn energy(t: Seconds, p: Watts) -> f64 {\n    t.value() * p.value()\n}\n";
    let cx = Context {
        files: vec![SourceFile::new("crates/modeling/src/power.rs", src)],
        ..Context::default()
    };
    assert_eq!(exit_code(&cx), 1);
    let diags = run_passes(&cx);
    let hit = diags
        .iter()
        .find(|d| d.lint == "dimensional-flow")
        .expect("dimensional-flow must fire");
    assert_eq!(hit.span.file, "crates/modeling/src/power.rs");
    assert_eq!(hit.span.line, 3, "{hit:?}");
    assert!(
        hit.message
            .contains("raw W·s product is not rebuilt as Joules"),
        "{hit:?}"
    );
    assert!(
        hit.help.as_deref().is_some_and(|h| {
            h.contains("`Watts * Seconds` is `Joules`") && h.contains("// dim: <reason>")
        }),
        "{hit:?}"
    );

    // Building the product through the typed impl repairs the tree.
    let repaired = src.replace("t.value() * p.value()", "(p * t).value()");
    let cx = Context {
        files: vec![SourceFile::new("crates/modeling/src/power.rs", repaired)],
        ..Context::default()
    };
    assert!(!lint_fires(&cx, "dimensional-flow"));
}
