//! Golden `Cfg::dump` renderings for the four control-flow shapes the
//! dataflow lints lean on hardest: branch joins (`if`/`else`), match
//! arm fan-out, loop back-edges with a `?` inside (`while let`), and
//! straight-line `?` early-exit chains. Pinning the full dump fixes
//! block numbering, statement classification, and edge order at once —
//! any builder change that reshapes these graphs must update the
//! expectations here consciously, because dataflow results (and the
//! engine cache entries derived from them) depend on this structure.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xtask::source::SourceFile;

/// Parses `body` as a one-function file and renders its CFG.
fn dump_of(body: &str) -> String {
    let file = SourceFile::new(
        "tests/fixture.rs",
        format!("pub fn fixture() {{ {body} }}\n"),
    );
    let cfgs = file.cfgs();
    assert_eq!(cfgs.len(), 1, "fixture must parse as exactly one fn");
    cfgs[0]
        .as_ref()
        .expect("fixture has a body")
        .dump(&file.text, &file.tokens)
}

/// `if`/`else`: the header ends the entry block, both branches carry
/// their braces as structural statements, and control joins before the
/// trailing statement.
#[test]
fn if_else_branches_split_and_rejoin() {
    let dump = dump_of("let a = probe(); if a > 0 { hot(); } else { cold(); } done(a);");
    assert_eq!(
        dump,
        "\
b0 (entry):
  [stmt] let a = probe ( ) ;
  [if] if a > 0 {
  -> b2, b3
b1 (exit):
  -> (none)
b2:
  [stmt] hot ( ) ;
  [punct] }
  -> b4
b3:
  [punct] else {
  [stmt] cold ( ) ;
  [punct] }
  -> b4
b4:
  [stmt] done ( a ) ;
  -> b1
"
    );
}

/// `match`: the header fans out to one block per arm (patterns kept as
/// `arm` statements, guards included), and every arm rejoins at the
/// closing-brace block.
#[test]
fn match_fans_out_one_block_per_arm() {
    let dump = dump_of("match classify(x) { Kind::A => a(), Kind::B { n } => { b(n); } _ => {} }");
    assert_eq!(
        dump,
        "\
b0 (entry):
  [match] match classify ( x ) {
  -> b3, b4, b5
b1 (exit):
  -> (none)
b2:
  [punct] }
  -> b1
b3:
  [arm] Kind : : A = >
  [stmt] a ( )
  [punct] ,
  -> b2
b4:
  [arm] Kind : : B { n } = >
  [punct] {
  [stmt] b ( n ) ;
  [punct] }
  -> b2
b5:
  [arm] _ = >
  [punct] {
  [punct] }
  -> b2
"
    );
}

/// `while let` with a `?` in the body: the loop head tests into
/// body/after blocks, the body's `?` statement gains an extra edge to
/// the exit, and the closing brace loops back to the head.
#[test]
fn while_let_back_edge_and_inner_question_mark() {
    let dump = dump_of("while let Some(job) = queue.pop() { run(job)?; } drain();");
    assert_eq!(
        dump,
        "\
b0 (entry):
  -> b2
b1 (exit):
  -> (none)
b2:
  [loop] while let Some ( job ) = queue . pop ( ) {
  -> b3, b4
b3:
  [stmt] run ( job ) ? ;
  -> b1, b5
b4:
  [stmt] drain ( ) ;
  -> b1
b5:
  [punct] }
  -> b2
"
    );
}

/// A `?` chain: each fallible statement terminates its block with an
/// early edge to the exit plus a fallthrough, so pairing lints see the
/// leak on every partial path.
#[test]
fn question_mark_chain_threads_exit_edges() {
    let dump = dump_of("let conn = dial(addr)?; conn.send(msg)?; Ok(())");
    assert_eq!(
        dump,
        "\
b0 (entry):
  [stmt] let conn = dial ( addr ) ? ;
  -> b1, b2
b1 (exit):
  -> (none)
b2:
  [stmt] conn . send ( msg ) ? ;
  -> b1, b3
b3:
  [stmt] Ok ( ( ) )
  -> b1
"
    );
}
