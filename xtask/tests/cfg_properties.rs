//! CFG construction invariants, checked two ways: once over every
//! function body in the real repository (the graphs the dataflow lints
//! actually analyze), and once over randomized bodies assembled from
//! control-flow fragments. Three properties must hold for every graph:
//!
//!   1. **Partition** — every code token of the body lands in exactly
//!      one statement of exactly one block; nothing is dropped or
//!      duplicated by branch/loop/match splitting.
//!   2. **Live edges** — every successor index targets an existing
//!      block, and the synthetic exit block has no statements and no
//!      successors.
//!   3. **Determinism** — rebuilding the same body yields a
//!      byte-identical `dump`, so golden tests and cached analysis
//!      results are stable.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use xtask::cfg::Cfg;
use xtask::source::SourceFile;
use xtask::{repo_root, Context};

/// Every code-token position appears in exactly one statement range.
fn check_partition(cfg: &Cfg, what: &str) -> Result<(), String> {
    let mut seen = vec![0usize; cfg.code.len()];
    for b in &cfg.blocks {
        for s in &b.stmts {
            for slot in seen.iter_mut().take(s.hi).skip(s.lo) {
                *slot += 1;
            }
        }
    }
    if let Some(pos) = seen.iter().position(|&c| c != 1) {
        return Err(format!(
            "{what}: code position {pos} covered {} times (counts {seen:?})",
            seen[pos]
        ));
    }
    Ok(())
}

/// Successors index live blocks; the exit block is empty and terminal.
fn check_edges(cfg: &Cfg, what: &str) -> Result<(), String> {
    for (i, b) in cfg.blocks.iter().enumerate() {
        for &t in &b.succs {
            if t >= cfg.blocks.len() {
                return Err(format!(
                    "{what}: block b{i} has dangling edge to b{t} ({} blocks)",
                    cfg.blocks.len()
                ));
            }
        }
    }
    let exit = &cfg.blocks[cfg.exit];
    if !exit.stmts.is_empty() || !exit.succs.is_empty() {
        return Err(format!("{what}: exit block is not empty/terminal"));
    }
    Ok(())
}

fn check_all(file: &SourceFile, what: &str) -> Result<(), String> {
    for (f, cfg) in file.items.fns.iter().zip(file.cfgs()) {
        let (Some(cfg), Some(body)) = (cfg, f.body) else {
            continue;
        };
        let ident = format!("{what}: fn {}", f.qual);
        check_partition(cfg, &ident)?;
        check_edges(cfg, &ident)?;
        let again = Cfg::build(&file.text, &file.tokens, body);
        if again.dump(&file.text, &file.tokens) != cfg.dump(&file.text, &file.tokens) {
            return Err(format!("{ident}: rebuild produced a different graph"));
        }
    }
    Ok(())
}

/// The invariants hold for every function body the lints will ever see
/// in this repository — the strongest grounding the generator can't
/// provide.
#[test]
fn every_repository_cfg_satisfies_the_invariants() {
    let cx = Context::load(&repo_root()).expect("loading the repository");
    let mut bodies = 0usize;
    for file in &cx.files {
        check_all(file, &file.rel).unwrap_or_else(|e| panic!("{e}"));
        bodies += file.cfgs().iter().flatten().count();
    }
    assert!(
        bodies > 500,
        "suspiciously few function bodies analyzed: {bodies}"
    );
}

/// Statement-level fragments the generator splices into bodies. Each is
/// a standalone snippet; concatenation in any order stays lexable, and
/// most combinations exercise branch joins, loop back-edges, early
/// exits, and `?` edges against each other.
const FRAGMENTS: &[&str] = &[
    "let a = 1;",
    "let b = f(a, 2) + g();",
    "touch(&mut b);",
    "if a > 0 { hot(); } else { cold(); }",
    "if a > 0 { hot(); } else if b < 9 { warm(); } else { cold(); }",
    "if short() { return; }",
    "match a { 0 => zero(), 1 => { one(); } _ => rest(), }",
    "match pick() { Some(x) => use_it(x), None => {} }",
    "while a < 10 { a += 1; }",
    "while let Some(x) = it.next() { sink(x); }",
    "for i in 0..4 { if i == 2 { continue; } body(i); }",
    "loop { if done() { break; } spin(); }",
    "'outer: loop { loop { break; } break; }",
    "let v = fallible()?;",
    "fallible()?;",
    "return finish();",
    "{ let inner = 3; scoped(inner); }",
    "let c = if a > b { a } else { b };",
    "let d = match a { 0 => 1, _ => 2 };",
];

/// Parses `body` as the sole function of a synthetic file and returns
/// that file (the CFG is reached through `cfgs()` like production code).
fn file_of(body: &str) -> SourceFile {
    SourceFile::new("tests/gen.rs", format!("pub fn gen_case() {{ {body} }}\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random fragment soups: whatever control flow the splice produces,
    /// the partition/live-edge/determinism invariants must hold.
    #[test]
    fn generated_bodies_satisfy_the_invariants(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..10)
    ) {
        let body: Vec<&str> = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let file = file_of(&body.join(" "));
        prop_assert_eq!(file.items.fns.len(), 1, "generator produced a non-function");
        if let Err(e) = check_all(&file, "generated") {
            prop_assert!(false, "{}", e);
        }
    }

    /// Nesting the same fragment inside loop/if wrappers must not break
    /// the partition: wrappers add structural tokens that the builder
    /// has to keep attached to exactly one statement.
    #[test]
    fn wrapped_bodies_keep_the_token_partition(
        pick in 0usize..FRAGMENTS.len(),
        wrap in 0usize..3,
        depth in 1usize..4,
    ) {
        let mut body = FRAGMENTS[pick].to_string();
        for _ in 0..depth {
            body = match wrap {
                0 => format!("if guard() {{ {body} }} else {{ other(); }}"),
                1 => format!("loop {{ {body} break; }}"),
                _ => format!("match sel() {{ true => {{ {body} }} false => {{}} }}"),
            };
        }
        let file = file_of(&body);
        if let Err(e) = check_all(&file, "wrapped") {
            prop_assert!(false, "{}", e);
        }
    }
}
