//! Round-trip fuzz of the field-access extractor the state-coverage
//! pass is built on: generate a struct plus a method body that accesses
//! a *known* subset of its fields through randomly chosen access forms
//! (projection, compound assignment, struct-literal key, pattern key),
//! salted with distractors that reuse the *unaccessed* field names in
//! non-access positions (method calls, plain locals, range endpoints).
//! `accessed_fields` must report exactly the chosen subset — every real
//! access found, no distractor miscounted.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::collections::BTreeSet;
use xtask::fieldindex::accessed_fields;
use xtask::source::SourceFile;

/// Field-name pool. Deliberately includes names that collide with
/// common method names (`merge`, `count`) so the method-call
/// distractors below are maximally confusable.
const POOL: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "count", "merge", "lo", "hi",
];

/// One statement that genuinely accesses `field`, selected by `form`.
fn access_stmt(field: &str, form: usize) -> String {
    match form % 5 {
        0 => format!("        let _ = self.{field};\n"),
        1 => format!("        self.{field} += 1.0;\n"),
        2 => format!("        let _ = Def {{ {field}: 0.0, ..Def::default() }};\n"),
        3 => format!(
            "        let Def {{ {field}, .. }} = Def::default();\n        let _ = {field};\n"
        ),
        _ => format!("        let _ = other.{field} * 2.0;\n"),
    }
}

/// One statement that *uses the name* of `field` without accessing a
/// field: a dotted method call, a shadowing local, or a range bound.
fn distractor_stmt(field: &str, form: usize) -> String {
    match form % 3 {
        0 => format!("        self.{field}();\n"),
        1 => format!("        let {field} = 1.0;\n        let _ = {field};\n"),
        _ => format!("        for _ in 0 .. {field}_n {{}}\n"),
    }
}

fn build_source(accessed: &[(usize, usize)], distractors: &[(usize, usize)]) -> String {
    let fields: String = POOL.iter().map(|f| format!("    {f}: f64,\n")).collect();
    let mut body = String::new();
    for &(idx, form) in accessed {
        body.push_str(&access_stmt(POOL[idx], form));
    }
    for &(idx, form) in distractors {
        body.push_str(&distractor_stmt(POOL[idx], form));
    }
    format!(
        "#[derive(Default)]\nstruct Def {{\n{fields}}}\n\nimpl Def {{\n    fn probe(&mut self, other: &Def) {{\n{body}    }}\n}}\n"
    )
}

fn extracted(src: &str) -> BTreeSet<String> {
    let file = SourceFile::new("crates/x/src/lib.rs", src);
    let item = file
        .items
        .fns
        .iter()
        .find(|f| f.name == "probe")
        .expect("fn probe")
        .clone();
    accessed_fields(&file, &item)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The extracted field set equals the generated access set exactly:
    /// distractor uses of the complement's names never leak in, and no
    /// chosen access form is missed.
    #[test]
    fn extracted_fields_match_generated_accesses(
        picks in prop::collection::vec((0usize..POOL.len(), 0usize..5), 0..10),
        distractor_forms in prop::collection::vec(0usize..3, POOL.len()),
    ) {
        let accessed: BTreeSet<usize> = picks.iter().map(|&(i, _)| i).collect();
        // Distract with every *unaccessed* pool name, so a false
        // positive on any name is caught, not just sampled ones.
        let distractors: Vec<(usize, usize)> = (0..POOL.len())
            .filter(|i| !accessed.contains(i))
            .map(|i| (i, distractor_forms[i]))
            .collect();
        let src = build_source(&picks, &distractors);
        let got = extracted(&src);
        let want: BTreeSet<String> = accessed.iter().map(|&i| POOL[i].to_string()).collect();
        prop_assert_eq!(got, want, "source:\n{}", src);
    }

    /// Order of statements never changes the extracted set: accesses
    /// interleaved with distractors in any permutation agree with the
    /// accesses alone.
    #[test]
    fn extraction_is_order_insensitive(
        picks in prop::collection::vec((0usize..POOL.len(), 0usize..5), 1..8),
    ) {
        let mut reversed = picks.clone();
        reversed.reverse();
        let a = extracted(&build_source(&picks, &[]));
        let b = extracted(&build_source(&reversed, &[]));
        prop_assert_eq!(a, b);
    }
}
