//! The incremental engine's correctness contract: whatever the cache
//! does, `engine::run_lint` must report byte-for-byte the same
//! diagnostics as the sequential reference driver (`run_passes`) — on
//! the real repository and across cold, warm, edited-file, and
//! `--changed` runs on synthetic trees. The cache is an optimization;
//! any divergence here is a cache-corruption bug, not a tuning knob.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use xtask::engine::{run_lint, EngineOptions};
use xtask::source::SourceFile;
use xtask::{repo_root, run_passes, Config, Context};

/// A scratch cache directory unique to this test, removed on drop so
/// reruns always start cold.
struct ScratchCache {
    dir: PathBuf,
}

impl ScratchCache {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("xtask-engine-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchCache { dir }
    }

    fn opts(&self) -> EngineOptions {
        EngineOptions {
            use_cache: true,
            changed_only: false,
            cache_dir: self.dir.clone(),
        }
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn no_cache() -> EngineOptions {
    EngineOptions {
        use_cache: false,
        changed_only: false,
        cache_dir: PathBuf::from("/nonexistent-never-touched"),
    }
}

/// A small synthetic tree with one real finding per scope: a file-pass
/// finding (`partial-cmp` on a raw `partial_cmp` call) and nothing else
/// configured, so cache behavior is observable without the full repo.
fn synthetic(with_violation: bool) -> Context {
    let body = if with_violation {
        "pub fn pick(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n"
    } else {
        "pub fn pick(a: f64, b: f64) -> bool { a.total_cmp(&b).is_le() }\n"
    };
    Context {
        files: vec![
            SourceFile::new("crates/x/src/lib.rs", body),
            SourceFile::new("crates/x/src/other.rs", "pub fn calm() {}\n"),
        ],
        config: Config::default(),
        ..Context::default()
    }
}

#[test]
fn engine_matches_sequential_driver_on_the_real_repo() {
    let cx = Context::load(&repo_root()).expect("loading the repository");
    let reference = run_passes(&cx);
    let outcome = run_lint(&cx, &no_cache()).expect("engine run");
    assert_eq!(
        outcome.diags, reference,
        "parallel no-cache engine diverged from run_passes"
    );
    assert!(!outcome.cache.enabled);
    assert_eq!(outcome.files, cx.files.len());
}

#[test]
fn warm_tree_hit_reproduces_cold_diags_exactly() {
    let cx = Context::load(&repo_root()).expect("loading the repository");
    let cache = ScratchCache::new("warm");
    let opts = cache.opts();

    let cold = run_lint(&cx, &opts).expect("cold run");
    assert!(!cold.cache.tree_hit, "first run cannot tree-hit");
    assert_eq!(cold.cache.file_misses, cx.files.len());

    let warm = run_lint(&cx, &opts).expect("warm run");
    assert!(warm.cache.tree_hit, "identical rerun must tree-hit");
    assert_eq!(warm.diags, cold.diags, "cache replay changed diagnostics");
    assert_eq!(
        warm.diags,
        run_passes(&cx),
        "cache replay diverged from reference"
    );
}

#[test]
fn editing_one_file_invalidates_only_that_file() {
    let cache = ScratchCache::new("edit");
    let opts = cache.opts();

    let clean = synthetic(false);
    let cold = run_lint(&clean, &opts).expect("cold run");
    assert_eq!(cold.cache.file_misses, 2);
    assert!(!cold.diags.iter().any(|d| d.lint == "partial-cmp"));

    // Same tree with one edited file: the other file's entry must
    // still hit, and the edit's new finding must appear.
    let edited = synthetic(true);
    let warm = run_lint(&edited, &opts).expect("edited run");
    assert!(!warm.cache.tree_hit, "edited tree must not tree-hit");
    assert_eq!(warm.cache.file_hits, 1, "untouched file should hit");
    assert_eq!(warm.cache.file_misses, 1, "edited file should miss");
    assert!(
        warm.diags.iter().any(|d| d.lint == "partial-cmp"),
        "edited file's finding missing: {:?}",
        warm.diags
    );
    assert_eq!(warm.diags, run_passes(&edited));

    // Reverting the edit hits the original entries again.
    let reverted = run_lint(&clean, &opts).expect("reverted run");
    assert!(reverted.cache.tree_hit, "revert must restore the tree hit");
    assert_eq!(reverted.diags, cold.diags);
}

#[test]
fn config_change_invalidates_everything() {
    let cache = ScratchCache::new("config");
    let opts = cache.opts();

    let mut cx = synthetic(true);
    run_lint(&cx, &opts).expect("cold run");

    // Allowing the lint is a config change: every entry is stale.
    cx.config = Config::from_toml("[levels]\n\"partial-cmp\" = \"allow\"\n").expect("config");
    let warm = run_lint(&cx, &opts).expect("reconfigured run");
    assert!(!warm.cache.tree_hit);
    assert_eq!(warm.cache.file_hits, 0, "config change must miss all files");
    assert!(!warm.diags.iter().any(|d| d.lint == "partial-cmp"));
}

// Pass *logic* is part of the cache key: the registry fingerprint
// (ids, order, and per-pass behavioral versions) folds into the config
// hash — its sensitivity is asserted at the unit level in
// `passes::tests::fingerprint_tracks_ids_versions_and_order` — and the
// serialized entries carry a format-version header, so an entry written
// by any earlier xtask parses as a miss, never as stale results.
#[test]
fn entries_from_an_older_cache_format_are_misses() {
    let cache = ScratchCache::new("version");
    let opts = cache.opts();
    let cx = synthetic(true);
    let cold = run_lint(&cx, &opts).expect("cold run");
    assert_eq!(cold.cache.file_misses, 2);

    // Rewrite every entry's header to the previous format's: lookups
    // still find the files, but parsing must reject them wholesale.
    for entry in std::fs::read_dir(&cache.dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        let text = std::fs::read_to_string(&path).expect("entry text");
        assert!(
            text.starts_with("xtask-cache v"),
            "unexpected entry format in {path:?}: {text:?}"
        );
        let downgraded = text.replacen(text.lines().next().expect("header"), "xtask-cache v1", 1);
        std::fs::write(&path, downgraded).expect("rewrite entry");
    }

    let warm = run_lint(&cx, &opts).expect("tampered run");
    assert!(!warm.cache.tree_hit, "old-format tree entry must miss");
    assert_eq!(warm.cache.file_hits, 0, "old-format file entries must miss");
    assert_eq!(warm.diags, cold.diags, "recomputed diags must match");
}

#[test]
fn changed_only_reruns_stale_files_and_skips_tree_passes() {
    let cache = ScratchCache::new("changed");
    let opts = cache.opts();

    let clean = synthetic(false);
    run_lint(&clean, &opts).expect("cold run");

    let edited = synthetic(true);
    let changed = run_lint(
        &edited,
        &EngineOptions {
            changed_only: true,
            ..cache.opts()
        },
    )
    .expect("--changed run");
    assert_eq!(changed.cache.file_hits, 1);
    assert_eq!(changed.cache.file_misses, 1);
    assert!(
        !changed.skipped_tree_passes.is_empty(),
        "--changed must report the tree passes it skipped"
    );
    assert!(
        changed.skipped_tree_passes.contains(&"panic-reachability"),
        "{:?}",
        changed.skipped_tree_passes
    );
    assert!(
        changed.diags.iter().any(|d| d.lint == "partial-cmp"),
        "stale file's file-pass finding must still surface"
    );
    // Only file-scoped lints may appear: every reported lint is absent
    // from the skipped tree-pass list.
    for d in &changed.diags {
        assert!(
            !changed.skipped_tree_passes.contains(&d.lint),
            "tree-pass finding {:?} leaked into a --changed run",
            d
        );
    }
}

#[test]
fn bench_report_carries_cache_and_pass_shape() {
    let cache = ScratchCache::new("bench");
    let cx = synthetic(true);
    let outcome = run_lint(&cx, &cache.opts()).expect("run");
    let path = cache.dir.join("BENCH_lint.json");
    xtask::engine::write_bench(&path, &outcome, 12.5).expect("write bench");
    let text = std::fs::read_to_string(&path).expect("read bench");
    for needle in [
        "\"workload\": \"xtask-lint\"",
        "\"files\": 2",
        "\"total_ms\": 12.5",
        "\"cache\"",
        "\"passes\"",
        "\"partial-cmp\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
