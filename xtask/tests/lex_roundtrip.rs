//! The lexer's load-bearing invariant, checked against the whole tree
//! and fuzzed over adversarial literal soup: `lex(src)` partitions the
//! source into contiguous tokens whose concatenated texts rebuild the
//! input byte-for-byte, and real Rust never produces `Unknown` tokens.
//!
//! Every span any pass reports is derived from these token offsets, so a
//! single mis-lexed byte would silently shift every diagnostic after it.

use proptest::prelude::*;
use xtask::lex::{lex, TokenKind};
use xtask::{repo_root, Context};

/// Reconstructs the source from its tokens.
fn rebuild(src: &str) -> String {
    lex(src).iter().map(|t| t.text(src)).collect()
}

#[test]
fn whole_tree_roundtrips_byte_identical_with_no_unknown_tokens() {
    let cx = Context::load(&repo_root()).expect("loading the repository");
    assert!(!cx.files.is_empty(), "no files loaded");
    for file in &cx.files {
        let tokens = lex(&file.text);
        let rebuilt: String = tokens.iter().map(|t| t.text(&file.text)).collect();
        assert_eq!(rebuilt, file.text, "round-trip mismatch in {}", file.rel);
        // Contiguity: each token starts where the previous ended.
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.lo, pos, "gap before token at byte {pos} in {}", file.rel);
            pos = t.hi;
        }
        assert_eq!(pos, file.text.len(), "trailing gap in {}", file.rel);
        for t in &tokens {
            assert_ne!(
                t.kind,
                TokenKind::Unknown,
                "unknown token `{}` at byte {} in {}",
                t.text(&file.text),
                t.lo,
                file.rel
            );
        }
    }
}

/// Tricky-but-valid Rust fragments. Each must lex with no `Unknown`
/// tokens, in any concatenation (separated by a space so adjacent
/// fragments cannot merge into different constructs).
const FRAGMENTS: &[&str] = &[
    "r#\"raw \\ not-an-escape \" inside\"#",
    "r##\"nested \"# hash\"##",
    "br#\"raw bytes\"#",
    "'\\''",
    "'\\\\'",
    "'\\n'",
    "'a'",
    "b'\\x7f'",
    "\"str with // no comment\"",
    "\"escaped \\\" quote\"",
    "1_000e-6f32",
    "0xFF_u8",
    "0b1010_1010u16",
    "0o77",
    "12.5e+3",
    "1.0f64",
    "100_000",
    "3usize",
    "/* outer /* nested */ still comment */",
    "// line comment\n",
    "'static",
    "'a",
    "ident_0",
    "x.0",
    "0..10",
    "a<=b",
    "v<<2",
    "-> f64",
    "::<Vec<u8>>",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any space-joined sequence of tricky fragments round-trips
    /// byte-identically and lexes entirely into known token kinds.
    #[test]
    fn fragment_soup_roundtrips(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..12)) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(rebuild(&src), src.clone());
        for t in lex(&src) {
            prop_assert!(
                t.kind != TokenKind::Unknown,
                "unknown token `{}` in `{}`",
                t.text(&src),
                src
            );
        }
    }

    /// Round-trip holds for *arbitrary* byte soup too (printable ASCII
    /// plus quotes/backslashes): even unterminated literals must span
    /// exactly the bytes they consumed.
    #[test]
    fn arbitrary_ascii_roundtrips(bytes in prop::collection::vec(32u8..127, 0..64)) {
        let src = String::from_utf8(bytes.clone()).expect("printable ascii");
        prop_assert_eq!(rebuild(&src), src);
    }
}
